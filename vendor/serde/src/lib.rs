//! Offline stand-in for `serde`.
//!
//! The workspace is built in environments without crates.io access, so this
//! vendored crate provides the two derive macros the codebase imports
//! (`use serde::{Deserialize, Serialize};`) as **no-ops**: deriving them
//! compiles to nothing. No code in the workspace serializes through serde
//! traits — machine-readable output goes through `experiments::json`
//! instead — so empty derives are sufficient and keep every type's derive
//! list source-compatible with the real crate.
//!
//! Swapping the real `serde` back in is a one-line change in the workspace
//! manifest; no source edits are required.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
