//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and the `proptest!` macro surface the
//! workspace's property tests use: numeric range strategies, `any::<T>()`,
//! tuple strategies, `prop::collection::vec`, `prop_filter`, and
//! `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike upstream proptest there is no shrinking: each test runs a fixed
//! number of deterministic random cases (default 64, override with the
//! `PROPTEST_CASES` environment variable) seeded from the test name, so
//! failures reproduce exactly across runs.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic case generator (xoshiro256** seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the generator for one `(test, case)` pair.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = h ^ (u64::from(case) << 32) ^ u64::from(case);
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty bound");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of cases per property (env `PROPTEST_CASES`, default 64).
#[must_use]
pub fn cases_from_env() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A value generator.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Restricts the strategy to values satisfying `pred`; gives up with a
    /// labeled panic after too many rejections.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        label: &'static str,
        pred: F,
    ) -> Filter<Self, F> {
        Filter {
            inner: self,
            label,
            pred,
        }
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    label: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive samples",
            self.label
        );
    }
}

/// Primitive types drawable by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        })*
    };
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing any value of `T` (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

/// The `any::<T>()` strategy constructor.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Numbers uniformly samplable from ranges (strategy form).
pub trait RangeSample: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn draw_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_sample_int {
    ($($t:ty),*) => {
        $(impl RangeSample for $t {
            fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + i128::from(rng.next_u64() % span)) as $t
            }
            fn draw_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + i128::from(rng.next_u64() % (span + 1))) as $t
            }
        })*
    };
}
impl_range_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_sample_float {
    ($($t:ty),*) => {
        $(impl RangeSample for $t {
            fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                lo + (hi - lo) * (rng.unit_f64() as $t)
            }
            fn draw_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                Self::draw(rng, lo, hi)
            }
        })*
    };
}
impl_range_sample_float!(f32, f64);

impl<T: RangeSample> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::draw(rng, self.start, self.end)
    }
}

impl<T: RangeSample> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::draw_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident / $idx:tt),+)),+) => {
        $(impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        })+
    };
}
impl_strategy_tuple!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// Length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Mirrors `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy producing `Vec`s of `elem`-generated values.
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(elem, sizes)`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let span = self.size.hi_inclusive - self.size.lo + 1;
                let len = self.size.lo + rng.below(span);
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// Mirrors `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Case-level assertion (stand-in: panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Case-level equality assertion (stand-in: panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `arg in strategy` binding is sampled per
/// case and the body runs for [`cases_from_env`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases_from_env();
                for case in 0..cases {
                    let mut proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 0u32..=32, y in 1usize..10, f in -2.0f32..2.0) {
            prop_assert!(x <= 32);
            prop_assert!((1..10).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vectors_respect_sizes(v in prop::collection::vec(any::<i8>(), 2..=12)) {
            prop_assert!((2..=12).contains(&v.len()));
        }

        #[test]
        fn filter_applies(v in prop::collection::vec(0u32..10, 1..=8)
            .prop_filter("nonempty-even", |v| v.len() % 2 == 0))
        {
            prop_assert_eq!(v.len() % 2, 0);
        }

        #[test]
        fn tuples_sample_both(pair in (0u32..5, 10u32..20)) {
            prop_assert!(pair.0 < 5 && (10..20).contains(&pair.1));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = super::TestRng::for_case("t", 0);
        let mut b = super::TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
