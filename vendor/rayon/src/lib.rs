//! Offline stand-in for `rayon`.
//!
//! Provides the small slice of the rayon API the workspace uses —
//! `into_par_iter()` / `par_iter()` followed by `.map(..).collect()`, plus
//! [`join`] — implemented with `std::thread::scope` and an atomic work
//! queue. Results are returned in input order, matching rayon's indexed
//! collect semantics. Worker count follows
//! `std::thread::available_parallelism`, clamped to the item count.
//!
//! The sweep runner parallelizes over coarse grid cells (whole simulator
//! runs), so a simple shared-cursor queue has negligible overhead compared
//! to a work-stealing pool.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Rayon-style prelude; `use rayon::prelude::*;` enables the `par_iter`
/// family.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads for `n` items.
fn workers_for(n: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    cores.min(n).max(1)
}

/// Runs `f` over `items` on a scoped thread pool, preserving input order.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers_for(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each slot is claimed once");
                let r = f(item);
                *out[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every slot was filled")
        })
        .collect()
}

/// A scope for spawning borrowing tasks, mirroring `rayon::scope`.
///
/// Backed by `std::thread::scope`: every spawned task runs on its own OS
/// thread (fine for the coarse, long-lived tasks this workspace spawns —
/// per-MC encoder stages, not fine-grained recursion) and is joined
/// before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope; it completes
    /// before the enclosing [`scope`] call returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a scope in which tasks can be spawned that borrow from the
/// enclosing stack frame; returns the closure's result after every
/// spawned task has finished. A panic in any spawned task propagates.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A: Send, B: Send>(
    a: impl FnOnce() -> A + Send,
    b: impl FnOnce() -> B + Send,
) -> (A, B) {
    let mut ra = None;
    let mut rb = None;
    std::thread::scope(|scope| {
        let ha = scope.spawn(a);
        rb = Some(b());
        ra = Some(ha.join().expect("join worker panicked"));
    });
    (ra.expect("left result set"), rb.expect("right result set"))
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Consumes `self` into a parallel pipeline.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;
    /// Borrows `self` into a parallel pipeline.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A materialized parallel pipeline stage.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every element through `f` (executed in parallel at collect).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Collects the elements unchanged.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel pipeline, evaluated by [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Evaluates the map in parallel and collects in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, self.f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_refs() {
        let v: Vec<u64> = (0..100).collect();
        let sum: Vec<u64> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(sum.iter().sum::<u64>(), (1..=100).sum::<u64>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u8> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
