//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom::shuffle`] — on top of a
//! xoshiro256** generator seeded through SplitMix64.
//!
//! Determinism matters more than distribution pedigree here: every
//! experiment seeds its generator explicitly, and the repo's statistical
//! assertions (reduction rates, bimodality contrasts) hold for any
//! reasonable uniform generator. Streams are **not** bit-compatible with
//! upstream `rand`'s `StdRng` (ChaCha12); they are stable across runs and
//! platforms, which is the property the experiments depend on.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniform bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A bare SplitMix64 generator with deterministic seed-splitting.
///
/// Where [`Xoshiro256StarStar`] is the workspace's statistical workhorse,
/// `SplitMix64` is the *addressable* generator: [`SplitMix64::split`]
/// derives an independent child stream from a stream id without advancing
/// the parent, so a family of per-entity streams (one per directed NoC
/// link, say) is fully determined by `(seed, entity id)` — reproducible
/// regardless of the order entities draw in, and cheap enough to hold one
/// per entity (a single `u64` of state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Builds the root stream for `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives the child stream `stream` of this generator's *current*
    /// state, without advancing the parent. Distinct stream ids yield
    /// decorrelated sequences (each id lands the child seed behind one
    /// full SplitMix64 finalizer); `a.split(s)` is a pure function of
    /// `(a.state, s)`, so split trees are reproducible.
    #[must_use]
    pub fn split(&self, stream: u64) -> Self {
        // Offset the state by a stream-scaled odd constant (the golden
        // gamma), then finalize once so adjacent ids decorrelate.
        let mut s = self
            .state
            .wrapping_add(stream.wrapping_mul(0xa076_1d64_78bd_642f));
        let seed = splitmix64(&mut s);
        Self { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// The workspace's standard generator: xoshiro256**.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types that can be drawn uniformly from a generator (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform sampler over half-open and inclusive ranges.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {
        $(impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sampling range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sampling range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        })*
    };
}
impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {
        $(impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sampling range");
                let unit: $t = Standard::sample(rng);
                lo + (hi - lo) * unit
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_range(rng, lo, hi)
            }
        })*
    };
}
impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level drawing interface, automatically implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range (half-open or inclusive).
    fn gen_range<T, Rge>(&mut self, range: Rge) -> T
    where
        Self: Sized,
        Rge: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's deterministic standard generator.
    pub type StdRng = super::Xoshiro256StarStar;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(0..16usize);
            assert!(x < 16);
            let y = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&y));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let b = rng.gen_range(0..4i8);
            assert!((0..4).contains(&b));
        }
    }

    #[test]
    fn roughly_uniform_bits() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ones = 0u64;
        const N: u64 = 10_000;
        for _ in 0..N {
            ones += u64::from(rng.gen::<u64>().count_ones());
        }
        let mean = ones as f64 / N as f64;
        assert!((mean - 32.0).abs() < 0.5, "mean popcount {mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn splitmix_streams_are_independent_and_order_free() {
        use super::{RngCore, SplitMix64};
        // Children of distinct stream ids produce pairwise-distinct
        // sequences...
        let root = SplitMix64::new(0xfeed);
        let mut streams: Vec<SplitMix64> = (0..16).map(|id| root.split(id)).collect();
        let draws: Vec<Vec<u64>> = streams
            .iter_mut()
            .map(|s| (0..32).map(|_| s.next_u64()).collect())
            .collect();
        for i in 0..draws.len() {
            for j in (i + 1)..draws.len() {
                assert_ne!(draws[i], draws[j], "streams {i} and {j} collide");
                // ...and are decorrelated, not merely shifted copies.
                assert!(
                    !draws[j].windows(4).any(|w| w == &draws[i][..4]),
                    "stream {j} replays a window of stream {i}"
                );
            }
        }
        // Splitting never advances the parent: the split tree is a pure
        // function of (seed, id), independent of derivation order.
        let a = root.split(3);
        let _ = root.split(7);
        let b = root.split(3);
        assert_eq!(a, b);
        // Per-stream draws do not depend on how many sibling streams drew
        // first (the order-independence the per-link error model needs).
        let mut fresh = SplitMix64::new(0xfeed).split(5);
        let mut after_siblings = root.split(5);
        for _ in 0..8 {
            assert_eq!(fresh.next_u64(), after_siblings.next_u64());
        }
        // Bits stay roughly uniform (sanity on the raw generator).
        let mut s = SplitMix64::new(1);
        let ones: u64 = (0..4096)
            .map(|_| u64::from(s.next_u64().count_ones()))
            .sum();
        let mean = ones as f64 / 4096.0;
        assert!((mean - 32.0).abs() < 0.5, "mean popcount {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }
}
