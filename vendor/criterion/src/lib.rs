//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::iter`, `black_box`) as a
//! plain wall-clock harness.
//!
//! Every finished group additionally writes a machine-readable
//! `BENCH_<group>.json` file in the `btr-bench-v1` schema shared with the
//! sweep runner in `crates/experiments` (see `EXPERIMENTS.md`), so bench
//! results can be tracked as a trajectory across commits:
//!
//! ```json
//! {"schema": "btr-bench-v1", "group": "noc",
//!  "results": [{"name": "...", "mean_ns": 1234.5, "median_ns": 1200.0,
//!               "min_ns": 1100.0, "samples": 20, "iters_per_sample": 8}]}
//! ```
//!
//! The output directory defaults to `target/btr-bench` under the
//! workspace root (found by walking up from the bench's cwd to the
//! nearest `Cargo.lock`) and can be overridden with the
//! `BTR_BENCH_JSON_DIR` environment variable.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level bench driver, one per `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            results: Vec::new(),
        }
    }
}

/// One measurement of a named benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id within the group.
    pub name: String,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Fastest sample's nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations batched into each sample.
    pub iters_per_sample: u64,
}

/// A group of related benchmarks sharing a sample budget.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measures one closure-driven benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into();
        // Warm-up + calibration: run until we can estimate ns/iter.
        let mut bencher = Bencher {
            iters: 1,
            elapsed_ns: 0,
        };
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed().as_millis() < 30 && calib_iters < 1000 {
            f(&mut bencher);
            calib_iters += bencher.iters;
        }
        let est_ns_per_iter =
            (calib_start.elapsed().as_nanos() as f64 / calib_iters.max(1) as f64).max(1.0);
        // Batch iterations so one sample takes roughly 10 ms.
        let iters_per_sample = ((10.0e6 / est_ns_per_iter).ceil() as u64).clamp(1, 1 << 24);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed_ns: 0,
            };
            f(&mut b);
            per_iter_ns.push(b.elapsed_ns as f64 / b.iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let median_ns = per_iter_ns[per_iter_ns.len() / 2];
        let min_ns = per_iter_ns[0];
        println!(
            "bench {}/{name}: {mean_ns:.0} ns/iter (median {median_ns:.0}, min {min_ns:.0}, {} samples x {iters_per_sample} iters)",
            self.name, per_iter_ns.len()
        );
        self.results.push(BenchResult {
            name,
            mean_ns,
            median_ns,
            min_ns,
            samples: per_iter_ns.len(),
            iters_per_sample,
        });
        self
    }

    /// Finishes the group: writes `BENCH_<group>.json`.
    pub fn finish(self) {
        let dir = std::env::var("BTR_BENCH_JSON_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|_| default_json_dir());
        let path = dir.join(format!("BENCH_{}.json", self.name));
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| {
            let mut out = String::new();
            out.push_str("{\"schema\": \"btr-bench-v1\", \"group\": \"");
            out.push_str(&escape(&self.name));
            out.push_str("\", \"results\": [");
            for (i, r) in self.results.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"name\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
                    escape(&r.name), r.mean_ns, r.median_ns, r.min_ns, r.samples, r.iters_per_sample
                ));
            }
            out.push_str("]}\n");
            std::fs::write(&path, out)
        }) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("bench group {} -> {}", self.name, path.display());
        }
    }
}

/// Default output directory: `target/btr-bench` under the *workspace*
/// root. `cargo bench` runs binaries with the package directory as cwd,
/// so a bare relative path would scatter results into per-package
/// `target/` directories; instead walk up from cwd to the first
/// ancestor holding a `Cargo.lock` (the workspace root) and anchor
/// there. Falls back to cwd-relative if no lockfile is found.
fn default_json_dir() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    let mut probe: &std::path::Path = &cwd;
    loop {
        if probe.join("Cargo.lock").exists() {
            return probe.join("target").join("btr-bench");
        }
        match probe.parent() {
            Some(parent) => probe = parent,
            None => return cwd.join("target").join("btr-bench"),
        }
    }
}

/// JSON string escaping for names.
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Batch sizing hint for [`Bencher::iter_batched`]. Accepted for API
/// compatibility with criterion; the shim times each routine call
/// individually, so setup cost never lands in the measurement
/// regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; criterion would batch many per alloc.
    SmallInput,
    /// Inputs are large; criterion would build few at a time.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `iters` calls of `f`, keeping results observable.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Times `iters` calls of `routine`, each on a fresh input built by
    /// `setup` *outside* the timed region — for benchmarks whose routine
    /// consumes its input, where rebuilding it would otherwise pollute
    /// the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed().as_nanos();
        }
        self.elapsed_ns = elapsed;
    }
}

/// Declares a bench group function calling each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_runs_and_records() {
        std::env::set_var(
            "BTR_BENCH_JSON_DIR",
            std::env::temp_dir().join("btr-bench-test"),
        );
        let mut c = super::Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        group.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(group.results.len(), 1);
        assert!(group.results[0].mean_ns > 0.0);
        group.finish();
    }

    #[test]
    fn iter_batched_excludes_setup() {
        std::env::set_var(
            "BTR_BENCH_JSON_DIR",
            std::env::temp_dir().join("btr-bench-test"),
        );
        let mut c = super::Criterion::default();
        let mut group = c.benchmark_group("selftest_batched");
        group.sample_size(2);
        group.bench_function("consume_vec", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.into_iter().sum::<u64>(),
                super::BatchSize::SmallInput,
            )
        });
        assert!(group.results[0].mean_ns > 0.0);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(super::escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
