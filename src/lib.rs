//! # noc-btr — umbrella crate
//!
//! Reproduction of *"Bit Transition Reduction by Data Transmission Ordering
//! in NoC-based DNN Accelerator"* (Chen, Li, Zhu, Lu — SOCC 2025).
//!
//! This crate re-exports the whole workspace under one name so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`bits`] — bit-level primitives (words, payloads, BT counting).
//! * [`core`] — the paper's contribution: `'1'`-bit-count data transmission
//!   ordering (affiliated / separated), flitization, theory, ordering unit.
//! * [`dnn`] — DNN substrate (tensors, layers, LeNet/DarkNet, training,
//!   quantization).
//! * [`noc`] — cycle-level 2D-mesh NoC simulator with per-link BT recording.
//! * [`accel`] — NOC-DNA: full DNN inference over the NoC.
//! * [`hw`] — hardware area/power/link-energy models.
//!
//! See `EXPERIMENTS.md` for the per-experiment binary index, the sweep
//! runner's usage and the machine-readable result schemas.

#![forbid(unsafe_code)]

pub use btr_accel as accel;
pub use btr_bits as bits;
pub use btr_core as core;
pub use btr_dnn as dnn;
pub use btr_hw as hw;
pub use btr_noc as noc;
