//! Fixed-point quantization helpers over [`btr_bits::Quantizer`].
//!
//! The fixed-8 experiments quantize weights and activations per tensor
//! (symmetric, two's complement). The accelerator quantizes activations
//! dynamically — each layer's input tensor gets a scale from its own
//! max-abs — which matches how the reference quantized forward in
//! `btr-accel` is defined, so results are bit-exact between the two.

use crate::tensor::Tensor;
use btr_bits::word::Fx8Word;
use btr_bits::{QuantError, Quantizer};

/// A tensor quantized to 8-bit codes with its scale.
#[derive(Debug, Clone)]
pub struct QuantizedTensor {
    /// The 8-bit codes in the tensor's row-major order.
    pub codes: Vec<Fx8Word>,
    /// Original shape.
    pub shape: Vec<usize>,
    /// The quantizer (carries the scale).
    pub quantizer: Quantizer,
}

impl QuantizedTensor {
    /// Quantizes a tensor with a scale derived from its own max-abs.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError`] if the tensor contains non-finite values.
    pub fn quantize(tensor: &Tensor, bits: u32) -> Result<Self, QuantError> {
        let quantizer = Quantizer::from_data(tensor.data(), bits)?;
        let codes = tensor
            .data()
            .iter()
            .map(|&x| quantizer.quantize_fx8(x))
            .collect();
        Ok(Self {
            codes,
            shape: tensor.shape().to_vec(),
            quantizer,
        })
    }

    /// Quantizes with an explicit scale (e.g. `1.0` for a global Q0.7
    /// format shared by all tensors); values beyond the scale saturate.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError`] if the scale is not finite and positive.
    pub fn quantize_with_scale(tensor: &Tensor, bits: u32, scale: f32) -> Result<Self, QuantError> {
        let quantizer = Quantizer::new(scale, bits)?;
        let codes = tensor
            .data()
            .iter()
            .map(|&x| quantizer.quantize_fx8(x))
            .collect();
        Ok(Self {
            codes,
            shape: tensor.shape().to_vec(),
            quantizer,
        })
    }

    /// Dequantizes back to a float tensor.
    #[must_use]
    pub fn dequantize(&self) -> Tensor {
        let data = self
            .codes
            .iter()
            .map(|&c| self.quantizer.dequantize_fx8(c))
            .collect();
        Tensor::from_vec(&self.shape, data).expect("shape preserved")
    }

    /// Number of codes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when there are no codes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// Collects every conv/linear weight value of an inference graph into one
/// flat vector — the weight pool the "without NoC" experiments draw
/// packets from.
#[must_use]
pub fn weight_pool(ops: &[crate::model::InferenceOp]) -> Vec<f32> {
    use crate::model::InferenceOp;
    let mut pool = Vec::new();
    for op in ops {
        match op {
            InferenceOp::Conv { weight, .. } | InferenceOp::Linear { weight, .. } => {
                pool.extend_from_slice(weight.data());
            }
            _ => {}
        }
    }
    pool
}

/// Groups an inference graph's conv kernels into packets: one packet per
/// (output-channel, input-channel) k×k kernel, the granularity of Fig. 2.
/// Linear layers contribute per-output-neuron weight rows, split into
/// kernel-sized chunks.
#[must_use]
pub fn kernel_packets(ops: &[crate::model::InferenceOp], chunk: usize) -> Vec<Vec<f32>> {
    use crate::model::InferenceOp;
    let mut packets = Vec::new();
    for op in ops {
        match op {
            InferenceOp::Conv { weight, .. } => {
                let (oc, ic, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
                let ksz = k * weight.shape()[3];
                for o in 0..oc {
                    for i in 0..ic {
                        let start = (o * ic + i) * ksz;
                        packets.push(weight.data()[start..start + ksz].to_vec());
                    }
                }
            }
            InferenceOp::Linear { weight, .. } => {
                let (out_f, in_f) = (weight.shape()[0], weight.shape()[1]);
                for o in 0..out_f {
                    let row = &weight.data()[o * in_f..(o + 1) * in_f];
                    for c in row.chunks(chunk) {
                        packets.push(c.to_vec());
                    }
                }
            }
            _ => {}
        }
    }
    packets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::lenet;

    #[test]
    fn quantize_roundtrip_error_bound() {
        let t = Tensor::from_vec(&[4], vec![0.5, -0.25, 0.1, -0.9]).unwrap();
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        assert_eq!(q.len(), 4);
        assert!(!q.is_empty());
        let back = q.dequantize();
        for (a, b) in t.data().iter().zip(back.data().iter()) {
            assert!((a - b).abs() <= q.quantizer.max_abs_error() + 1e-6);
        }
    }

    #[test]
    fn weight_pool_covers_all_noc_layers() {
        let ops = lenet::build(0).inference_ops();
        let pool = weight_pool(&ops);
        // conv1 150 + conv2 2400 + fc 48000 + 10080 + 840 = 61470 weights
        // (biases excluded).
        assert_eq!(pool.len(), 61_470);
    }

    #[test]
    fn kernel_packets_match_fig2_granularity() {
        let ops = lenet::build(0).inference_ops();
        let packets = kernel_packets(&ops, 25);
        // conv1: 6 kernels of 25; conv2: 96 kernels of 25; fc rows chunked
        // by 25: fc1 120 rows × 16 full chunks, fc2 84 × 4, fc3 10 × 3
        // (tail chunks are shorter than 25).
        assert_eq!(
            packets.iter().filter(|p| p.len() == 25).count(),
            6 + 96 + 120 * 16 + 84 * 4 + 10 * 3
        );
        let total: usize = packets.iter().map(Vec::len).sum();
        assert_eq!(total, 61_470);
    }

    #[test]
    fn near_zero_tensor_quantizes_to_small_codes() {
        let t = Tensor::from_vec(&[3], vec![0.001, -0.002, 0.0005]).unwrap();
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        // Per-tensor scale adapts: the max-abs value maps to ±127.
        assert_eq!(q.codes[1].code(), -127);
    }
}
