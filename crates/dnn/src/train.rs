//! SGD training with softmax cross-entropy.
//!
//! Produces the "trained weights" configuration of Table I and the NoC
//! experiments. Training is fully deterministic given a seed.

use crate::data::Sample;
use crate::model::Sequential;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Numerically stable softmax.
#[must_use]
pub fn softmax(logits: &Tensor) -> Tensor {
    let max = logits
        .data()
        .iter()
        .cloned()
        .fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.data().iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_vec(logits.shape(), exps.into_iter().map(|e| e / sum).collect())
        .expect("same shape")
}

/// Softmax cross-entropy loss and its gradient with respect to the logits.
///
/// # Panics
///
/// Panics if `label` is out of range.
#[must_use]
pub fn cross_entropy(logits: &Tensor, label: usize) -> (f32, Tensor) {
    assert!(label < logits.len(), "label out of range");
    let probs = softmax(logits);
    let loss = -(probs.data()[label].max(1e-12)).ln();
    let mut grad = probs;
    grad.data_mut()[label] -= 1.0;
    (loss, grad)
}

/// Training configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Samples per SGD step (gradients accumulate across the batch).
    pub batch_size: usize,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// L2 weight decay coupled to the learning rate (`w ← w·(1 − lr·wd)`
    /// each step). Converged DNN weights concentrate near zero — the
    /// distribution the paper's trained-weight experiments rely on — and
    /// weight decay is the standard mechanism that produces it.
    pub weight_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 3,
            lr: 0.02,
            batch_size: 8,
            lr_decay: 0.7,
            weight_decay: 1e-3,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the evaluation set after training (0..=1).
    pub eval_accuracy: f32,
}

/// Trains `model` in place on `train_set`, evaluating on `eval_set`.
pub fn train(
    model: &mut Sequential,
    train_set: &[Sample],
    eval_set: &[Sample],
    config: &TrainConfig,
) -> TrainReport {
    let mut lr = config.lr;
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        let mut total_loss = 0.0f64;
        let mut since_step = 0usize;
        for sample in train_set {
            let logits = model.forward(&sample.input);
            let (loss, grad) = cross_entropy(&logits, sample.label);
            total_loss += f64::from(loss);
            model.backward(&grad);
            since_step += 1;
            if since_step == config.batch_size {
                model.sgd_step_decayed(lr / config.batch_size as f32, config.weight_decay);
                since_step = 0;
            }
        }
        if since_step > 0 {
            model.sgd_step_decayed(lr / since_step as f32, config.weight_decay);
        }
        epoch_losses.push((total_loss / train_set.len() as f64) as f32);
        lr *= config.lr_decay;
    }
    TrainReport {
        epoch_losses,
        eval_accuracy: accuracy(model, eval_set),
    }
}

/// Classification accuracy of `model` on `samples`.
#[must_use]
pub fn accuracy(model: &Sequential, samples: &[Sample]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = samples
        .iter()
        .filter(|s| model.infer(&s.input).argmax() == s.label)
        .count();
    correct as f32 / samples.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticDigits;
    use crate::layer::{ActKind, Activation, Conv2d, Flatten, Linear, MaxPool2d};
    use crate::model::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn softmax_sums_to_one() {
        let logits = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        let p = softmax(&logits);
        let sum: f32 = p.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p.data()[2] > p.data()[1] && p.data()[1] > p.data()[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let logits = Tensor::from_vec(&[2], vec![1000.0, 1001.0]).unwrap();
        let p = softmax(&logits);
        assert!(p.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn cross_entropy_gradient_direction() {
        let logits = Tensor::from_vec(&[3], vec![0.0, 0.0, 0.0]).unwrap();
        let (loss, grad) = cross_entropy(&logits, 1);
        assert!((loss - (3.0f32).ln()).abs() < 1e-5);
        // Gradient pushes the true class up (negative grad) and others down.
        assert!(grad.data()[1] < 0.0);
        assert!(grad.data()[0] > 0.0 && grad.data()[2] > 0.0);
        let sum: f32 = grad.data().iter().sum();
        assert!(sum.abs() < 1e-6);
    }

    /// A small conv net trains to well-above-chance accuracy on the
    /// synthetic digits within a few hundred samples. This is the learnable
    /// dataset guarantee the "trained weights" configuration rests on.
    #[test]
    fn small_model_learns_synthetic_digits() {
        let mut rng = StdRng::seed_from_u64(5);
        let gen = SyntheticDigits::new();
        let train_set = gen.dataset(300, &mut rng);
        let eval_set = gen.dataset(100, &mut rng);
        let mut wrng = StdRng::seed_from_u64(0);
        let mut model = Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 4, 5, 2, 0, &mut wrng)),
            Layer::Activation(Activation::new(ActKind::ReLU)),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(4 * 7 * 7, 10, &mut wrng)),
        ]);
        let report = train(
            &mut model,
            &train_set,
            &eval_set,
            &TrainConfig {
                epochs: 3,
                lr: 0.05,
                batch_size: 8,
                lr_decay: 0.7,
                weight_decay: 0.0,
            },
        );
        assert!(
            report.epoch_losses.last().unwrap() < &report.epoch_losses[0],
            "loss must decrease: {:?}",
            report.epoch_losses
        );
        assert!(
            report.eval_accuracy > 0.4,
            "expected well above 10% chance, got {}",
            report.eval_accuracy
        );
    }

    #[test]
    fn accuracy_of_empty_set_is_zero() {
        let model = crate::models::lenet::build(0);
        assert_eq!(accuracy(&model, &[]), 0.0);
    }
}
