//! Dense `f32` tensors with explicit shapes.
//!
//! The substrate only needs single-sample tensors: `[C, H, W]` feature maps
//! and `[N]` vectors. Indexing is row-major (last dimension fastest).

use serde::{Deserialize, Serialize};

/// Error returned when a shape and a data length disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    expected: usize,
    actual: usize,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shape expects {} elements but data has {}",
            self.expected, self.actual
        )
    }
}

impl std::error::Error for ShapeError {}

/// A dense row-major `f32` tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// An all-zero tensor of the given shape.
    #[must_use]
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Builds a tensor from raw data.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len()` does not equal the shape's
    /// element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self, ShapeError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(ShapeError {
                expected,
                actual: data.len(),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
        })
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the raw data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at a 3-D index of a `[C, H, W]` tensor.
    #[inline]
    #[must_use]
    pub fn at3(&self, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 3);
        let (hh, ww) = (self.shape[1], self.shape[2]);
        debug_assert!(c < self.shape[0] && h < hh && w < ww);
        self.data[(c * hh + h) * ww + w]
    }

    /// Sets the element at a 3-D index of a `[C, H, W]` tensor.
    #[inline]
    pub fn set3(&mut self, c: usize, h: usize, w: usize, v: f32) {
        debug_assert_eq!(self.shape.len(), 3);
        let (hh, ww) = (self.shape[1], self.shape[2]);
        debug_assert!(c < self.shape[0] && h < hh && w < ww);
        self.data[(c * hh + h) * ww + w] = v;
    }

    /// Adds to the element at a 3-D index of a `[C, H, W]` tensor.
    #[inline]
    pub fn add3(&mut self, c: usize, h: usize, w: usize, v: f32) {
        debug_assert_eq!(self.shape.len(), 3);
        let (hh, ww) = (self.shape[1], self.shape[2]);
        self.data[(c * hh + h) * ww + w] += v;
    }

    /// Element at a 4-D index of a `[O, I, Kh, Kw]` tensor (conv weights).
    #[inline]
    #[must_use]
    pub fn at4(&self, o: usize, i: usize, kh: usize, kw: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (ii, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((o * ii + i) * hh + kh) * ww + kw]
    }

    /// Adds to the element at a 4-D index.
    #[inline]
    pub fn add4(&mut self, o: usize, i: usize, kh: usize, kw: usize, v: f32) {
        debug_assert_eq!(self.shape.len(), 4);
        let (ii, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((o * ii + i) * hh + kh) * ww + kw] += v;
    }

    /// Returns a reshaped copy sharing the same element count.
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    #[must_use]
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        let expected: usize = shape.iter().product();
        assert_eq!(expected, self.data.len(), "reshape element count mismatch");
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Largest absolute value (0.0 for empty tensors).
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Index of the maximum element (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    #[must_use]
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Element-wise map into a new tensor.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place AXPY: `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Sets every element to zero (gradient reset).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(!t.is_empty());
        assert_eq!(t.max_abs(), 0.0);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(&[2, 2], vec![1.0; 3]).unwrap_err();
        assert!(err.to_string().contains("4 elements"));
    }

    #[test]
    fn indexing_3d_row_major() {
        let mut t = Tensor::zeros(&[2, 2, 2]);
        t.set3(1, 0, 1, 5.0);
        assert_eq!(t.at3(1, 0, 1), 5.0);
        assert_eq!(t.data()[5], 5.0); // (1*2 + 0)*2 + 1
        t.add3(1, 0, 1, 1.0);
        assert_eq!(t.at3(1, 0, 1), 6.0);
    }

    #[test]
    fn indexing_4d() {
        let mut t = Tensor::zeros(&[2, 3, 2, 2]);
        t.add4(1, 2, 1, 0, 7.0);
        assert_eq!(t.at4(1, 2, 1, 0), 7.0);
    }

    #[test]
    fn reshape_and_argmax() {
        let t = Tensor::from_vec(&[4], vec![0.0, 3.0, -1.0, 3.0]).unwrap();
        assert_eq!(t.argmax(), 1); // first on ties
        let r = t.reshaped(&[2, 2]);
        assert_eq!(r.shape(), &[2, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "element count mismatch")]
    fn reshape_rejects_bad_count() {
        let _ = Tensor::zeros(&[4]).reshaped(&[3]);
    }

    #[test]
    fn map_axpy_zero() {
        let a = Tensor::from_vec(&[3], vec![1.0, -2.0, 3.0]).unwrap();
        let b = a.map(|x| x * 2.0);
        assert_eq!(b.data(), &[2.0, -4.0, 6.0]);
        let mut c = Tensor::zeros(&[3]);
        c.axpy(0.5, &b);
        assert_eq!(c.data(), &[1.0, -2.0, 3.0]);
        c.fill_zero();
        assert_eq!(c.max_abs(), 0.0);
        assert_eq!(a.max_abs(), 3.0);
    }
}
