//! Neural-network layers with forward and backward passes.
//!
//! All layers operate on single-sample tensors (`[C, H, W]` feature maps or
//! `[N]` vectors); the trainer accumulates gradients across a mini-batch by
//! calling backward once per sample before the SGD step.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation function kinds shared by [`Activation`] and the inference
/// graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ActKind {
    /// Rectified linear unit.
    ReLU,
    /// Leaky ReLU with the given negative slope (DarkNet uses 0.1).
    LeakyReLU(f32),
    /// Hyperbolic tangent (classic LeNet nonlinearity).
    Tanh,
}

impl ActKind {
    /// Applies the activation to a scalar.
    #[must_use]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            ActKind::ReLU => x.max(0.0),
            ActKind::LeakyReLU(slope) => {
                if x > 0.0 {
                    x
                } else {
                    slope * x
                }
            }
            ActKind::Tanh => x.tanh(),
        }
    }

    /// Derivative given the pre-activation input.
    #[must_use]
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            ActKind::ReLU => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActKind::LeakyReLU(slope) => {
                if x > 0.0 {
                    1.0
                } else {
                    slope
                }
            }
            ActKind::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
        }
    }
}

/// Kaiming-uniform style initialization bound for a fan-in.
fn init_bound(fan_in: usize) -> f32 {
    (1.0 / fan_in as f32).sqrt()
}

/// 2-D convolution over a `[C_in, H, W]` input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Square kernel size `k`.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each side.
    pub padding: usize,
    /// Weights `[out_c, in_c, k, k]`.
    pub weight: Tensor,
    /// Biases `[out_c]`.
    pub bias: Tensor,
    /// Accumulated weight gradients.
    pub grad_weight: Tensor,
    /// Accumulated bias gradients.
    pub grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-uniform random weights.
    #[must_use]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let bound = init_bound(fan_in);
        let wlen = out_channels * in_channels * kernel * kernel;
        let weight = Tensor::from_vec(
            &[out_channels, in_channels, kernel, kernel],
            (0..wlen).map(|_| rng.gen_range(-bound..bound)).collect(),
        )
        .expect("shape matches data");
        let bias = Tensor::from_vec(
            &[out_channels],
            (0..out_channels)
                .map(|_| rng.gen_range(-bound..bound))
                .collect(),
        )
        .expect("shape matches data");
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            grad_weight: Tensor::zeros(weight.shape()),
            grad_bias: Tensor::zeros(bias.shape()),
            weight,
            bias,
            cached_input: None,
        }
    }

    /// Output spatial size for an input spatial size.
    #[must_use]
    pub fn out_size(&self, in_size: usize) -> usize {
        (in_size + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Forward pass; caches the input for backward.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = self.infer(input);
        self.cached_input = Some(input.clone());
        out
    }

    /// Inference-only forward (no caching).
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[in_channels, H, W]`.
    #[must_use]
    pub fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 3, "conv input must be [C, H, W]");
        assert_eq!(input.shape()[0], self.in_channels, "channel mismatch");
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let mut out = Tensor::zeros(&[self.out_channels, oh, ow]);
        for oc in 0..self.out_channels {
            let b = self.bias.data()[oc];
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = b;
                    for ic in 0..self.in_channels {
                        for kh in 0..self.kernel {
                            let ih = y * self.stride + kh;
                            let Some(ih) = ih.checked_sub(self.padding) else {
                                continue;
                            };
                            if ih >= h {
                                continue;
                            }
                            for kw in 0..self.kernel {
                                let iw = x * self.stride + kw;
                                let Some(iw) = iw.checked_sub(self.padding) else {
                                    continue;
                                };
                                if iw >= w {
                                    continue;
                                }
                                acc += input.at3(ic, ih, iw) * self.weight.at4(oc, ic, kh, kw);
                            }
                        }
                    }
                    out.set3(oc, y, x, acc);
                }
            }
        }
        out
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Conv2d::forward`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward requires a prior forward");
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (oh, ow) = (grad_out.shape()[1], grad_out.shape()[2]);
        let mut grad_in = Tensor::zeros(input.shape());
        for oc in 0..self.out_channels {
            for y in 0..oh {
                for x in 0..ow {
                    let g = grad_out.at3(oc, y, x);
                    if g == 0.0 {
                        continue;
                    }
                    self.grad_bias.data_mut()[oc] += g;
                    for ic in 0..self.in_channels {
                        for kh in 0..self.kernel {
                            let ih = y * self.stride + kh;
                            let Some(ih) = ih.checked_sub(self.padding) else {
                                continue;
                            };
                            if ih >= h {
                                continue;
                            }
                            for kw in 0..self.kernel {
                                let iw = x * self.stride + kw;
                                let Some(iw) = iw.checked_sub(self.padding) else {
                                    continue;
                                };
                                if iw >= w {
                                    continue;
                                }
                                self.grad_weight
                                    .add4(oc, ic, kh, kw, g * input.at3(ic, ih, iw));
                                grad_in.add3(ic, ih, iw, g * self.weight.at4(oc, ic, kh, kw));
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }
}

/// Fully connected layer over a `[N]` vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
    /// Weights `[out, in]`.
    pub weight: Tensor,
    /// Biases `[out]`.
    pub bias: Tensor,
    /// Accumulated weight gradients.
    pub grad_weight: Tensor,
    /// Accumulated bias gradients.
    pub grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a fully connected layer with Kaiming-uniform weights.
    #[must_use]
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        let bound = init_bound(in_features);
        let weight = Tensor::from_vec(
            &[out_features, in_features],
            (0..in_features * out_features)
                .map(|_| rng.gen_range(-bound..bound))
                .collect(),
        )
        .expect("shape matches data");
        let bias = Tensor::from_vec(
            &[out_features],
            (0..out_features)
                .map(|_| rng.gen_range(-bound..bound))
                .collect(),
        )
        .expect("shape matches data");
        Self {
            in_features,
            out_features,
            grad_weight: Tensor::zeros(weight.shape()),
            grad_bias: Tensor::zeros(bias.shape()),
            weight,
            bias,
            cached_input: None,
        }
    }

    /// Forward pass; caches the input for backward.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = self.infer(input);
        self.cached_input = Some(input.clone());
        out
    }

    /// Inference-only forward.
    ///
    /// # Panics
    ///
    /// Panics if the input length differs from `in_features`.
    #[must_use]
    pub fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.len(), self.in_features, "linear input size mismatch");
        let mut out = Tensor::zeros(&[self.out_features]);
        for o in 0..self.out_features {
            let row = &self.weight.data()[o * self.in_features..(o + 1) * self.in_features];
            let mut acc = self.bias.data()[o];
            for (x, w) in input.data().iter().zip(row.iter()) {
                acc += x * w;
            }
            out.data_mut()[o] = acc;
        }
        out
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Linear::forward`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward requires a prior forward");
        let mut grad_in = Tensor::zeros(&[self.in_features]);
        for o in 0..self.out_features {
            let g = grad_out.data()[o];
            self.grad_bias.data_mut()[o] += g;
            let row_start = o * self.in_features;
            for i in 0..self.in_features {
                self.grad_weight.data_mut()[row_start + i] += g * input.data()[i];
                grad_in.data_mut()[i] += g * self.weight.data()[row_start + i];
            }
        }
        grad_in
    }
}

/// Max pooling over non-overlapping (or strided) windows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2d {
    /// Window size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    cached_input_shape: Option<Vec<usize>>,
    cached_argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    #[must_use]
    pub fn new(kernel: usize, stride: usize) -> Self {
        Self {
            kernel,
            stride,
            cached_input_shape: None,
            cached_argmax: Vec::new(),
        }
    }

    /// Forward pass; records argmax positions for backward.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let (out, argmax) = self.infer_with_argmax(input);
        self.cached_input_shape = Some(input.shape().to_vec());
        self.cached_argmax = argmax;
        out
    }

    /// Inference-only forward.
    #[must_use]
    pub fn infer(&self, input: &Tensor) -> Tensor {
        self.infer_with_argmax(input).0
    }

    fn infer_with_argmax(&self, input: &Tensor) -> (Tensor, Vec<usize>) {
        let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let oh = (h - self.kernel) / self.stride + 1;
        let ow = (w - self.kernel) / self.stride + 1;
        let mut out = Tensor::zeros(&[c, oh, ow]);
        let mut argmax = vec![0usize; c * oh * ow];
        for ch in 0..c {
            for y in 0..oh {
                for x in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for kh in 0..self.kernel {
                        for kw in 0..self.kernel {
                            let (ih, iw) = (y * self.stride + kh, x * self.stride + kw);
                            let v = input.at3(ch, ih, iw);
                            if v > best {
                                best = v;
                                best_idx = (ch * h + ih) * w + iw;
                            }
                        }
                    }
                    out.set3(ch, y, x, best);
                    argmax[(ch * oh + y) * ow + x] = best_idx;
                }
            }
        }
        (out, argmax)
    }

    /// Backward pass: routes each gradient to its argmax position.
    ///
    /// # Panics
    ///
    /// Panics if called before [`MaxPool2d::forward`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_input_shape
            .as_ref()
            .expect("backward requires a prior forward");
        let mut grad_in = Tensor::zeros(shape);
        for (g, &idx) in grad_out.data().iter().zip(self.cached_argmax.iter()) {
            grad_in.data_mut()[idx] += g;
        }
        grad_in
    }
}

/// Average pooling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AvgPool2d {
    /// Window size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    cached_input_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer.
    #[must_use]
    pub fn new(kernel: usize, stride: usize) -> Self {
        Self {
            kernel,
            stride,
            cached_input_shape: None,
        }
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_input_shape = Some(input.shape().to_vec());
        self.infer(input)
    }

    /// Inference-only forward.
    #[must_use]
    pub fn infer(&self, input: &Tensor) -> Tensor {
        let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let oh = (h - self.kernel) / self.stride + 1;
        let ow = (w - self.kernel) / self.stride + 1;
        let norm = 1.0 / (self.kernel * self.kernel) as f32;
        let mut out = Tensor::zeros(&[c, oh, ow]);
        for ch in 0..c {
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = 0.0;
                    for kh in 0..self.kernel {
                        for kw in 0..self.kernel {
                            acc += input.at3(ch, y * self.stride + kh, x * self.stride + kw);
                        }
                    }
                    out.set3(ch, y, x, acc * norm);
                }
            }
        }
        out
    }

    /// Backward pass: distributes each gradient uniformly over its window.
    ///
    /// # Panics
    ///
    /// Panics if called before [`AvgPool2d::forward`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_input_shape
            .as_ref()
            .expect("backward requires a prior forward");
        let mut grad_in = Tensor::zeros(shape);
        let (_, oh, ow) = (
            grad_out.shape()[0],
            grad_out.shape()[1],
            grad_out.shape()[2],
        );
        let norm = 1.0 / (self.kernel * self.kernel) as f32;
        for ch in 0..grad_out.shape()[0] {
            for y in 0..oh {
                for x in 0..ow {
                    let g = grad_out.at3(ch, y, x) * norm;
                    for kh in 0..self.kernel {
                        for kw in 0..self.kernel {
                            grad_in.add3(ch, y * self.stride + kh, x * self.stride + kw, g);
                        }
                    }
                }
            }
        }
        grad_in
    }
}

/// Element-wise activation layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Activation {
    /// The activation function.
    pub kind: ActKind,
    cached_input: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer.
    #[must_use]
    pub fn new(kind: ActKind) -> Self {
        Self {
            kind,
            cached_input: None,
        }
    }

    /// Forward pass; caches the pre-activation input.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_input = Some(input.clone());
        self.infer(input)
    }

    /// Inference-only forward.
    #[must_use]
    pub fn infer(&self, input: &Tensor) -> Tensor {
        input.map(|x| self.kind.apply(x))
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Activation::forward`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward requires a prior forward");
        let mut grad_in = grad_out.clone();
        for (g, &x) in grad_in.data_mut().iter_mut().zip(input.data().iter()) {
            *g *= self.kind.derivative(x);
        }
        grad_in
    }
}

/// Flattens `[C, H, W]` into `[C·H·W]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    #[must_use]
    pub fn new() -> Self {
        Self { cached_shape: None }
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_shape = Some(input.shape().to_vec());
        self.infer(input)
    }

    /// Inference-only forward.
    #[must_use]
    pub fn infer(&self, input: &Tensor) -> Tensor {
        input.reshaped(&[input.len()])
    }

    /// Backward pass: reshapes the gradient back.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Flatten::forward`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .as_ref()
            .expect("backward requires a prior forward");
        grad_out.reshaped(shape)
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

/// Batch normalization over channels of a `[C, H, W]` feature map.
///
/// With single-sample training the statistics are computed over the spatial
/// dimensions of the sample (the `N = H·W` elements per channel); inference
/// uses the running estimates. The inference graph folds BatchNorm into the
/// preceding convolution, so the accelerator never sees this layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm2d {
    /// Channel count.
    pub channels: usize,
    /// Scale parameters `[C]`.
    pub gamma: Tensor,
    /// Shift parameters `[C]`.
    pub beta: Tensor,
    /// Running mean `[C]` (inference statistics).
    pub running_mean: Tensor,
    /// Running variance `[C]`.
    pub running_var: Tensor,
    /// Numerical stabilizer.
    pub eps: f32,
    /// Running-statistics momentum.
    pub momentum: f32,
    /// Accumulated gamma gradients.
    pub grad_gamma: Tensor,
    /// Accumulated beta gradients.
    pub grad_beta: Tensor,
    cached: Option<BnCache>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BnCache {
    input: Tensor,
    mean: Vec<f32>,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a BatchNorm layer with identity initialization.
    #[must_use]
    pub fn new(channels: usize) -> Self {
        Self {
            channels,
            gamma: Tensor::from_vec(&[channels], vec![1.0; channels]).expect("shape"),
            beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::from_vec(&[channels], vec![1.0; channels]).expect("shape"),
            eps: 1e-5,
            momentum: 0.1,
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            cached: None,
        }
    }

    /// Training-mode forward: normalizes with the sample's spatial
    /// statistics and updates the running estimates.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        assert_eq!(c, self.channels, "batchnorm channel mismatch");
        let n = (h * w) as f32;
        let mut out = Tensor::zeros(input.shape());
        let mut means = vec![0.0f32; c];
        let mut inv_stds = vec![0.0f32; c];
        for ch in 0..c {
            let mut mean = 0.0;
            for y in 0..h {
                for x in 0..w {
                    mean += input.at3(ch, y, x);
                }
            }
            mean /= n;
            let mut var = 0.0;
            for y in 0..h {
                for x in 0..w {
                    let d = input.at3(ch, y, x) - mean;
                    var += d * d;
                }
            }
            var /= n;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            means[ch] = mean;
            inv_stds[ch] = inv_std;
            let (g, b) = (self.gamma.data()[ch], self.beta.data()[ch]);
            for y in 0..h {
                for x in 0..w {
                    let xhat = (input.at3(ch, y, x) - mean) * inv_std;
                    out.set3(ch, y, x, g * xhat + b);
                }
            }
            let m = self.momentum;
            self.running_mean.data_mut()[ch] = (1.0 - m) * self.running_mean.data()[ch] + m * mean;
            self.running_var.data_mut()[ch] = (1.0 - m) * self.running_var.data()[ch] + m * var;
        }
        self.cached = Some(BnCache {
            input: input.clone(),
            mean: means,
            inv_std: inv_stds,
        });
        out
    }

    /// Inference-mode forward using the running statistics.
    #[must_use]
    pub fn infer(&self, input: &Tensor) -> Tensor {
        let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let mut out = Tensor::zeros(input.shape());
        for ch in 0..c {
            let inv_std = 1.0 / (self.running_var.data()[ch] + self.eps).sqrt();
            let mean = self.running_mean.data()[ch];
            let (g, b) = (self.gamma.data()[ch], self.beta.data()[ch]);
            for y in 0..h {
                for x in 0..w {
                    out.set3(ch, y, x, g * (input.at3(ch, y, x) - mean) * inv_std + b);
                }
            }
        }
        out
    }

    /// Backward pass through the training-mode normalization.
    ///
    /// # Panics
    ///
    /// Panics if called before [`BatchNorm2d::forward`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cached
            .as_ref()
            .expect("backward requires a prior forward");
        let input = &cache.input;
        let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let n = (h * w) as f32;
        let mut grad_in = Tensor::zeros(input.shape());
        for ch in 0..c {
            let mean = cache.mean[ch];
            let inv_std = cache.inv_std[ch];
            let g = self.gamma.data()[ch];
            // Channel-wise sums for the standard BN backward formula.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for y in 0..h {
                for x in 0..w {
                    let dy = grad_out.at3(ch, y, x);
                    let xhat = (input.at3(ch, y, x) - mean) * inv_std;
                    sum_dy += dy;
                    sum_dy_xhat += dy * xhat;
                }
            }
            self.grad_beta.data_mut()[ch] += sum_dy;
            self.grad_gamma.data_mut()[ch] += sum_dy_xhat;
            for y in 0..h {
                for x in 0..w {
                    let dy = grad_out.at3(ch, y, x);
                    let xhat = (input.at3(ch, y, x) - mean) * inv_std;
                    let dx = g * inv_std / n * (n * dy - sum_dy - xhat * sum_dy_xhat);
                    grad_in.set3(ch, y, x, dx);
                }
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    /// Numerical gradient check helper: perturbs `param[idx]` and compares
    /// the analytic gradient with the central finite difference of a scalar
    /// loss `L = Σ out²/2` (so dL/dout = out).
    fn conv_loss(conv: &Conv2d, input: &Tensor) -> f32 {
        let out = conv.infer(input);
        out.data().iter().map(|&x| x * x).sum::<f32>() / 2.0
    }

    #[test]
    fn conv_output_shape_matches_paper_layers() {
        let mut r = rng();
        // LeNet conv1: 32x32x1 -> 28x28x6 with k=5.
        let conv = Conv2d::new(1, 6, 5, 1, 0, &mut r);
        let out = conv.infer(&Tensor::zeros(&[1, 32, 32]));
        assert_eq!(out.shape(), &[6, 28, 28]);
        // DarkNet conv: 64x64x3 with k=3, pad=1 keeps spatial size.
        let conv = Conv2d::new(3, 8, 3, 1, 1, &mut r);
        let out = conv.infer(&Tensor::zeros(&[3, 64, 64]));
        assert_eq!(out.shape(), &[8, 64, 64]);
    }

    #[test]
    fn conv_known_values() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut r);
        conv.weight = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        conv.bias = Tensor::from_vec(&[1], vec![0.5]).unwrap();
        let input = Tensor::from_vec(&[1, 2, 2], vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let out = conv.infer(&input);
        assert_eq!(out.shape(), &[1, 1, 1]);
        assert!((out.data()[0] - 10.5).abs() < 1e-6);
    }

    #[test]
    fn conv_weight_gradcheck() {
        let mut r = rng();
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut r);
        let input = Tensor::from_vec(
            &[2, 4, 4],
            (0..32).map(|i| (i as f32 * 0.37).sin()).collect(),
        )
        .unwrap();
        let out = conv.forward(&input);
        let _ = conv.backward(&out); // dL/dout = out for L = Σ out²/2
        let eps = 1e-3;
        for idx in [0usize, 7, 20, 53] {
            let analytic = conv.grad_weight.data()[idx];
            let orig = conv.weight.data()[idx];
            conv.weight.data_mut()[idx] = orig + eps;
            let lp = conv_loss(&conv, &input);
            conv.weight.data_mut()[idx] = orig - eps;
            let lm = conv_loss(&conv, &input);
            conv.weight.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "idx {idx}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn conv_input_gradcheck() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 2, 3, 1, 0, &mut r);
        let mut input = Tensor::from_vec(
            &[1, 4, 4],
            (0..16).map(|i| (i as f32 * 0.71).cos()).collect(),
        )
        .unwrap();
        let out = conv.forward(&input);
        let grad_in = conv.backward(&out);
        let eps = 1e-3;
        for idx in [0usize, 5, 15] {
            let orig = input.data()[idx];
            input.data_mut()[idx] = orig + eps;
            let lp = conv_loss(&conv, &input);
            input.data_mut()[idx] = orig - eps;
            let lm = conv_loss(&conv, &input);
            input.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad_in.data()[idx] - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "idx {idx}"
            );
        }
    }

    #[test]
    fn linear_forward_and_gradcheck() {
        let mut r = rng();
        let mut lin = Linear::new(4, 3, &mut r);
        let input = Tensor::from_vec(&[4], vec![1.0, -2.0, 0.5, 3.0]).unwrap();
        let out = lin.forward(&input);
        assert_eq!(out.shape(), &[3]);
        let _ = lin.backward(&out);
        let eps = 1e-3;
        let loss = |l: &Linear| -> f32 {
            l.infer(&input).data().iter().map(|&x| x * x).sum::<f32>() / 2.0
        };
        for idx in [0usize, 5, 11] {
            let analytic = lin.grad_weight.data()[idx];
            let orig = lin.weight.data()[idx];
            lin.weight.data_mut()[idx] = orig + eps;
            let lp = loss(&lin);
            lin.weight.data_mut()[idx] = orig - eps;
            let lm = loss(&lin);
            lin.weight.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((analytic - numeric).abs() < 1e-2 * (1.0 + numeric.abs()));
        }
    }

    #[test]
    fn maxpool_forward_backward() {
        let mut pool = MaxPool2d::new(2, 2);
        let input =
            Tensor::from_vec(&[1, 2, 4], vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 1.0, 9.0]).unwrap();
        let out = pool.forward(&input);
        assert_eq!(out.shape(), &[1, 1, 2]);
        assert_eq!(out.data(), &[5.0, 9.0]);
        let grad = pool.backward(&Tensor::from_vec(&[1, 1, 2], vec![1.0, 2.0]).unwrap());
        // Gradient lands on the argmax positions only.
        assert_eq!(grad.data(), &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn avgpool_forward_backward() {
        let mut pool = AvgPool2d::new(2, 2);
        let input = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = pool.forward(&input);
        assert_eq!(out.data(), &[2.5]);
        let grad = pool.backward(&Tensor::from_vec(&[1, 1, 1], vec![4.0]).unwrap());
        assert_eq!(grad.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn activations() {
        for kind in [ActKind::ReLU, ActKind::LeakyReLU(0.1), ActKind::Tanh] {
            let mut act = Activation::new(kind);
            let input = Tensor::from_vec(&[3], vec![-1.0, 0.0, 2.0]).unwrap();
            let out = act.forward(&input);
            for (o, &x) in out.data().iter().zip(input.data().iter()) {
                assert!((o - kind.apply(x)).abs() < 1e-6);
            }
            let grad = act.backward(&Tensor::from_vec(&[3], vec![1.0, 1.0, 1.0]).unwrap());
            for (g, &x) in grad.data().iter().zip(input.data().iter()) {
                assert!((g - kind.derivative(x)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn relu_kills_negative_gradient() {
        let mut act = Activation::new(ActKind::ReLU);
        let input = Tensor::from_vec(&[2], vec![-5.0, 5.0]).unwrap();
        act.forward(&input);
        let grad = act.backward(&Tensor::from_vec(&[2], vec![1.0, 1.0]).unwrap());
        assert_eq!(grad.data(), &[0.0, 1.0]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut fl = Flatten::new();
        let input = Tensor::zeros(&[2, 3, 4]);
        let out = fl.forward(&input);
        assert_eq!(out.shape(), &[24]);
        let back = fl.backward(&out);
        assert_eq!(back.shape(), &[2, 3, 4]);
    }

    #[test]
    fn batchnorm_normalizes_training_sample() {
        let mut bn = BatchNorm2d::new(1);
        let input = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = bn.forward(&input);
        let mean: f32 = out.data().iter().sum::<f32>() / 4.0;
        let var: f32 = out
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn batchnorm_inference_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let input = Tensor::from_vec(&[1, 2, 2], vec![10.0, 10.0, 10.0, 10.0]).unwrap();
        for _ in 0..200 {
            bn.forward(&input);
        }
        // Running mean converges to 10; inference maps 10 -> ~0.
        let out = bn.infer(&input);
        assert!(out.data()[0].abs() < 0.1, "got {}", out.data()[0]);
    }

    #[test]
    fn batchnorm_gradcheck_gamma() {
        let mut bn = BatchNorm2d::new(2);
        let input =
            Tensor::from_vec(&[2, 2, 2], vec![0.3, -1.2, 2.0, 0.7, 1.1, -0.4, 0.0, 0.9]).unwrap();
        let out = bn.forward(&input);
        let _ = bn.backward(&out);
        let eps = 1e-3;
        for ch in 0..2 {
            let analytic = bn.grad_gamma.data()[ch];
            let orig = bn.gamma.data()[ch];
            let loss = |bn: &mut BatchNorm2d| -> f32 {
                bn.forward(&input)
                    .data()
                    .iter()
                    .map(|&x| x * x)
                    .sum::<f32>()
                    / 2.0
            };
            bn.gamma.data_mut()[ch] = orig + eps;
            let lp = loss(&mut bn);
            bn.gamma.data_mut()[ch] = orig - eps;
            let lm = loss(&mut bn);
            bn.gamma.data_mut()[ch] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "ch {ch}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn strided_conv() {
        let mut r = rng();
        let conv = Conv2d::new(1, 1, 3, 2, 1, &mut r);
        let out = conv.infer(&Tensor::zeros(&[1, 8, 8]));
        assert_eq!(out.shape(), &[1, 4, 4]);
    }
}
