//! Reduced DarkNet-like model (Sec. V-B-2, Fig. 13).
//!
//! The paper runs "a DarkNet-like model" with the input reduced to
//! 64×64×3 "to speed up the simulation". We follow the DarkNet reference
//! recipe — 3×3 convolutions with channel doubling, BatchNorm + leaky ReLU
//! (slope 0.1), 2×2 maxpool between stages, 1×1 classifier conv and global
//! average pooling — at a configurable base width (default 8) chosen so a
//! full inference stays laptop-fast. DESIGN.md §5 documents this
//! substitution; the workload retains what matters to the BT study: a much
//! larger deep-conv traffic volume and 3×3 kernel geometry vs LeNet's 5×5.

use crate::layer::{ActKind, Activation, AvgPool2d, BatchNorm2d, Conv2d, Flatten, MaxPool2d};
use crate::model::{Layer, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Input spatial size (the paper's reduced DarkNet input).
pub const INPUT_SIZE: usize = 64;
/// Input channel count (RGB).
pub const INPUT_CHANNELS: usize = 3;
/// Number of classes.
pub const CLASSES: usize = 10;
/// Default base width (channels after the first conv).
pub const DEFAULT_WIDTH: usize = 8;

/// Builds the DarkNet-like model with the default base width.
#[must_use]
pub fn build(seed: u64) -> Sequential {
    build_with_width(seed, DEFAULT_WIDTH)
}

/// Builds the DarkNet-like model with a custom base width.
///
/// Stages (input 64×64×3): `conv3×3(3→w)` → 32×32 → `conv3×3(w→2w)` →
/// 16×16 → `conv3×3(2w→4w)` → 8×8 → `conv3×3(4w→8w)` → 4×4 →
/// `conv1×1(8w→10)` → global avgpool → flatten.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn build_with_width(seed: u64, width: usize) -> Sequential {
    assert!(width > 0, "width must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let w = width;
    let block = |in_c: usize, out_c: usize, rng: &mut StdRng| -> Vec<Layer> {
        vec![
            Layer::Conv2d(Conv2d::new(in_c, out_c, 3, 1, 1, rng)),
            Layer::BatchNorm2d(BatchNorm2d::new(out_c)),
            Layer::Activation(Activation::new(ActKind::LeakyReLU(0.1))),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
        ]
    };
    let mut layers = Vec::new();
    layers.extend(block(INPUT_CHANNELS, w, &mut rng));
    layers.extend(block(w, 2 * w, &mut rng));
    layers.extend(block(2 * w, 4 * w, &mut rng));
    layers.extend(block(4 * w, 8 * w, &mut rng));
    // 1×1 classifier conv + global average pool, DarkNet-reference style.
    layers.push(Layer::Conv2d(Conv2d::new(
        8 * w,
        CLASSES,
        1,
        1,
        0,
        &mut rng,
    )));
    layers.push(Layer::AvgPool2d(AvgPool2d::new(4, 4)));
    layers.push(Layer::Flatten(Flatten::new()));
    Sequential::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn shapes_flow_through() {
        let mut m = build(0);
        let out = m.forward(&Tensor::zeros(&[INPUT_CHANNELS, INPUT_SIZE, INPUT_SIZE]));
        assert_eq!(out.shape(), &[CLASSES]);
    }

    #[test]
    fn width_scales_channels() {
        let m = build_with_width(0, 4);
        match &m.layers()[0] {
            Layer::Conv2d(c) => {
                assert_eq!(c.out_channels, 4);
                assert_eq!(c.kernel, 3);
                assert_eq!(c.padding, 1);
            }
            _ => panic!("first layer must be conv"),
        }
    }

    #[test]
    fn inference_graph_folds_all_batchnorms() {
        let ops = build(1).inference_ops();
        // 5 convs + 4 maxpools + 4 activations + avgpool + flatten = 15.
        assert_eq!(ops.len(), 15);
        let noc: usize = ops.iter().filter(|o| o.is_noc_op()).count();
        assert_eq!(noc, 5);
    }

    #[test]
    fn inference_matches_folded_graph() {
        let mut m = build(2);
        let input = Tensor::from_vec(
            &[3, 64, 64],
            (0..3 * 64 * 64)
                .map(|i| ((i as f32) * 0.013).sin() * 0.5)
                .collect(),
        )
        .unwrap();
        // A few training-mode passes so BN running stats move off identity.
        for _ in 0..5 {
            m.forward(&input);
        }
        let reference = m.infer(&input);
        let mut x = input;
        for op in m.inference_ops() {
            x = op.execute(&x);
        }
        for (a, b) in x.data().iter().zip(reference.data().iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }
}
