//! LeNet-5 — the paper's primary workload (Figs. 2, 9–12).
//!
//! Classic architecture on 32×32×1 inputs:
//!
//! ```text
//! conv 5×5, 1→6   → tanh → maxpool 2×2      (28×28×6 → 14×14×6)
//! conv 5×5, 6→16  → tanh → maxpool 2×2      (10×10×16 → 5×5×16)
//! flatten → fc 400→120 → tanh → fc 120→84 → tanh → fc 84→10
//! ```
//!
//! Fig. 2's packetization example ("k·k (k=5) input + k·k (k=5) weight +
//! 1 bias") is exactly one conv1 neuron task of this model.

use crate::layer::{ActKind, Activation, Conv2d, Flatten, Linear, MaxPool2d};
use crate::model::{Layer, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Input spatial size.
pub const INPUT_SIZE: usize = 32;
/// Input channel count.
pub const INPUT_CHANNELS: usize = 1;
/// Number of classes.
pub const CLASSES: usize = 10;

/// Builds LeNet-5 with seeded random (Kaiming-uniform) weights — the
/// paper's "randomly initialized weights" configuration.
#[must_use]
pub fn build(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(1, 6, 5, 1, 0, &mut rng)),
        Layer::Activation(Activation::new(ActKind::Tanh)),
        Layer::MaxPool2d(MaxPool2d::new(2, 2)),
        Layer::Conv2d(Conv2d::new(6, 16, 5, 1, 0, &mut rng)),
        Layer::Activation(Activation::new(ActKind::Tanh)),
        Layer::MaxPool2d(MaxPool2d::new(2, 2)),
        Layer::Flatten(Flatten::new()),
        Layer::Linear(Linear::new(400, 120, &mut rng)),
        Layer::Activation(Activation::new(ActKind::Tanh)),
        Layer::Linear(Linear::new(120, 84, &mut rng)),
        Layer::Activation(Activation::new(ActKind::Tanh)),
        Layer::Linear(Linear::new(84, 10, &mut rng)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn shapes_flow_through() {
        let mut m = build(0);
        let out = m.forward(&Tensor::zeros(&[INPUT_CHANNELS, INPUT_SIZE, INPUT_SIZE]));
        assert_eq!(out.shape(), &[CLASSES]);
    }

    #[test]
    fn parameter_count_is_the_classic_61k() {
        // conv1 156 + conv2 2416 + fc1 48120 + fc2 10164 + fc3 850 = 61706.
        let m = build(0);
        assert_eq!(m.param_count(), 61_706);
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        let a = build(7);
        let b = build(7);
        let c = build(8);
        let (wa, wb, wc) = match (&a.layers()[0], &b.layers()[0], &c.layers()[0]) {
            (
                crate::model::Layer::Conv2d(x),
                crate::model::Layer::Conv2d(y),
                crate::model::Layer::Conv2d(z),
            ) => (x.weight.data(), y.weight.data(), z.weight.data()),
            _ => unreachable!(),
        };
        assert_eq!(wa, wb);
        assert_ne!(wa, wc);
    }

    #[test]
    fn inference_graph_has_expected_noc_ops() {
        let ops = build(0).inference_ops();
        let noc: usize = ops.iter().filter(|o| o.is_noc_op()).count();
        assert_eq!(noc, 5); // 2 convs + 3 fcs
    }
}
