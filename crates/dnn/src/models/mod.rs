//! The paper's evaluation models: LeNet-5 and a reduced DarkNet-like CNN.

pub mod darknet;
pub mod lenet;
