//! Deterministic procedural datasets.
//!
//! The paper trains LeNet (on MNIST) and uses the converged weights'
//! bit-level distribution; we cannot ship MNIST, so we *train on synthetic
//! data that is equally learnable*: 7-segment-style digit glyphs with
//! random translation, stroke intensity and pixel noise. What the BT
//! experiments consume is only the converged weights' distribution
//! (magnitudes concentrated near zero), which any converged classifier
//! exhibits — see DESIGN.md §5.
//!
//! For the DarkNet workload a colored-pattern RGB dataset plays the same
//! role on 64×64×3 inputs.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// A labelled sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Input tensor (`[C, H, W]`).
    pub input: Tensor,
    /// Class label in `0..classes`.
    pub label: usize,
}

/// 7-segment display encoding per digit: (top, top-left, top-right, middle,
/// bottom-left, bottom-right, bottom).
const SEGMENTS: [[bool; 7]; 10] = [
    [true, true, true, false, true, true, true],     // 0
    [false, false, true, false, false, true, false], // 1
    [true, false, true, true, true, false, true],    // 2
    [true, false, true, true, false, true, true],    // 3
    [false, true, true, true, false, true, false],   // 4
    [true, true, false, true, false, true, true],    // 5
    [true, true, false, true, true, true, true],     // 6
    [true, false, true, false, false, true, false],  // 7
    [true, true, true, true, true, true, true],      // 8
    [true, true, true, true, false, true, true],     // 9
];

/// Generator of 32×32 single-channel digit-like glyphs (LeNet's input).
#[derive(Debug, Clone, Copy)]
pub struct SyntheticDigits {
    /// Image side length.
    pub size: usize,
    /// Additive pixel-noise amplitude.
    pub noise: f32,
}

impl SyntheticDigits {
    /// Default configuration matching LeNet's 32×32 input.
    #[must_use]
    pub fn new() -> Self {
        Self {
            size: 32,
            noise: 0.15,
        }
    }

    /// Draws one sample of the given class with random jitter.
    ///
    /// # Panics
    ///
    /// Panics if `class >= 10`.
    #[must_use]
    pub fn sample(&self, class: usize, rng: &mut StdRng) -> Sample {
        assert!(class < 10, "digit classes are 0..10");
        let s = self.size;
        let mut img = Tensor::zeros(&[1, s, s]);
        // Glyph box ~ 14x22 centered with random offset.
        let dx = rng.gen_range(-3i32..=3);
        let dy = rng.gen_range(-3i32..=3);
        let x0 = (s as i32 / 2 - 7 + dx).max(0) as usize;
        let y0 = (s as i32 / 2 - 11 + dy).max(0) as usize;
        let (gw, gh) = (14usize, 22usize);
        let thickness = 2usize;
        let intensity = rng.gen_range(0.7..1.0);
        let segs = SEGMENTS[class];

        let hline = |img: &mut Tensor, y: usize, x_start: usize, len: usize| {
            for t in 0..thickness {
                for x in x_start..(x_start + len).min(s) {
                    if y + t < s {
                        img.set3(0, y + t, x, intensity);
                    }
                }
            }
        };
        let vline = |img: &mut Tensor, x: usize, y_start: usize, len: usize| {
            for t in 0..thickness {
                for y in y_start..(y_start + len).min(s) {
                    if x + t < s {
                        img.set3(0, y, x + t, intensity);
                    }
                }
            }
        };

        let half_h = gh / 2;
        if segs[0] {
            hline(&mut img, y0, x0, gw);
        }
        if segs[1] {
            vline(&mut img, x0, y0, half_h);
        }
        if segs[2] {
            vline(&mut img, x0 + gw - thickness, y0, half_h);
        }
        if segs[3] {
            hline(&mut img, y0 + half_h, x0, gw);
        }
        if segs[4] {
            vline(&mut img, x0, y0 + half_h, half_h);
        }
        if segs[5] {
            vline(&mut img, x0 + gw - thickness, y0 + half_h, half_h);
        }
        if segs[6] {
            hline(&mut img, (y0 + gh).min(s - thickness), x0, gw);
        }

        // Pixel noise (skipped when the amplitude is zero).
        if self.noise > 0.0 {
            for v in img.data_mut() {
                *v += rng.gen_range(-self.noise..self.noise);
            }
        }
        Sample {
            input: img,
            label: class,
        }
    }

    /// Generates a balanced shuffled dataset of `count` samples.
    #[must_use]
    pub fn dataset(&self, count: usize, rng: &mut StdRng) -> Vec<Sample> {
        let mut out: Vec<Sample> = (0..count).map(|i| self.sample(i % 10, rng)).collect();
        // Fisher-Yates with the same rng for determinism.
        for i in (1..out.len()).rev() {
            let j = rng.gen_range(0..=i);
            out.swap(i, j);
        }
        out
    }
}

impl Default for SyntheticDigits {
    fn default() -> Self {
        Self::new()
    }
}

/// Generator of 64×64×3 colored patterns for the DarkNet workload.
///
/// Each class has a characteristic hue and spatial frequency; samples add
/// random phase and noise. Not intended to be hard — only to give the
/// DarkNet traffic realistic, structured activations.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticRgb {
    /// Image side length.
    pub size: usize,
    /// Additive pixel-noise amplitude.
    pub noise: f32,
}

impl SyntheticRgb {
    /// Default 64×64 configuration.
    #[must_use]
    pub fn new() -> Self {
        Self {
            size: 64,
            noise: 0.1,
        }
    }

    /// Draws one sample of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `class >= 10`.
    #[must_use]
    pub fn sample(&self, class: usize, rng: &mut StdRng) -> Sample {
        assert!(class < 10, "rgb classes are 0..10");
        let s = self.size;
        let mut img = Tensor::zeros(&[3, s, s]);
        let freq = 0.1 + 0.05 * class as f32;
        let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        // Class-dependent channel mixture.
        let mix = [
            ((class % 3) as f32 + 1.0) / 3.0,
            ((class % 4) as f32 + 1.0) / 4.0,
            ((class % 5) as f32 + 1.0) / 5.0,
        ];
        for (c, &channel_mix) in mix.iter().enumerate() {
            for y in 0..s {
                for x in 0..s {
                    let noise = if self.noise > 0.0 {
                        rng.gen_range(-self.noise..self.noise)
                    } else {
                        0.0
                    };
                    let v = ((x as f32 * freq + phase).sin() * (y as f32 * freq).cos())
                        * channel_mix
                        + noise;
                    img.set3(c, y, x, v);
                }
            }
        }
        Sample {
            input: img,
            label: class,
        }
    }

    /// Generates a balanced dataset of `count` samples.
    #[must_use]
    pub fn dataset(&self, count: usize, rng: &mut StdRng) -> Vec<Sample> {
        (0..count).map(|i| self.sample(i % 10, rng)).collect()
    }
}

impl Default for SyntheticRgb {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn digits_have_expected_shape_and_labels() {
        let gen = SyntheticDigits::new();
        let mut rng = StdRng::seed_from_u64(0);
        for class in 0..10 {
            let s = gen.sample(class, &mut rng);
            assert_eq!(s.input.shape(), &[1, 32, 32]);
            assert_eq!(s.label, class);
        }
    }

    #[test]
    fn different_classes_look_different() {
        let gen = SyntheticDigits {
            size: 32,
            noise: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let one = gen.sample(1, &mut rng).input;
        let mut rng = StdRng::seed_from_u64(1);
        let eight = gen.sample(8, &mut rng).input;
        // An '8' lights every segment; a '1' only two.
        let sum1: f32 = one.data().iter().filter(|&&v| v > 0.5).count() as f32;
        let sum8: f32 = eight.data().iter().filter(|&&v| v > 0.5).count() as f32;
        assert!(sum8 > sum1 * 2.0, "8: {sum8} px vs 1: {sum1} px");
    }

    #[test]
    fn dataset_is_balanced_and_deterministic() {
        let gen = SyntheticDigits::new();
        let mut rng = StdRng::seed_from_u64(2);
        let ds = gen.dataset(100, &mut rng);
        assert_eq!(ds.len(), 100);
        for class in 0..10 {
            assert_eq!(ds.iter().filter(|s| s.label == class).count(), 10);
        }
        let mut rng2 = StdRng::seed_from_u64(2);
        let ds2 = gen.dataset(100, &mut rng2);
        assert_eq!(ds[0].input.data(), ds2[0].input.data());
    }

    #[test]
    fn rgb_samples() {
        let gen = SyntheticRgb::new();
        let mut rng = StdRng::seed_from_u64(3);
        let s = gen.sample(4, &mut rng);
        assert_eq!(s.input.shape(), &[3, 64, 64]);
        assert!(s.input.max_abs() > 0.0);
        let ds = gen.dataset(20, &mut rng);
        assert_eq!(ds.len(), 20);
    }

    #[test]
    #[should_panic(expected = "classes are 0..10")]
    fn rejects_bad_class() {
        let gen = SyntheticDigits::new();
        let mut rng = StdRng::seed_from_u64(4);
        let _ = gen.sample(10, &mut rng);
    }
}
