//! Model containers and the inference graph the accelerator consumes.
//!
//! [`Sequential`] is a simple layer list with enum dispatch (no trait
//! objects), which lets the accelerator pattern-match layers and extract
//! weights directly. [`Sequential::inference_ops`] lowers a trained model to
//! [`InferenceOp`]s with BatchNorm folded into the preceding convolution, so
//! the accelerator only has to handle convolution / linear (NoC traffic) and
//! memory-side ops (pooling, activation, flatten).

use crate::layer::{
    ActKind, Activation, AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d,
};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One layer of a [`Sequential`] model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Fully connected layer.
    Linear(Linear),
    /// Max pooling.
    MaxPool2d(MaxPool2d),
    /// Average pooling.
    AvgPool2d(AvgPool2d),
    /// Element-wise activation.
    Activation(Activation),
    /// Batch normalization.
    BatchNorm2d(BatchNorm2d),
    /// Flatten to a vector.
    Flatten(Flatten),
}

impl Layer {
    /// Short layer name for summaries.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Layer::Conv2d(_) => "conv2d",
            Layer::Linear(_) => "linear",
            Layer::MaxPool2d(_) => "maxpool2d",
            Layer::AvgPool2d(_) => "avgpool2d",
            Layer::Activation(_) => "activation",
            Layer::BatchNorm2d(_) => "batchnorm2d",
            Layer::Flatten(_) => "flatten",
        }
    }

    /// Training-mode forward.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        match self {
            Layer::Conv2d(l) => l.forward(input),
            Layer::Linear(l) => l.forward(input),
            Layer::MaxPool2d(l) => l.forward(input),
            Layer::AvgPool2d(l) => l.forward(input),
            Layer::Activation(l) => l.forward(input),
            Layer::BatchNorm2d(l) => l.forward(input),
            Layer::Flatten(l) => l.forward(input),
        }
    }

    /// Inference-mode forward (BatchNorm uses running statistics).
    #[must_use]
    pub fn infer(&self, input: &Tensor) -> Tensor {
        match self {
            Layer::Conv2d(l) => l.infer(input),
            Layer::Linear(l) => l.infer(input),
            Layer::MaxPool2d(l) => l.infer(input),
            Layer::AvgPool2d(l) => l.infer(input),
            Layer::Activation(l) => l.infer(input),
            Layer::BatchNorm2d(l) => l.infer(input),
            Layer::Flatten(l) => l.infer(input),
        }
    }

    /// Backward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match self {
            Layer::Conv2d(l) => l.backward(grad_out),
            Layer::Linear(l) => l.backward(grad_out),
            Layer::MaxPool2d(l) => l.backward(grad_out),
            Layer::AvgPool2d(l) => l.backward(grad_out),
            Layer::Activation(l) => l.backward(grad_out),
            Layer::BatchNorm2d(l) => l.backward(grad_out),
            Layer::Flatten(l) => l.backward(grad_out),
        }
    }

    /// Applies one SGD step and clears gradients.
    pub fn sgd_step(&mut self, lr: f32) {
        self.sgd_step_decayed(lr, 0.0);
    }

    /// SGD step with L2 weight decay on weights (not biases/BN params):
    /// `w ← w·(1 − lr·wd) − lr·∇w`.
    pub fn sgd_step_decayed(&mut self, lr: f32, weight_decay: f32) {
        let shrink = 1.0 - lr * weight_decay;
        match self {
            Layer::Conv2d(l) => {
                if weight_decay > 0.0 {
                    l.weight.data_mut().iter_mut().for_each(|w| *w *= shrink);
                }
                l.weight.axpy(-lr, &l.grad_weight);
                l.bias.axpy(-lr, &l.grad_bias);
                l.grad_weight.fill_zero();
                l.grad_bias.fill_zero();
            }
            Layer::Linear(l) => {
                if weight_decay > 0.0 {
                    l.weight.data_mut().iter_mut().for_each(|w| *w *= shrink);
                }
                l.weight.axpy(-lr, &l.grad_weight);
                l.bias.axpy(-lr, &l.grad_bias);
                l.grad_weight.fill_zero();
                l.grad_bias.fill_zero();
            }
            Layer::BatchNorm2d(l) => {
                l.gamma.axpy(-lr, &l.grad_gamma);
                l.beta.axpy(-lr, &l.grad_beta);
                l.grad_gamma.fill_zero();
                l.grad_beta.fill_zero();
            }
            _ => {}
        }
    }

    /// Number of trainable parameters.
    #[must_use]
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Conv2d(l) => l.weight.len() + l.bias.len(),
            Layer::Linear(l) => l.weight.len() + l.bias.len(),
            Layer::BatchNorm2d(l) => l.gamma.len() + l.beta.len(),
            _ => 0,
        }
    }
}

/// A feed-forward stack of layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sequential {
    layers: Vec<Layer>,
}

impl Sequential {
    /// Creates a model from a layer list.
    #[must_use]
    pub fn new(layers: Vec<Layer>) -> Self {
        Self { layers }
    }

    /// The layers.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer access (used by the trainer).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Training-mode forward through all layers.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Inference-mode forward.
    #[must_use]
    pub fn infer(&self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x);
        }
        x
    }

    /// Backward through all layers (after a training-mode forward).
    pub fn backward(&mut self, grad_out: &Tensor) {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
    }

    /// SGD update on every trainable layer, clearing gradients.
    pub fn sgd_step(&mut self, lr: f32) {
        for layer in &mut self.layers {
            layer.sgd_step(lr);
        }
    }

    /// SGD update with L2 weight decay (see [`Layer::sgd_step_decayed`]).
    pub fn sgd_step_decayed(&mut self, lr: f32, weight_decay: f32) {
        for layer in &mut self.layers {
            layer.sgd_step_decayed(lr, weight_decay);
        }
    }

    /// Total trainable parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Lowers the model to the accelerator's inference graph, folding each
    /// BatchNorm into the convolution immediately preceding it.
    ///
    /// # Panics
    ///
    /// Panics if a BatchNorm is not directly preceded by a convolution
    /// (the only composition our models use).
    #[must_use]
    pub fn inference_ops(&self) -> Vec<InferenceOp> {
        let mut ops: Vec<InferenceOp> = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            match layer {
                Layer::Conv2d(l) => ops.push(InferenceOp::Conv {
                    weight: l.weight.clone(),
                    bias: l.bias.clone(),
                    stride: l.stride,
                    padding: l.padding,
                }),
                Layer::Linear(l) => ops.push(InferenceOp::Linear {
                    weight: l.weight.clone(),
                    bias: l.bias.clone(),
                }),
                Layer::MaxPool2d(l) => ops.push(InferenceOp::MaxPool {
                    kernel: l.kernel,
                    stride: l.stride,
                }),
                Layer::AvgPool2d(l) => ops.push(InferenceOp::AvgPool {
                    kernel: l.kernel,
                    stride: l.stride,
                }),
                Layer::Activation(l) => ops.push(InferenceOp::Activation(l.kind)),
                Layer::Flatten(_) => ops.push(InferenceOp::Flatten),
                Layer::BatchNorm2d(bn) => {
                    let Some(InferenceOp::Conv { weight, bias, .. }) = ops.last_mut() else {
                        panic!("BatchNorm must follow a convolution for folding");
                    };
                    fold_batchnorm_into_conv(weight, bias, bn);
                }
            }
        }
        ops
    }
}

/// Folds inference-mode BatchNorm statistics into conv weights/bias:
/// `w' = w·γ/σ`, `b' = (b − μ)·γ/σ + β` with `σ = sqrt(var + eps)`.
fn fold_batchnorm_into_conv(weight: &mut Tensor, bias: &mut Tensor, bn: &BatchNorm2d) {
    let out_c = weight.shape()[0];
    assert_eq!(out_c, bn.channels, "BatchNorm channel mismatch with conv");
    let per_filter = weight.len() / out_c;
    for oc in 0..out_c {
        let sigma = (bn.running_var.data()[oc] + bn.eps).sqrt();
        let scale = bn.gamma.data()[oc] / sigma;
        for i in 0..per_filter {
            weight.data_mut()[oc * per_filter + i] *= scale;
        }
        bias.data_mut()[oc] =
            (bias.data()[oc] - bn.running_mean.data()[oc]) * scale + bn.beta.data()[oc];
    }
}

/// One operation of the lowered inference graph.
///
/// `Conv` and `Linear` generate NoC traffic (their operands are fetched
/// from memory through the network); the rest execute memory-side between
/// layers ("the layer-level interval effectively hides ordering latency",
/// Sec. IV-C-3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum InferenceOp {
    /// Convolution with folded BatchNorm (if any).
    Conv {
        /// Weights `[out_c, in_c, k, k]`.
        weight: Tensor,
        /// Biases `[out_c]`.
        bias: Tensor,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// Fully connected layer.
    Linear {
        /// Weights `[out, in]`.
        weight: Tensor,
        /// Biases `[out]`.
        bias: Tensor,
    },
    /// Max pooling (memory-side).
    MaxPool {
        /// Window size.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling (memory-side).
    AvgPool {
        /// Window size.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Element-wise activation (memory-side).
    Activation(ActKind),
    /// Flatten (memory-side).
    Flatten,
}

impl InferenceOp {
    /// True when the op ships operands over the NoC (conv / linear).
    #[must_use]
    pub fn is_noc_op(&self) -> bool {
        matches!(self, InferenceOp::Conv { .. } | InferenceOp::Linear { .. })
    }

    /// Reference (float) execution of this op, used to verify the
    /// accelerator and to produce the next layer's inputs.
    #[must_use]
    pub fn execute(&self, input: &Tensor) -> Tensor {
        match self {
            InferenceOp::Conv {
                weight,
                bias,
                stride,
                padding,
            } => conv_forward(input, weight, bias, *stride, *padding),
            InferenceOp::Linear { weight, bias } => linear_forward(input, weight, bias),
            InferenceOp::MaxPool { kernel, stride } => {
                MaxPool2d::new(*kernel, *stride).infer(input)
            }
            InferenceOp::AvgPool { kernel, stride } => {
                AvgPool2d::new(*kernel, *stride).infer(input)
            }
            InferenceOp::Activation(kind) => input.map(|x| kind.apply(x)),
            InferenceOp::Flatten => input.reshaped(&[input.len()]),
        }
    }
}

/// Stand-alone conv forward over explicit weights (reference semantics for
/// the accelerator).
#[must_use]
pub fn conv_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    padding: usize,
) -> Tensor {
    let (out_c, in_c, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
    assert_eq!(input.shape()[0], in_c, "conv channel mismatch");
    let (h, w) = (input.shape()[1], input.shape()[2]);
    let oh = (h + 2 * padding - k) / stride + 1;
    let ow = (w + 2 * padding - k) / stride + 1;
    let mut out = Tensor::zeros(&[out_c, oh, ow]);
    for oc in 0..out_c {
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = bias.data()[oc];
                for ic in 0..in_c {
                    for kh in 0..k {
                        let ih = y * stride + kh;
                        let Some(ih) = ih.checked_sub(padding) else {
                            continue;
                        };
                        if ih >= h {
                            continue;
                        }
                        for kw in 0..k {
                            let iw = x * stride + kw;
                            let Some(iw) = iw.checked_sub(padding) else {
                                continue;
                            };
                            if iw >= w {
                                continue;
                            }
                            acc += input.at3(ic, ih, iw) * weight.at4(oc, ic, kh, kw);
                        }
                    }
                }
                out.set3(oc, y, x, acc);
            }
        }
    }
    out
}

/// Stand-alone linear forward (reference semantics for the accelerator).
#[must_use]
pub fn linear_forward(input: &Tensor, weight: &Tensor, bias: &Tensor) -> Tensor {
    let (out_f, in_f) = (weight.shape()[0], weight.shape()[1]);
    assert_eq!(input.len(), in_f, "linear input size mismatch");
    let mut out = Tensor::zeros(&[out_f]);
    for o in 0..out_f {
        let row = &weight.data()[o * in_f..(o + 1) * in_f];
        let mut acc = bias.data()[o];
        for (x, w) in input.data().iter().zip(row.iter()) {
            acc += x * w;
        }
        out.data_mut()[o] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, &mut rng)),
            Layer::BatchNorm2d(BatchNorm2d::new(2)),
            Layer::Activation(Activation::new(ActKind::ReLU)),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(2 * 4 * 4, 3, &mut rng)),
        ])
    }

    #[test]
    fn sequential_forward_shapes() {
        let mut m = tiny_model(0);
        let out = m.forward(&Tensor::zeros(&[1, 8, 8]));
        assert_eq!(out.shape(), &[3]);
        assert!(m.param_count() > 0);
        assert_eq!(m.layers().len(), 6);
    }

    #[test]
    fn train_step_changes_params() {
        let mut m = tiny_model(1);
        let input =
            Tensor::from_vec(&[1, 8, 8], (0..64).map(|i| i as f32 / 64.0).collect()).unwrap();
        let before: Vec<f32> = match &m.layers()[0] {
            Layer::Conv2d(c) => c.weight.data().to_vec(),
            _ => unreachable!(),
        };
        let out = m.forward(&input);
        m.backward(&out);
        m.sgd_step(0.1);
        let after: Vec<f32> = match &m.layers()[0] {
            Layer::Conv2d(c) => c.weight.data().to_vec(),
            _ => unreachable!(),
        };
        assert_ne!(before, after);
    }

    #[test]
    fn inference_ops_fold_batchnorm() {
        let mut m = tiny_model(2);
        // Run a few training steps so running stats are not identity.
        let input =
            Tensor::from_vec(&[1, 8, 8], (0..64).map(|i| (i as f32).sin()).collect()).unwrap();
        for _ in 0..50 {
            m.forward(&input);
        }
        let ops = m.inference_ops();
        // BatchNorm disappears: conv, act, pool, flatten, linear.
        assert_eq!(ops.len(), 5);
        assert!(matches!(ops[0], InferenceOp::Conv { .. }));
        // Folded graph output matches the model's inference path.
        let reference = m.infer(&input);
        let mut x = input.clone();
        for op in &ops {
            x = op.execute(&x);
        }
        for (a, b) in x.data().iter().zip(reference.data().iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn noc_op_classification() {
        let m = tiny_model(3);
        let ops = m.inference_ops();
        let noc_ops: Vec<bool> = ops.iter().map(InferenceOp::is_noc_op).collect();
        assert_eq!(noc_ops, vec![true, false, false, false, true]);
    }

    #[test]
    fn standalone_forwards_match_layer_forwards() {
        let mut rng = StdRng::seed_from_u64(4);
        let conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let input = Tensor::from_vec(
            &[2, 5, 5],
            (0..50).map(|i| (i as f32 * 0.3).cos()).collect(),
        )
        .unwrap();
        let a = conv.infer(&input);
        let b = conv_forward(&input, &conv.weight, &conv.bias, 1, 1);
        assert_eq!(a, b);

        let lin = Linear::new(10, 4, &mut rng);
        let v = Tensor::from_vec(&[10], (0..10).map(|i| i as f32).collect()).unwrap();
        assert_eq!(lin.infer(&v), linear_forward(&v, &lin.weight, &lin.bias));
    }

    #[test]
    #[should_panic(expected = "BatchNorm must follow a convolution")]
    fn fold_requires_preceding_conv() {
        let m = Sequential::new(vec![Layer::BatchNorm2d(BatchNorm2d::new(2))]);
        let _ = m.inference_ops();
    }
}
