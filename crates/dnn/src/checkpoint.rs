//! Minimal weight checkpointing (no external serialization formats).
//!
//! Experiment binaries run as separate processes but share one trained
//! LeNet; training takes minutes, so the first run saves the parameters to
//! a small binary file and later runs load it. The format is deliberately
//! trivial: a magic header, then for every parameter tensor its length and
//! little-endian `f32` data, in the model's deterministic layer order.

use crate::layer::{
    ActKind, Activation, AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d,
};
use crate::model::{Layer, Sequential};
use crate::tensor::Tensor;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"BTRDNN01";

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a checkpoint or has a different version.
    BadMagic,
    /// The checkpoint does not match the model architecture.
    ShapeMismatch {
        /// Parameter index that failed.
        index: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            CheckpointError::BadMagic => write!(f, "not a btr-dnn checkpoint file"),
            CheckpointError::ShapeMismatch { index } => {
                write!(f, "checkpoint parameter {index} does not match the model")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Collects references to every parameter tensor in deterministic order.
fn param_tensors(model: &Sequential) -> Vec<&Tensor> {
    let mut out = Vec::new();
    for layer in model.layers() {
        match layer {
            Layer::Conv2d(l) => {
                out.push(&l.weight);
                out.push(&l.bias);
            }
            Layer::Linear(l) => {
                out.push(&l.weight);
                out.push(&l.bias);
            }
            Layer::BatchNorm2d(l) => {
                out.push(&l.gamma);
                out.push(&l.beta);
                out.push(&l.running_mean);
                out.push(&l.running_var);
            }
            _ => {}
        }
    }
    out
}

fn param_tensors_mut(model: &mut Sequential) -> Vec<&mut Tensor> {
    let mut out = Vec::new();
    for layer in model.layers_mut() {
        match layer {
            Layer::Conv2d(l) => {
                out.push(&mut l.weight);
                out.push(&mut l.bias);
            }
            Layer::Linear(l) => {
                out.push(&mut l.weight);
                out.push(&mut l.bias);
            }
            Layer::BatchNorm2d(l) => {
                out.push(&mut l.gamma);
                out.push(&mut l.beta);
                out.push(&mut l.running_mean);
                out.push(&mut l.running_var);
            }
            _ => {}
        }
    }
    out
}

/// Saves a model's parameters.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failures.
pub fn save(model: &Sequential, path: &Path) -> Result<(), CheckpointError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(MAGIC)?;
    let params = param_tensors(model);
    file.write_all(&(params.len() as u32).to_le_bytes())?;
    for tensor in params {
        file.write_all(&(tensor.len() as u32).to_le_bytes())?;
        for &v in tensor.data() {
            file.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Loads parameters into a freshly built model of the same architecture.
///
/// # Errors
///
/// Returns [`CheckpointError`] if the file is missing, malformed, or does
/// not match the model's parameter shapes.
pub fn load(model: &mut Sequential, path: &Path) -> Result<(), CheckpointError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let mut count_buf = [0u8; 4];
    file.read_exact(&mut count_buf)?;
    let count = u32::from_le_bytes(count_buf) as usize;
    let mut params = param_tensors_mut(model);
    if count != params.len() {
        return Err(CheckpointError::ShapeMismatch { index: 0 });
    }
    for (index, tensor) in params.iter_mut().enumerate() {
        file.read_exact(&mut count_buf)?;
        let len = u32::from_le_bytes(count_buf) as usize;
        if len != tensor.len() {
            return Err(CheckpointError::ShapeMismatch { index });
        }
        let mut value_buf = [0u8; 4];
        for v in tensor.data_mut() {
            file.read_exact(&mut value_buf)?;
            *v = f32::from_le_bytes(value_buf);
        }
    }
    Ok(())
}

/// Suppresses the unused-import warnings for layer types referenced only in
/// the doc examples of this module.
#[allow(dead_code)]
fn _keep_layer_types(
    _: (
        Conv2d,
        Linear,
        MaxPool2d,
        AvgPool2d,
        Activation,
        BatchNorm2d,
        Flatten,
        ActKind,
    ),
) {
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::lenet;

    #[test]
    fn roundtrip_restores_parameters() {
        let dir = std::env::temp_dir().join("btr_dnn_ckpt_test");
        let path = dir.join("lenet.bin");
        let original = lenet::build(7);
        save(&original, &path).unwrap();
        let mut restored = lenet::build(8); // different seed -> different weights
        load(&mut restored, &path).unwrap();
        let a = param_tensors(&original);
        let b = param_tensors(&restored);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.data(), y.data());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_wrong_architecture() {
        let dir = std::env::temp_dir().join("btr_dnn_ckpt_test2");
        let path = dir.join("lenet.bin");
        save(&lenet::build(0), &path).unwrap();
        let mut other = crate::models::darknet::build(0);
        assert!(load(&mut other, &path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let mut m = lenet::build(0);
        let err = load(&mut m, Path::new("/nonexistent/nope.bin")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn bad_magic_detected() {
        let dir = std::env::temp_dir().join("btr_dnn_ckpt_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.bin");
        std::fs::write(&path, b"NOTMAGIC plus junk").unwrap();
        let mut m = lenet::build(0);
        assert!(matches!(
            load(&mut m, &path).unwrap_err(),
            CheckpointError::BadMagic
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
