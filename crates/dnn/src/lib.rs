//! # btr-dnn — minimal DNN substrate for the NOC-DNA experiments
//!
//! The paper evaluates its ordering methods on real DNN workloads (LeNet
//! and a reduced DarkNet-like model) with both randomly initialized and
//! trained weights. This crate provides everything needed to generate that
//! workload from scratch, with no external ML framework:
//!
//! * [`tensor`] — dense `f32` tensors with simple shape handling;
//! * [`layer`] — Conv2d, Linear, pooling, activations and BatchNorm, all
//!   with **forward and backward** passes;
//! * [`model`] — [`model::Sequential`] container, BatchNorm folding, and
//!   the [`model::InferenceOp`] graph the accelerator consumes;
//! * [`models`] — LeNet-5 (Fig. 2's workload) and a reduced DarkNet-like
//!   CNN for 64×64×3 inputs (Sec. V-B-2);
//! * [`data`] — deterministic procedural datasets (7-segment-style digits
//!   and colored RGB patterns) used to *train* weights in place of the
//!   paper's MNIST-trained LeNet (see DESIGN.md §5 for why this
//!   substitution preserves the bit-level weight distributions);
//! * [`train`] — plain SGD with backprop;
//! * [`quant`] — per-tensor symmetric fixed-point quantization helpers on
//!   top of [`btr_bits::Quantizer`].
//!
//! # Example
//!
//! ```
//! use btr_dnn::models::lenet;
//! use btr_dnn::tensor::Tensor;
//!
//! let mut model = lenet::build(42);
//! let input = Tensor::zeros(&[1, 32, 32]);
//! let logits = model.forward(&input);
//! assert_eq!(logits.shape(), &[10]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod data;
pub mod layer;
pub mod model;
pub mod models;
pub mod quant;
pub mod tensor;
pub mod train;

pub use model::{InferenceOp, Sequential};
pub use tensor::Tensor;
