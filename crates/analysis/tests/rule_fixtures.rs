//! Per-rule fixture tests: each seeds a violation class into an
//! in-memory workspace and asserts the rule catches it (and that the
//! matching allow directive suppresses it). The final test drives the
//! real `btr-lint` binary over an on-disk fixture to pin the nonzero
//! exit code the CI gate relies on.

use btr_analysis::{run, Workspace};

fn findings_of(ws: &Workspace, rule: &str) -> Vec<(String, u32)> {
    run(ws)
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.path.clone(), f.line))
        .collect()
}

#[test]
fn stray_unwrap_in_sim_is_caught() {
    let ws = Workspace::from_memory(&[(
        "crates/noc/src/sim.rs",
        "pub fn step(&mut self) {\n    let f = self.queue.pop().unwrap();\n}\n",
    )]);
    assert_eq!(
        findings_of(&ws, "panic-in-hot-path"),
        vec![("crates/noc/src/sim.rs".to_string(), 2)]
    );
}

#[test]
fn every_panic_form_is_caught_and_cfg_test_is_exempt() {
    let src = "\
fn live() {\n\
    x.expect(\"boom\");\n\
    panic!(\"no\");\n\
    unreachable!();\n\
    todo!();\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { y.unwrap(); panic!(\"fine in tests\"); }\n\
}\n";
    let ws = Workspace::from_memory(&[("crates/core/src/codec.rs", src)]);
    let lines: Vec<u32> = findings_of(&ws, "panic-in-hot-path")
        .into_iter()
        .map(|(_, l)| l)
        .collect();
    assert_eq!(lines, vec![2, 3, 4, 5]);
}

#[test]
fn comments_strings_and_non_hot_paths_do_not_fire() {
    let ws = Workspace::from_memory(&[
        (
            "crates/core/src/transport.rs",
            "// a comment saying x.unwrap() is fine\nlet s = \"call .unwrap()\";\nlet u = x.unwrap_or(0);\n",
        ),
        // Not a hot path: panics are that crate's business.
        ("crates/dnn/src/tensor.rs", "fn f() { x.unwrap(); }\n"),
    ]);
    assert!(findings_of(&ws, "panic-in-hot-path").is_empty());
}

#[test]
fn reasoned_allow_suppresses_and_is_reported() {
    let ws = Workspace::from_memory(&[(
        "crates/noc/src/sim.rs",
        "// btr-lint: allow(panic-in-hot-path, reason = \"validated at construction\")\n\
         let v = x.expect(\"ok\");\n",
    )]);
    let report = run(&ws);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].reason, "validated at construction");
}

#[test]
fn per_bit_iteration_in_hot_modules_is_caught() {
    let src = "\
fn count(&self) -> u32 {\n\
    let n = self.image.iter_bits().filter(|&b| b).count();\n\
    for b in 0..self.width {\n\
        probe(b);\n\
    }\n\
    for w in 0..width.div_ceil(64) {\n\
        word(w);\n\
    }\n\
    for link in 0..num_links {\n\
        scan(link);\n\
    }\n\
    n\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn oracle() { for b in 0..width { probe(b); } img.iter_bits(); }\n\
}\n";
    let ws = Workspace::from_memory(&[("crates/noc/src/stats.rs", src)]);
    let lines: Vec<u32> = findings_of(&ws, "per-bit-hot-loop")
        .into_iter()
        .map(|(_, l)| l)
        .collect();
    // The `.iter_bits()` call and the per-wire index loop fire; the
    // word-granular loop, the non-width loop and the cfg(test) oracle
    // do not.
    assert_eq!(lines, vec![2, 3]);
}

#[test]
fn per_bit_loop_outside_hot_modules_or_with_allow_is_clean() {
    let ws = Workspace::from_memory(&[
        // Figure code may walk bits: not in the hot module set.
        (
            "crates/experiments/src/figures.rs",
            "fn f() { for b in 0..width { probe(b); } }\n",
        ),
        (
            "crates/bits/src/transition.rs",
            "// btr-lint: allow(per-bit-hot-loop, reason = \"per-bit-position output\")\n\
             fn g() { for b in 0..self.width { h(b); } }\n",
        ),
    ]);
    let report = run(&ws);
    assert!(
        report.findings.iter().all(|f| f.rule != "per-bit-hot-loop"),
        "{:?}",
        report.findings
    );
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].reason, "per-bit-position output");
}

/// A minimal sweep.rs standing in for the real one: canonical const,
/// cell struct, emission fn, baseline-key const.
fn mini_sweep(fields: &str, emitted: &str, key_fields: &str) -> String {
    format!(
        "pub const SWEEP_SCHEMA: &str = \"btr-sweep-v8\";\n\
         pub struct SweepCell {{\n{fields}}}\n\
         pub fn outcomes_json() -> Json {{\n    Json::obj(vec![{emitted}])\n}}\n\
         const BASELINE_KEY_FIELDS: [&str; 2] = [{key_fields}];\n"
    )
}

#[test]
fn mismatched_schema_string_is_caught() {
    let sweep = mini_sweep(
        "    pub ber: f64,\n",
        "(\"ber\", x)",
        "\"ber\", \"workload\"",
    );
    let ws = Workspace::from_memory(&[
        ("crates/experiments/src/sweep.rs", &sweep),
        (
            ".github/workflows/ci.yml",
            "      - run: grep -q '\"schema\":\"btr-sweep-v7\"' out.json\n",
        ),
    ]);
    assert_eq!(
        findings_of(&ws, "schema-coherence"),
        vec![(".github/workflows/ci.yml".to_string(), 1)]
    );
}

#[test]
fn matching_schema_strings_are_clean_and_missing_const_is_caught() {
    let sweep = mini_sweep("    pub ber: f64,\n", "(\"ber\", x)", "\"ber\"");
    let clean = Workspace::from_memory(&[
        ("crates/experiments/src/sweep.rs", &sweep),
        ("EXPERIMENTS.md", "The schema is btr-sweep-v8 now.\n"),
    ]);
    assert!(findings_of(&clean, "schema-coherence").is_empty());

    // Occurrences with no canonical const to anchor them.
    let orphan = Workspace::from_memory(&[
        ("crates/experiments/src/sweep.rs", "// no const here\n"),
        ("EXPERIMENTS.md", "The schema is btr-sweep-v8 now.\n"),
    ]);
    assert_eq!(findings_of(&orphan, "schema-coherence").len(), 1);
}

#[test]
fn new_cell_field_missing_from_key_or_emission_is_caught() {
    // `fault_mode` declared on the cell (line 4 of the fixture) but
    // absent from both the emission and the baseline key: two findings
    // on its declaration line.
    let sweep = mini_sweep(
        "    pub ber: f64,\n    pub fault_mode: FaultMode,\n",
        "(\"ber\", x)",
        "\"ber\", \"workload\"",
    );
    let ws = Workspace::from_memory(&[("crates/experiments/src/sweep.rs", &sweep)]);
    let hits = findings_of(&ws, "sweep-axis-completeness");
    assert_eq!(
        hits,
        vec![
            ("crates/experiments/src/sweep.rs".to_string(), 4),
            ("crates/experiments/src/sweep.rs".to_string(), 4),
        ]
    );
}

#[test]
fn emission_alias_satisfies_the_axis_rule() {
    // `scope` serializes as "codec_scope"; the alias must satisfy both
    // the emission and the baseline-key check.
    let sweep = mini_sweep(
        "    pub scope: CodecScope,\n",
        "(\"codec_scope\", x)",
        "\"codec_scope\", \"workload\"",
    );
    let ws = Workspace::from_memory(&[("crates/experiments/src/sweep.rs", &sweep)]);
    assert!(findings_of(&ws, "sweep-axis-completeness").is_empty());
}

#[test]
fn wall_clock_reads_outside_allowlist_are_caught() {
    let ws = Workspace::from_memory(&[
        (
            "crates/noc/src/sim.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
        ),
        // Allowlisted: the serve latency metrics.
        (
            "crates/serve/src/service.rs",
            "fn g() { let t = Instant::now(); }\n",
        ),
    ]);
    assert_eq!(
        findings_of(&ws, "determinism"),
        vec![("crates/noc/src/sim.rs".to_string(), 1)]
    );
}

#[test]
fn hash_iteration_without_sort_is_caught() {
    let bad = "use std::collections::HashMap;\n\
               fn f() {\n\
               let mut m: HashMap<String, u64> = HashMap::new();\n\
               for (k, v) in &m { emit(k, v); }\n\
               }\n";
    let good = "use std::collections::HashMap;\n\
                fn f() {\n\
                let mut m: HashMap<String, u64> = HashMap::new();\n\
                let mut rows: Vec<_> = m.iter().collect();\n\
                rows.sort();\n\
                }\n";
    let ws = Workspace::from_memory(&[("crates/experiments/src/sweep.rs", bad)]);
    assert_eq!(
        findings_of(&ws, "determinism"),
        vec![("crates/experiments/src/sweep.rs".to_string(), 4)]
    );
    let ws = Workspace::from_memory(&[("crates/experiments/src/sweep.rs", good)]);
    assert!(findings_of(&ws, "determinism").is_empty());
}

#[test]
fn vendor_reaching_net_process_or_entropy_is_caught() {
    let ws = Workspace::from_memory(&[
        (
            "vendor/rand/src/lib.rs",
            "use std::net::TcpStream;\nfn f() { let r = OsRng; }\n",
        ),
        // The same tokens outside vendor/ are not this rule's business.
        ("crates/serve/src/lib.rs", "// std::net is not used here\n"),
    ]);
    let hits = findings_of(&ws, "vendor-hygiene");
    assert_eq!(
        hits,
        vec![
            ("vendor/rand/src/lib.rs".to_string(), 1),
            ("vendor/rand/src/lib.rs".to_string(), 2),
        ]
    );
}

#[test]
fn directive_audit_catches_rot() {
    let ws = Workspace::from_memory(&[(
        "crates/noc/src/fault.rs",
        "// btr-lint: allow(panic-in-hot-path, reason = \"nothing here fires\")\n\
         let x = 1;\n\
         // btr-lint: allow(no-such-rule, reason = \"r\")\n\
         // btr-lint: allow(determinism)\n",
    )]);
    let hits = findings_of(&ws, "lint-directive");
    let lines: Vec<u32> = hits.iter().map(|(_, l)| *l).collect();
    assert_eq!(lines, vec![1, 3, 4], "unused, unknown rule, missing reason");
}

#[test]
fn binary_exits_nonzero_on_a_seeded_violation_and_zero_when_clean() {
    let dir = std::env::temp_dir().join(format!("btr-lint-fixture-{}", std::process::id()));
    let hot = dir.join("crates/noc/src");
    std::fs::create_dir_all(&hot).expect("fixture dir");
    std::fs::write(hot.join("sim.rs"), "fn f() { x.unwrap(); }\n").expect("fixture file");

    let json_path = dir.join("lint.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_btr-lint"))
        .args(["--root", dir.to_str().expect("utf-8 path")])
        .args(["--json", json_path.to_str().expect("utf-8 path")])
        .output()
        .expect("btr-lint runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "seeded violation must fail the gate"
    );
    let doc = std::fs::read_to_string(&json_path).expect("json written");
    assert!(doc.contains("\"schema\":\"btr-lint-v1\""));
    assert!(doc.contains("\"findings\":1"));
    assert!(doc.contains("panic-in-hot-path"));

    std::fs::write(
        hot.join("sim.rs"),
        "fn f() -> Option<u32> { x.checked_add(1) }\n",
    )
    .expect("fixture file");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_btr-lint"))
        .args(["--root", dir.to_str().expect("utf-8 path")])
        .output()
        .expect("btr-lint runs");
    assert_eq!(out.status.code(), Some(0), "clean tree must pass");

    let _ = std::fs::remove_dir_all(&dir);
}
