//! Workspace loading and suppression directives.
//!
//! The lint operates on a snapshot of the repository: every tracked
//! source-ish file (`.rs`, `.yml`, `.md`, `.toml`) under the workspace
//! root, excluding build output, VCS state, and the lint's own fixture
//! corpus (which deliberately contains violations).
//!
//! Suppressions are inline, per-line, and must carry a reason:
//!
//! ```text
//! // btr-lint: allow(panic-in-hot-path, reason = "validated above")
//! <!-- btr-lint: allow(schema-coherence, reason = "historic example") -->
//! # btr-lint: allow(determinism, reason = "wall-clock report field")
//! ```
//!
//! A directive suppresses matching findings on its own line or the
//! line immediately after it. Unused, unknown-rule, reason-less, or
//! unparseable directives are themselves findings (rule
//! `lint-directive`), so suppressions cannot rot silently.

use std::cell::Cell;
use std::fs;
use std::path::{Path, PathBuf};

/// One `btr-lint: allow(...)` directive found in a file.
#[derive(Debug)]
pub struct Directive {
    /// Rule name the directive targets.
    pub rule: String,
    /// The written justification (empty if the author omitted it —
    /// which is itself a finding).
    pub reason: String,
    /// 1-based line the directive sits on.
    pub line: u32,
    /// Set when a rule consults this directive to suppress a finding.
    pub used: Cell<bool>,
    /// Set when the directive text failed to parse.
    pub malformed: Option<String>,
}

/// One loaded file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Full text.
    pub text: String,
    /// Suppression directives, in file order.
    pub directives: Vec<Directive>,
}

impl SourceFile {
    /// Looks up a matching directive covering `line` (the directive's
    /// own line or the line before). Marks the directive used and
    /// returns its reason.
    pub fn suppression(&self, rule: &str, line: u32) -> Option<String> {
        for d in &self.directives {
            if d.malformed.is_none() && d.rule == rule && (d.line == line || d.line + 1 == line) {
                d.used.set(true);
                return Some(d.reason.clone());
            }
        }
        None
    }

    /// True when a matching directive covers `line`.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppression(rule, line).is_some()
    }

    /// Lines of the file, 1-based iteration helper.
    pub fn lines(&self) -> impl Iterator<Item = (u32, &str)> {
        self.text
            .lines()
            .enumerate()
            .map(|(i, l)| (u32::try_from(i).unwrap_or(u32::MAX).saturating_add(1), l))
    }

    /// File extension, lowercased.
    #[must_use]
    pub fn ext(&self) -> &str {
        Path::new(&self.rel)
            .extension()
            .and_then(|e| e.to_str())
            .unwrap_or("")
    }
}

/// The loaded workspace snapshot all rules run against.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute root the snapshot was loaded from.
    pub root: PathBuf,
    /// Files sorted by relative path (deterministic report order).
    pub files: Vec<SourceFile>,
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &[".git", "target", "node_modules", ".claude"];

/// Extensions the lint loads.
const EXTS: &[&str] = &["rs", "yml", "yaml", "md", "toml"];

impl Workspace {
    /// Loads every lintable file under `root`. I/O errors on individual
    /// files are skipped (the build would have caught unreadable
    /// sources); an unreadable root is an error.
    pub fn load(root: &Path) -> std::io::Result<Self> {
        let mut files = Vec::new();
        let root = root.canonicalize()?;
        walk(&root, &root, &mut files)?;
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Ok(Self { root, files })
    }

    /// Builds a workspace from in-memory (path, text) pairs — the
    /// fixture-test entry point.
    #[must_use]
    pub fn from_memory(entries: &[(&str, &str)]) -> Self {
        let mut files: Vec<SourceFile> = entries
            .iter()
            .map(|(rel, text)| SourceFile {
                rel: (*rel).to_string(),
                text: (*text).to_string(),
                directives: directives_for(rel, text),
            })
            .collect();
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Self {
            root: PathBuf::from("<memory>"),
            files,
        }
    }

    /// Files whose relative path starts with any of `prefixes`.
    pub fn under<'a>(&'a self, prefixes: &'a [&'a str]) -> impl Iterator<Item = &'a SourceFile> {
        self.files
            .iter()
            .filter(move |f| prefixes.iter().any(|p| f.rel.starts_with(p)))
    }

    /// Looks up a file by exact relative path.
    #[must_use]
    pub fn get(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let Ok(entry) = entry else { continue };
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            // The fixture corpus under the analysis crate's tests holds
            // deliberate violations; linting it would be self-defeating.
            let rel_dir = rel_of(root, &path);
            if rel_dir.starts_with("crates/analysis/tests") {
                continue;
            }
            walk(root, &path, out)?;
        } else if EXTS.iter().any(|e| name.ends_with(&format!(".{e}"))) {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let rel = rel_of(root, &path);
            let directives = directives_for(&rel, &text);
            out.push(SourceFile {
                rel,
                text,
                directives,
            });
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// The marker every directive carries, in any comment syntax.
const MARKER: &str = "btr-lint:";

/// Parses directives with per-format handling: in markdown, fenced
/// code blocks and inline backtick spans are inert so documentation
/// can show the allow syntax without creating (unused or malformed)
/// live suppressions.
#[must_use]
pub fn directives_for(rel: &str, text: &str) -> Vec<Directive> {
    if rel.ends_with(".md") {
        let mut fenced = false;
        let masked: String = text
            .lines()
            .map(|l| {
                let toggles = l.trim_start().starts_with("```");
                if toggles {
                    fenced = !fenced;
                }
                if fenced || toggles {
                    String::new()
                } else {
                    mask_backtick_spans(l)
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        parse_directives(&masked)
    } else {
        parse_directives(text)
    }
}

/// Blanks `inline code` spans in a markdown line.
fn mask_backtick_spans(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut inside = false;
    for c in line.chars() {
        if c == '`' {
            inside = !inside;
            out.push(c);
        } else if !inside {
            out.push(c);
        }
    }
    out
}

/// Scans raw lines for directives. Raw-line scanning (rather than
/// token-level) is deliberate: directives must work identically in
/// `.rs` comments, markdown `<!-- -->`, and YAML `#` comments, and a
/// directive inside a string literal is nonsensical enough that the
/// `lint-directive` meta-rule flagging it as unused is the right
/// outcome anyway.
#[must_use]
pub fn parse_directives(text: &str) -> Vec<Directive> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = u32::try_from(i).unwrap_or(u32::MAX).saturating_add(1);
        let Some(at) = line.find(MARKER) else {
            continue;
        };
        // Documentation may *mention* the marker in backticks or after
        // an escape; only treat it as live when followed by `allow(`.
        let rest = line[at + MARKER.len()..].trim_start();
        if !rest.starts_with("allow") {
            continue;
        }
        out.push(parse_allow(rest, lineno));
    }
    out
}

/// Parses `allow(<rule>, reason = "...")`, recording malformations
/// instead of failing.
fn parse_allow(rest: &str, line: u32) -> Directive {
    let bad = |why: &str| Directive {
        rule: String::new(),
        reason: String::new(),
        line,
        used: Cell::new(false),
        malformed: Some(why.to_string()),
    };
    let Some(open) = rest.find('(') else {
        return bad("missing `(` after allow");
    };
    let Some(close) = rest.rfind(')') else {
        return bad("missing closing `)`");
    };
    if close < open {
        return bad("mismatched parentheses");
    }
    let inner = &rest[open + 1..close];
    let Some((rule_part, reason_part)) = inner.split_once(',') else {
        return bad("missing `, reason = \"...\"` — every suppression needs a written reason");
    };
    let rule = rule_part.trim().to_string();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return bad("rule name must be a kebab-case identifier");
    }
    let reason_part = reason_part.trim();
    let Some(eq) = reason_part.strip_prefix("reason") else {
        return bad("expected `reason = \"...\"` after the rule name");
    };
    let eq = eq.trim_start();
    let Some(quoted) = eq.strip_prefix('=') else {
        return bad("expected `=` after `reason`");
    };
    let quoted = quoted.trim();
    let reason = quoted
        .strip_prefix('"')
        .and_then(|q| q.strip_suffix('"'))
        .map(str::to_string);
    let Some(reason) = reason else {
        return bad("reason must be a double-quoted string");
    };
    if reason.trim().is_empty() {
        return bad("reason must not be empty");
    }
    Directive {
        rule,
        reason,
        line,
        used: Cell::new(false),
        malformed: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rust_markdown_and_yaml_comment_forms() {
        let text = "\
// btr-lint: allow(panic-in-hot-path, reason = \"validated above\")\n\
<!-- btr-lint: allow(schema-coherence, reason = \"historic example\") -->\n\
# btr-lint: allow(determinism, reason = \"wall clock report\")\n";
        let ds = parse_directives(text);
        assert_eq!(ds.len(), 3);
        assert!(ds.iter().all(|d| d.malformed.is_none()));
        assert_eq!(ds[0].rule, "panic-in-hot-path");
        assert_eq!(ds[1].reason, "historic example");
        assert_eq!(ds[2].line, 3);
    }

    #[test]
    fn reasonless_and_garbled_directives_are_malformed() {
        let ds = parse_directives(
            "// btr-lint: allow(panic-in-hot-path)\n\
             // btr-lint: allow(x y, reason = \"r\")\n\
             // btr-lint: allow(determinism, reason = )\n",
        );
        assert_eq!(ds.len(), 3);
        assert!(ds.iter().all(|d| d.malformed.is_some()));
    }

    #[test]
    fn markdown_code_fences_are_inert() {
        let text = "```rust\n// btr-lint: allow(determinism, reason = \"doc example\")\n```\n\
                    <!-- btr-lint: allow(schema-coherence, reason = \"live\") -->\n";
        let ds = directives_for("ANALYSIS.md", text);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "schema-coherence");
        assert_eq!(ds[0].line, 4);
        // The same text in a .rs file parses both.
        assert_eq!(directives_for("x.rs", text).len(), 2);
    }

    #[test]
    fn prose_mentions_are_not_directives() {
        let ds = parse_directives("Write `// btr-lint: ` followed by the allow form.\n");
        assert!(ds.is_empty());
    }

    #[test]
    fn suppression_covers_own_line_and_next() {
        let f = SourceFile {
            rel: "x.rs".into(),
            text: String::new(),
            directives: parse_directives("\n// btr-lint: allow(determinism, reason = \"r\")\n"),
        };
        assert!(!f.suppressed("determinism", 1));
        assert!(f.suppressed("determinism", 2));
        assert!(f.suppressed("determinism", 3));
        assert!(!f.suppressed("determinism", 4));
        assert!(!f.suppressed("panic-in-hot-path", 2));
        assert!(f.directives[0].used.get());
    }
}
