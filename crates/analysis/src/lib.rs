//! `btr_analysis` — project-specific static analysis for this
//! workspace's real invariants.
//!
//! Generic tooling (clippy `-D warnings`, rustfmt) is already clean
//! here; what it cannot see are the contracts this reproduction's
//! claims rest on: hot measurement paths must not panic mid-sweep,
//! the JSON schema version strings duplicated across source / tests /
//! CI greps / docs must agree, every sweep axis must survive into the
//! result rows and the baseline key, results must not depend on wall
//! clocks or hash iteration order, and the vendored offline stand-ins
//! must stay network- and entropy-free. `btr-lint` mechanizes exactly
//! those checks.
//!
//! The crate is dependency-free (std only) and does not parse Rust —
//! a small comment/string/char-literal-aware lexer ([`lexer`]) gives
//! rules token streams, which is sufficient for every shipped rule
//! and keeps the lint immune to breakage in the crates it polices.
//!
//! See `ANALYSIS.md` at the workspace root for the rule catalog, the
//! allow-directive syntax, and the `btr-lint-v1` report schema.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

use std::path::Path;

pub use report::{Finding, Report, LINT_SCHEMA};
pub use source::Workspace;

/// Runs every rule over an already-loaded workspace.
#[must_use]
pub fn run(ws: &Workspace) -> Report {
    let mut report = Report::default();
    rules::run_all(ws, &mut report);
    report.sort();
    report
}

/// Loads the workspace at `root` and runs every rule.
pub fn run_at(root: &Path) -> std::io::Result<Report> {
    let ws = Workspace::load(root)?;
    Ok(run(&ws))
}
