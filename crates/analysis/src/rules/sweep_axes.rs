//! Rule `sweep-axis-completeness`: every field of `SweepCell` must
//! appear (a) as an emitted key in `outcomes_json` and (b) in
//! `BASELINE_KEY_FIELDS`, the documented mirror of the baseline-key
//! construction. This catches the real bug class where a new sweep
//! axis is added to the grid but silently falls out of the result rows
//! or — worse — out of the baseline key, making unlike cells compare
//! as baselines of each other.
//!
//! Fields that are *deliberately* absent (the varied axis itself, or
//! harness-only switches that never reach the JSON) carry reasoned
//! allows on their declaration lines.

use crate::lexer::{lex, Tok, TokKind};
use crate::report::Report;
use crate::rules::emit;
use crate::source::Workspace;

/// The file the rule interrogates.
const SWEEP_RS: &str = "crates/experiments/src/sweep.rs";

/// JSON keys that differ from their field names, by design.
const EMIT_ALIASES: &[(&str, &str)] = &[("scope", "codec_scope")];

pub fn check(ws: &Workspace, report: &mut Report) {
    let Some(file) = ws.get(SWEEP_RS) else {
        return; // fixture workspaces without a sweep module
    };
    let toks = lex(&file.text);
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let fields = struct_fields(&code, "SweepCell");
    if fields.is_empty() {
        return;
    }
    let emitted = strings_in_region(&code, &["fn", "outcomes_json"], '{', '}');
    let key_fields = strings_in_region(&code, &["BASELINE_KEY_FIELDS"], '[', ']');
    for (name, line) in &fields {
        let emit_key = EMIT_ALIASES
            .iter()
            .find(|(f, _)| f == name)
            .map_or(name.as_str(), |(_, alias)| *alias);
        if !emitted.iter().any(|s| s == emit_key) {
            emit(
                report,
                file,
                "sweep-axis-completeness",
                *line,
                format!(
                    "SweepCell field `{name}` is never emitted as a key in `outcomes_json` \
                     (expected \"{emit_key}\") — the axis would be invisible in result rows"
                ),
            );
        }
        // BASELINE_KEY_FIELDS lists fields *as serialized*, so the
        // emission alias applies there too.
        if !key_fields.iter().any(|s| s == emit_key) {
            emit(
                report,
                file,
                "sweep-axis-completeness",
                *line,
                format!(
                    "SweepCell field `{name}` (serialized \"{emit_key}\") is missing from \
                     BASELINE_KEY_FIELDS — cells differing only in `{name}` would share a baseline"
                ),
            );
        }
    }
}

/// Field names (and declaration lines) of `struct NAME { ... }`:
/// identifiers directly followed by a single `:` at brace depth 1.
fn struct_fields(code: &[&Tok], name: &str) -> Vec<(String, u32)> {
    let mut fields = Vec::new();
    let Some(start) = code
        .windows(3)
        .position(|w| w[0].is_ident("struct") && w[1].is_ident(name) && w[2].is_punct('{'))
    else {
        return fields;
    };
    let mut depth = 0usize;
    let mut i = start + 2;
    while i < code.len() {
        let tok = code[i];
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1
            && tok.kind == TokKind::Ident
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && !i.checked_sub(1).is_some_and(|p| code[p].is_punct(':'))
        {
            fields.push((tok.text.clone(), tok.line));
        }
        i += 1;
    }
    fields
}

/// String literals inside the delimiter-matched region (`open`..`close`)
/// that begins at the first occurrence of the given ident sequence —
/// `{ }` for a fn body, `[ ]` for an array const initializer.
fn strings_in_region(code: &[&Tok], idents: &[&str], open: char, close: char) -> Vec<String> {
    let mut out = Vec::new();
    let Some(at) = code
        .windows(idents.len())
        .position(|w| w.iter().zip(idents).all(|(t, i)| t.is_ident(i)))
    else {
        return out;
    };
    let mut i = at + idents.len();
    if open == '[' {
        // Array const: the type annotation (`[&str; N]`) also brackets;
        // the region we want is the initializer after `=`.
        while i < code.len() && !code[i].is_punct('=') {
            i += 1;
        }
    }
    while i < code.len() && !code[i].is_punct(open) {
        i += 1;
    }
    let mut depth = 0usize;
    while i < code.len() {
        let tok = code[i];
        if tok.is_punct(open) {
            depth += 1;
        } else if tok.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if matches!(tok.kind, TokKind::Str | TokKind::RawStr) {
            out.push(tok.text.clone());
        }
        i += 1;
    }
    out
}
