//! Rule `schema-coherence`: each JSON schema version family has ONE
//! canonical `pub const` declaration, and every other occurrence of a
//! family-prefixed version string — in source, tests, CI greps, and
//! docs — must match its value. This is the rule that catches a schema
//! bump that misses a CI grep or a doc example.

use crate::lexer::{lex, Tok, TokKind};
use crate::report::Report;
use crate::rules::{emit, exempt};
use crate::source::Workspace;

/// (family prefix, canonical const name, file declaring it).
pub const FAMILIES: &[(&str, &str, &str)] = &[
    (
        "btr-sweep-v",
        "SWEEP_SCHEMA",
        "crates/experiments/src/sweep.rs",
    ),
    (
        "btr-serve-v",
        "SERVE_SCHEMA",
        "crates/experiments/src/serve_json.rs",
    ),
    (
        "btr-bench-v",
        "BENCH_SCHEMA",
        "crates/experiments/src/json.rs",
    ),
    ("btr-lint-v", "LINT_SCHEMA", "crates/analysis/src/report.rs"),
];

/// Prose/history files where stale version strings are the historical
/// record, not a defect.
const PROSE_EXCLUDE: &[&str] = &[
    "CHANGES.md",
    "ROADMAP.md",
    "ISSUE.md",
    "PAPER.md",
    "PAPERS.md",
    "SNIPPETS.md",
];

pub fn check(ws: &Workspace, report: &mut Report) {
    for &(prefix, const_name, decl_path) in FAMILIES {
        let canonical = canonical_value(ws, prefix, const_name, decl_path);
        let occurrences = scan_occurrences(ws, prefix, report, canonical.as_deref(), decl_path);
        if canonical.is_none() && occurrences > 0 {
            // Version strings exist but nothing owns them.
            if let Some(file) = ws.get(decl_path) {
                emit(
                    report,
                    file,
                    "schema-coherence",
                    0,
                    format!(
                        "no `const {const_name}: &str = \"{prefix}<N>\"` declaration found, \
                         but {occurrences} `{prefix}*` occurrence(s) exist in the workspace"
                    ),
                );
            }
        }
    }
}

/// Extracts the canonical value: in `decl_path`, a `const NAME` whose
/// initializer is a string literal starting with `prefix`.
fn canonical_value(
    ws: &Workspace,
    prefix: &str,
    const_name: &str,
    decl_path: &str,
) -> Option<String> {
    let file = ws.get(decl_path)?;
    let toks = lex(&file.text);
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    for (i, tok) in code.iter().enumerate() {
        if !tok.is_ident(const_name) || !i.checked_sub(1).is_some_and(|p| code[p].is_ident("const"))
        {
            continue;
        }
        // `const NAME: &str = "...";` — the literal is within the next
        // handful of tokens.
        for t in code.iter().skip(i).take(8) {
            if matches!(t.kind, TokKind::Str | TokKind::RawStr) && t.text.starts_with(prefix) {
                return Some(t.text.clone());
            }
        }
    }
    None
}

/// Scans raw lines of every in-scope file for `prefix` + digits and
/// flags values that differ from the canonical one. Returns the number
/// of occurrences seen.
fn scan_occurrences(
    ws: &Workspace,
    prefix: &str,
    report: &mut Report,
    canonical: Option<&str>,
    decl_path: &str,
) -> usize {
    let mut count = 0;
    for file in &ws.files {
        // The lint's own sources spell out foreign-family literals in
        // this very table; skip them (report.rs is reached through
        // `canonical_value` for its own family).
        if exempt(file) && file.rel != decl_path {
            continue;
        }
        if PROSE_EXCLUDE.contains(&file.rel.as_str()) {
            continue;
        }
        if !matches!(file.ext(), "rs" | "yml" | "yaml" | "md" | "toml") {
            continue;
        }
        for (lineno, line) in file.lines() {
            let mut from = 0;
            while let Some(at) = line[from..].find(prefix) {
                let start = from + at;
                let after = &line[start + prefix.len()..];
                let ver: String = after.chars().take_while(char::is_ascii_digit).collect();
                from = start + prefix.len();
                if ver.is_empty() {
                    continue; // prose like "btr-sweep-vN"
                }
                count += 1;
                let found = format!("{prefix}{ver}");
                if let Some(canon) = canonical {
                    if found != canon {
                        emit(
                            report,
                            file,
                            "schema-coherence",
                            lineno,
                            format!(
                                "`{found}` does not match the canonical `{canon}` \
                                 declared in {decl_path}"
                            ),
                        );
                    }
                }
            }
        }
    }
    count
}
