//! Rule `panic-in-hot-path`: no `unwrap`/`expect`/`panic!`/
//! `unreachable!`/`todo!`/`unimplemented!` in the measurement-bearing
//! hot paths the paper's claims run through. A panic there aborts a
//! sweep shard mid-grid and loses every completed cell; hot-path code
//! returns typed errors instead. `#[cfg(test)]` regions are out of
//! scope (tests panic by design); debug-assert oracles and
//! constructor-time validation carry reasoned allows.

use crate::lexer::{cfg_test_regions, in_regions, lex, TokKind};
use crate::report::Report;
use crate::rules::emit;
use crate::source::Workspace;

/// Files and directories where panicking is a lint violation.
pub const HOT_PATHS: &[&str] = &[
    "crates/noc/src/sim.rs",
    "crates/noc/src/analytic.rs",
    "crates/noc/src/stats.rs",
    "crates/noc/src/fault.rs",
    "crates/core/src/codec.rs",
    "crates/core/src/transport.rs",
    "crates/core/src/flitize.rs",
    "crates/core/src/edc.rs",
    "crates/bits/",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

pub fn check(ws: &Workspace, report: &mut Report) {
    for file in ws.under(HOT_PATHS) {
        if file.ext() != "rs" {
            continue;
        }
        let toks = lex(&file.text);
        let test_regions = cfg_test_regions(&toks);
        let code: Vec<_> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        for (i, tok) in code.iter().enumerate() {
            if tok.kind != TokKind::Ident || in_regions(&test_regions, tok.line) {
                continue;
            }
            let next = code.get(i + 1);
            let prev = i.checked_sub(1).and_then(|p| code.get(p));
            let hit = if PANIC_METHODS.contains(&tok.text.as_str()) {
                // `.unwrap(` / `.expect(` — a method call, not e.g. an
                // `unwrap_or` (distinct ident) or a local named unwrap.
                prev.is_some_and(|p| p.is_punct('.')) && next.is_some_and(|n| n.is_punct('('))
            } else if PANIC_MACROS.contains(&tok.text.as_str()) {
                next.is_some_and(|n| n.is_punct('!'))
            } else {
                false
            };
            if hit {
                let form = if PANIC_MACROS.contains(&tok.text.as_str()) {
                    format!("{}!", tok.text)
                } else {
                    format!(".{}()", tok.text)
                };
                emit(
                    report,
                    file,
                    "panic-in-hot-path",
                    tok.line,
                    format!(
                        "`{form}` in a hot path — return a typed error, restructure so the \
                         case cannot arise, or add a reasoned allow"
                    ),
                );
            }
        }
    }
}
