//! Rule `determinism`: the reproduction's results must be bit-stable
//! across runs and machines. Two enforced contracts:
//!
//! 1. **No ambient clocks in measurement code.** `Instant::now` /
//!    `SystemTime` are forbidden outside the allowlisted wall-clock
//!    consumers (benches, the serve latency metrics, vendored harness
//!    code). A wall-clock read anywhere else is either dead weight or
//!    a nondeterminism leak into results.
//! 2. **No `HashMap`/`HashSet` iteration feeding output.** Hash
//!    iteration order varies per process (`RandomState`); iterating
//!    one toward anything serialized must go through a sort. The
//!    check is a token-level heuristic: it tracks names bound with a
//!    `HashMap`/`HashSet` type or constructor, then flags iteration
//!    over those names unless a `sort*` call or `BTreeMap` rebind
//!    appears in the nearby downstream tokens.
//!
//! `#[cfg(test)]` regions are exempt (a test asserting over a map is
//! harmless); genuine exceptions carry reasoned allows.

use crate::lexer::{cfg_test_regions, in_regions, lex, Tok, TokKind};
use crate::report::Report;
use crate::rules::emit;
use crate::source::Workspace;

/// Paths allowed to read wall clocks.
const CLOCK_ALLOW: &[&str] = &[
    "crates/experiments/benches/",
    "crates/serve/src/service.rs",
    "vendor/",
];

/// How far past an iteration site we look for evidence of sorting.
const SORT_WINDOW: usize = 40;

pub fn check(ws: &Workspace, report: &mut Report) {
    for file in &ws.files {
        if file.ext() != "rs" || crate::rules::exempt(file) {
            continue;
        }
        let in_crates = file.rel.starts_with("crates/") || file.rel.starts_with("src/");
        if !in_crates && !file.rel.starts_with("vendor/") {
            continue;
        }
        let toks = lex(&file.text);
        let test_regions = cfg_test_regions(&toks);
        let code: Vec<&Tok> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        if !CLOCK_ALLOW.iter().any(|p| file.rel.starts_with(p)) {
            check_clocks(&code, &test_regions, file, report);
        }
        if !file.rel.starts_with("vendor/") {
            check_hash_iteration(&code, &test_regions, file, report);
        }
    }
}

fn check_clocks(
    code: &[&Tok],
    test_regions: &[(u32, u32)],
    file: &crate::source::SourceFile,
    report: &mut Report,
) {
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokKind::Ident || in_regions(test_regions, tok.line) {
            continue;
        }
        if tok.text == "SystemTime" {
            emit(
                report,
                file,
                "determinism",
                tok.line,
                "`SystemTime` outside the wall-clock allowlist — results must not \
                 depend on ambient time"
                    .to_string(),
            );
        } else if tok.text == "Instant"
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            emit(
                report,
                file,
                "determinism",
                tok.line,
                "`Instant::now()` outside the wall-clock allowlist — wall time may \
                 only feed explicitly-labeled wall-clock report fields"
                    .to_string(),
            );
        }
    }
}

fn check_hash_iteration(
    code: &[&Tok],
    test_regions: &[(u32, u32)],
    file: &crate::source::SourceFile,
    report: &mut Report,
) {
    let hash_bound = hash_bound_names(code);
    if hash_bound.is_empty() {
        return;
    }
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokKind::Ident
            || !hash_bound.contains(&tok.text)
            || in_regions(test_regions, tok.line)
        {
            continue;
        }
        // `name.iter()` / `.keys()` / `.values()` / `.into_iter()` /
        // `.drain(` — or `for x in [&mut] name`.
        let method_iter = code.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && code.get(i + 2).is_some_and(|t| {
                matches!(
                    t.text.as_str(),
                    "iter" | "iter_mut" | "keys" | "values" | "into_iter" | "drain" | "retain"
                )
            });
        let for_iter = {
            let mut p = i;
            // Step back over `self.` / `&` / `mut` to reach the `in`.
            loop {
                if p >= 2 && code[p - 1].is_punct('.') && code[p - 2].is_ident("self") {
                    p -= 2;
                } else if p > 0 && (code[p - 1].is_punct('&') || code[p - 1].is_ident("mut")) {
                    p -= 1;
                } else {
                    break;
                }
            }
            p > 0 && code[p - 1].is_ident("in")
        };
        if !(method_iter || for_iter) {
            continue;
        }
        // Evidence of ordering discipline close downstream?
        let sorted = code.iter().skip(i).take(SORT_WINDOW).any(|t| {
            t.kind == TokKind::Ident && (t.text.starts_with("sort") || t.text == "BTreeMap")
        });
        if sorted {
            continue;
        }
        emit(
            report,
            file,
            "determinism",
            tok.line,
            format!(
                "iteration over hash-ordered `{}` with no sort in sight — hash order \
                 is per-process random; sort before it can reach serialized output",
                tok.text
            ),
        );
    }
}

/// Names bound to a `HashMap`/`HashSet` anywhere in the file: walks
/// backward from each `HashMap`/`HashSet` ident to the statement
/// boundary and takes `let [mut] NAME` or `NAME :` (single colon —
/// `::` path segments excluded) found there.
fn hash_bound_names(code: &[&Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, tok) in code.iter().enumerate() {
        if !(tok.is_ident("HashMap") || tok.is_ident("HashSet")) {
            continue;
        }
        let mut j = i;
        while j > 0 {
            let t = code[j - 1];
            // `)` bounds too: a `-> HashMap<..>` return type must not
            // walk back into the parameter list and bind a param name.
            let boundary = [';', '{', '}', ',', ')'].iter().any(|&c| t.is_punct(c))
                || t.is_punct('(') && !code[j..i].iter().any(|x| x.is_punct(')'));
            if boundary {
                break;
            }
            j -= 1;
        }
        let span = &code[j..i];
        for (k, t) in span.iter().enumerate() {
            if matches!(t.text.as_str(), "mut" | "let" | "self" | "pub") {
                continue;
            }
            let is_let_name = t.kind == TokKind::Ident
                && k.checked_sub(1).is_some_and(|p| {
                    span[p].is_ident("let")
                        || (span[p].is_ident("mut") && k >= 2 && span[k - 2].is_ident("let"))
                });
            let is_typed_name = t.kind == TokKind::Ident
                && span.get(k + 1).is_some_and(|n| n.is_punct(':'))
                && !span.get(k + 2).is_some_and(|n| n.is_punct(':'))
                && !k.checked_sub(1).is_some_and(|p| span[p].is_punct(':'));
            if (is_let_name || is_typed_name) && !names.contains(&t.text) {
                names.push(t.text.clone());
            }
        }
    }
    names
}
