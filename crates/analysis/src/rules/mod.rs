//! The rule catalog and engine.
//!
//! Each rule is a function over the loaded [`Workspace`] that emits
//! findings through [`emit`], which routes them through the file's
//! inline suppressions. After every rule has run, the `lint-directive`
//! meta-rule audits the directives themselves: malformed, unknown-rule,
//! and unused suppressions are findings, so allows cannot rot.

pub mod determinism;
pub mod hot_loop;
pub mod panic_path;
pub mod schema;
pub mod sweep_axes;
pub mod vendor;

use crate::report::{Finding, Report, Suppressed};
use crate::source::{SourceFile, Workspace};

/// Every rule the lint ships, in report-catalog order.
pub const RULES: &[&str] = &[
    "panic-in-hot-path",
    "per-bit-hot-loop",
    "schema-coherence",
    "sweep-axis-completeness",
    "determinism",
    "vendor-hygiene",
    "lint-directive",
];

/// Runs every rule, then the directive audit.
pub fn run_all(ws: &Workspace, report: &mut Report) {
    panic_path::check(ws, report);
    hot_loop::check(ws, report);
    schema::check(ws, report);
    sweep_axes::check(ws, report);
    determinism::check(ws, report);
    vendor::check(ws, report);
    audit_directives(ws, report);
}

/// The lint does not lint itself: its sources and docs necessarily
/// spell out the very patterns the rules hunt (directive grammars,
/// panic tokens, schema literals), and its fixture corpus is seeded
/// with violations. Rules skip these files; the schema rule still
/// reads `report.rs` explicitly for the `btr-lint-v1` canonical value.
#[must_use]
pub fn exempt(file: &SourceFile) -> bool {
    file.rel.starts_with("crates/analysis/")
}

/// Routes a violation through the file's suppressions.
pub fn emit(
    report: &mut Report,
    file: &SourceFile,
    rule: &'static str,
    line: u32,
    message: String,
) {
    let finding = Finding {
        rule,
        path: file.rel.clone(),
        line,
        message,
    };
    if let Some(reason) = file.suppression(rule, line) {
        report.suppressed.push(Suppressed { finding, reason });
    } else {
        report.findings.push(finding);
    }
}

/// The `lint-directive` meta-rule. Not suppressible: a broken
/// suppression must never be able to silence itself.
fn audit_directives(ws: &Workspace, report: &mut Report) {
    for file in &ws.files {
        if exempt(file) {
            continue;
        }
        for d in &file.directives {
            let problem = if let Some(why) = &d.malformed {
                format!("malformed directive: {why}")
            } else if !RULES.contains(&d.rule.as_str()) {
                format!(
                    "unknown rule `{}` in allow directive (known: {})",
                    d.rule,
                    RULES.join(", ")
                )
            } else if !d.used.get() {
                format!(
                    "unused suppression for `{}` — the rule no longer fires here; delete the allow",
                    d.rule
                )
            } else {
                continue;
            };
            report.findings.push(Finding {
                rule: "lint-directive",
                path: file.rel.clone(),
                line: d.line,
                message: problem,
            });
        }
    }
}
