//! Rule `vendor-hygiene`: the vendored stand-ins under `vendor/` are
//! trusted, reviewed, offline code. They must stay that way: no
//! sockets (`std::net`), no subprocesses (`std::process`), and no
//! ambient entropy (`OsRng` / `thread_rng` / `from_entropy` /
//! `getrandom`) — every random stream in this workspace is seeded.
//! File I/O and clocks are fine (criterion writes reports and times
//! runs); reaching for the network or the OS RNG is not.

use crate::lexer::{lex, Tok, TokKind};
use crate::report::Report;
use crate::rules::emit;
use crate::source::Workspace;

/// Idents that are violations on their own.
const BANNED_IDENTS: &[&str] = &["OsRng", "thread_rng", "from_entropy", "getrandom"];

/// `std::<module>` path segments that are violations.
const BANNED_STD_MODULES: &[&str] = &["net", "process"];

pub fn check(ws: &Workspace, report: &mut Report) {
    for file in ws.under(&["vendor/"]) {
        if file.ext() != "rs" {
            continue;
        }
        let toks = lex(&file.text);
        let code: Vec<&Tok> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        for (i, tok) in code.iter().enumerate() {
            if tok.kind != TokKind::Ident {
                continue;
            }
            if BANNED_IDENTS.contains(&tok.text.as_str()) {
                emit(
                    report,
                    file,
                    "vendor-hygiene",
                    tok.line,
                    format!(
                        "`{}` in vendored code — ambient entropy is banned; \
                         every random stream must be explicitly seeded",
                        tok.text
                    ),
                );
            } else if tok.text == "std"
                && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && code.get(i + 3).is_some_and(|t| {
                    t.kind == TokKind::Ident && BANNED_STD_MODULES.contains(&t.text.as_str())
                })
            {
                let module = &code[i + 3].text;
                emit(
                    report,
                    file,
                    "vendor-hygiene",
                    tok.line,
                    format!(
                        "`std::{module}` in vendored code — vendor crates must not reach \
                         the network or spawn processes"
                    ),
                );
            }
        }
    }
}
