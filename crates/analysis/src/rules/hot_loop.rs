//! Rule `per-bit-hot-loop`: no bit-at-a-time iteration in the
//! transition-counting hot modules. The whole measurement stack is
//! word-parallel (`PayloadBits` word ops, SWAR popcounts, the bulk
//! codec-lane run kernels); a per-bit loop there is a 64x regression
//! hiding in plain sight. Two shapes are hunted:
//!
//! * `.iter_bits(` calls — the explicit per-bit iterator (fine in
//!   tests and figure code, not on the measurement path);
//! * `for _ in 0..<bit-width bound>` index loops — a range bound that
//!   names a width/bit count walks wires one by one. Word-granular
//!   bounds (`width.div_ceil(64)`, `words_used()`, `step_by(64)`) are
//!   not findings.
//!
//! `#[cfg(test)]` regions are out of scope (oracles may walk bits by
//! design); genuinely per-wire outputs (e.g. per-bit-position
//! histograms) carry reasoned allows.

use crate::lexer::{cfg_test_regions, in_regions, lex, TokKind};
use crate::report::Report;
use crate::rules::emit;
use crate::source::Workspace;

/// The transition-counting hot modules: the simulator, the analytic
/// replay, the per-link accumulators, the link codecs, and the
/// word-level transition kernels.
pub const HOT_LOOP_PATHS: &[&str] = &[
    "crates/noc/src/sim.rs",
    "crates/noc/src/analytic.rs",
    "crates/noc/src/stats.rs",
    "crates/bits/src/stats.rs",
    "crates/bits/src/transition.rs",
    "crates/core/src/codec.rs",
];

/// Identifiers that mark a range bound as counting bits/wires.
fn is_bit_bound_ident(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    lower.contains("width") || lower.contains("bit")
}

/// Identifiers that mark a range bound as word-granular after all.
const WORD_GRANULAR: &[&str] = &["div_ceil", "words_used", "words", "step_by"];

pub fn check(ws: &Workspace, report: &mut Report) {
    for file in ws.under(HOT_LOOP_PATHS) {
        if file.ext() != "rs" {
            continue;
        }
        let toks = lex(&file.text);
        let test_regions = cfg_test_regions(&toks);
        let code: Vec<_> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        for (i, tok) in code.iter().enumerate() {
            if tok.kind != TokKind::Ident || in_regions(&test_regions, tok.line) {
                continue;
            }
            if tok.text == "iter_bits" {
                // `.iter_bits(` — a call, not the definition.
                let prev = i.checked_sub(1).and_then(|p| code.get(p));
                let next = code.get(i + 1);
                if prev.is_some_and(|p| p.is_punct('.')) && next.is_some_and(|n| n.is_punct('(')) {
                    emit(
                        report,
                        file,
                        "per-bit-hot-loop",
                        tok.line,
                        "`.iter_bits()` in a hot path — use the word-parallel kernels \
                         (PayloadBits word ops / SWAR popcounts), or add a reasoned allow"
                            .to_string(),
                    );
                }
                continue;
            }
            if tok.text != "for" {
                continue;
            }
            // `for <pat> in 0 .. <bound...> {` with a bit-width bound.
            // The pattern is short in all real code; scan a bounded
            // window for `in 0 ..`, then classify the bound tokens up
            // to the loop body brace.
            let Some(in_at) = (i + 1..(i + 5).min(code.len())).find(|&j| code[j].is_ident("in"))
            else {
                continue;
            };
            let is_zero_range = code.get(in_at + 1).is_some_and(|t| t.text == "0")
                && code.get(in_at + 2).is_some_and(|t| t.is_punct('.'))
                && code.get(in_at + 3).is_some_and(|t| t.is_punct('.'));
            if !is_zero_range {
                continue;
            }
            let bound: Vec<_> = code[in_at + 4..]
                .iter()
                .take(12)
                .take_while(|t| !t.is_punct('{'))
                .collect();
            let counts_bits = bound
                .iter()
                .any(|t| t.kind == TokKind::Ident && is_bit_bound_ident(&t.text));
            let word_granular = bound
                .iter()
                .any(|t| t.kind == TokKind::Ident && WORD_GRANULAR.contains(&t.text.as_str()));
            if counts_bits && !word_granular {
                emit(
                    report,
                    file,
                    "per-bit-hot-loop",
                    tok.line,
                    "per-wire index loop in a hot path — the bound counts bits; process \
                     whole words (`div_ceil(64)` / `words_used`) or add a reasoned allow"
                        .to_string(),
                );
            }
        }
    }
}
