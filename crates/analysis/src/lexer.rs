//! A small comment/string/char-literal-aware Rust lexer.
//!
//! `btr-lint` needs exactly enough lexical structure to (a) never flag a
//! pattern that only occurs inside a comment or string literal, (b) read
//! suppression directives out of comments, and (c) track brace depth to
//! delimit items such as `#[cfg(test)] mod tests { ... }`. Full parsing
//! (`syn`) is deliberately out of scope: the workspace is offline and
//! vendored, and token-level analysis is sufficient for every rule the
//! lint ships.
//!
//! The tricky corners a naive scanner gets wrong are covered here and
//! pinned by the unit tests below: nested block comments, raw strings
//! with arbitrary `#` fences (`r#".."#`), byte/raw-byte strings,
//! char literals vs lifetimes (`'a'` vs `'a`), and escaped quotes.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `struct`, `r#match` is
    /// normalized to `match`).
    Ident,
    /// A single punctuation character (the char is in [`Tok::text`]).
    Punct,
    /// `"..."` / `b"..."` string literal (text excludes the quotes,
    /// escapes left as written).
    Str,
    /// `r"..."` / `r#"..."#` / `br#"..."#` raw string literal (text
    /// excludes the fences).
    RawStr,
    /// `'x'` char or byte literal (text excludes the quotes).
    Char,
    /// `'a` lifetime (text excludes the quote).
    Lifetime,
    /// Numeric literal (integers, floats, `1e-6`, `0xFF`).
    Num,
    /// `// ...` comment, doc comments included (text includes the
    /// slashes — directives are parsed out of this).
    LineComment,
    /// `/* ... */` comment, nesting handled (text includes delimiters).
    BlockComment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is included).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this character.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

/// Lexes Rust source into tokens. Never fails: unterminated constructs
/// consume to end of input (the lint runs on code rustc already
/// accepted, so this only matters for robustness on fixtures).
#[must_use]
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.quoted_string(line, TokKind::Str, 0);
                }
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c.is_alphabetic() || c == '_' => self.ident_or_prefixed_string(line),
                c => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.toks
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::BlockComment, text, line);
    }

    /// Body of a `"` string (opening quote already consumed) or a raw
    /// string with `fence` trailing `#`s.
    fn quoted_string(&mut self, line: u32, kind: TokKind, fence: usize) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if kind == TokKind::Str && c == '\\' {
                // Escapes never terminate the literal; keep them verbatim.
                text.push(c);
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '"' {
                if kind == TokKind::RawStr {
                    let closed = (0..fence).all(|i| self.peek(i) == Some('#'));
                    if closed {
                        for _ in 0..fence {
                            self.bump();
                        }
                        self.push(kind, text, line);
                        return;
                    }
                    text.push(c);
                } else {
                    self.push(kind, text, line);
                    return;
                }
            } else {
                text.push(c);
            }
        }
        self.push(kind, text, line); // unterminated: consume to EOF
    }

    /// `'x'` / `'\n'` char literals vs `'a` lifetimes. Rule: a `'`
    /// followed by an escape is a char; a `'` followed by identifier
    /// chars is a char only when a closing `'` immediately follows them.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the opening '
        match self.peek(0) {
            Some('\\') => {
                let mut text = String::new();
                text.push(self.bump().expect("peeked"));
                if let Some(e) = self.bump() {
                    text.push(e);
                    // \u{...} consumes through the closing brace.
                    if e == 'u' && self.peek(0) == Some('{') {
                        while let Some(c) = self.bump() {
                            text.push(c);
                            if c == '}' {
                                break;
                            }
                        }
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, text, line);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                    self.push(TokKind::Char, text, line);
                } else {
                    self.push(TokKind::Lifetime, text, line);
                }
            }
            Some(c) => {
                // A single non-identifier char, e.g. '(' or '$'.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, c.to_string(), line);
            }
            None => self.push(TokKind::Char, String::new(), line),
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                let exp =
                    (c == 'e' || c == 'E') && !text.starts_with("0x") && !text.starts_with("0b");
                text.push(c);
                self.bump();
                // `1e-6` / `1E+9`: the sign belongs to the literal.
                if exp && matches!(self.peek(0), Some('+') | Some('-')) {
                    text.push(self.bump().expect("peeked"));
                }
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the literal; `1..5` does not.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }

    /// Identifiers, with a lookahead for string-literal prefixes
    /// (`r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`) and raw
    /// identifiers (`r#match`).
    fn ident_or_prefixed_string(&mut self, line: u32) {
        let c0 = self.peek(0).expect("caller peeked");
        if c0 == 'r' || c0 == 'b' {
            // How many chars of prefix before a raw/byte string opens?
            let mut ahead = 1;
            if (c0 == 'b' && self.peek(1) == Some('r')) || (c0 == 'r' && self.peek(1) == Some('b'))
            {
                ahead = 2;
            }
            let mut fence = 0;
            while self.peek(ahead + fence) == Some('#') {
                fence += 1;
            }
            let opens_string = self.peek(ahead + fence) == Some('"');
            let raw = ahead + fence > 1 || fence > 0 || c0 == 'r';
            if opens_string && (fence > 0 || ahead == 2 || c0 == 'r' || c0 == 'b') {
                // A raw identifier `r#ident` has a '#' but no quote, so
                // it falls through to the ident path below.
                for _ in 0..ahead + fence + 1 {
                    self.bump();
                }
                let kind = if raw && c0 != 'b' || fence > 0 || ahead == 2 {
                    if c0 == 'b' && ahead == 1 && fence == 0 {
                        TokKind::Str
                    } else {
                        TokKind::RawStr
                    }
                } else {
                    TokKind::Str
                };
                // Plain b"..." handles escapes; raw forms do not.
                let kind = if c0 == 'r' || fence > 0 || ahead == 2 {
                    TokKind::RawStr
                } else {
                    kind
                };
                self.quoted_string(line, kind, fence);
                return;
            }
            if c0 == 'r' && self.peek(1) == Some('#') && opens_string {
                unreachable!("handled above");
            }
        }
        // Raw identifier: skip the `r#` and lex the ident proper.
        if c0 == 'r' && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }
}

/// Line ranges (1-based, inclusive) of `#[cfg(test)]`-gated items —
/// `mod tests { ... }` blocks the panic/determinism rules must not
/// police. Detection is token-level: the attribute sequence followed by
/// an item whose body is the next brace-matched block.
#[must_use]
pub fn cfg_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < code.len() {
        let attr = code[i].is_punct('#')
            && code[i + 1].is_punct('[')
            && code[i + 2].is_ident("cfg")
            && code[i + 3].is_punct('(')
            && code[i + 4].is_ident("test")
            && code[i + 5].is_punct(')')
            && code[i + 6].is_punct(']');
        if !attr {
            i += 1;
            continue;
        }
        // The gated item's body is the next top-level `{ ... }` before a
        // `;` (a gated `use ...;` has no body to skip).
        let mut j = i + 7;
        let mut body_start = None;
        while j < code.len() {
            if code[j].is_punct(';') {
                break;
            }
            if code[j].is_punct('{') {
                body_start = Some(j);
                break;
            }
            j += 1;
        }
        let Some(start) = body_start else {
            i += 7;
            continue;
        };
        let mut depth = 0usize;
        let mut end = start;
        for (k, tok) in code.iter().enumerate().skip(start) {
            if tok.is_punct('{') {
                depth += 1;
            } else if tok.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            }
        }
        regions.push((code[i].line, code[end].line));
        i = end + 1;
    }
    regions
}

/// True when `line` falls in any of `regions` (inclusive).
#[must_use]
pub fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_hide_code() {
        let toks = lex("a // x.unwrap()\nb /* y.expect(\"z\") */ c");
        let ids = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>();
        assert_eq!(ids, ["a", "b", "c"]);
        assert_eq!(toks[1].kind, TokKind::LineComment);
        assert!(toks[1].text.contains("unwrap"));
    }

    #[test]
    fn block_comments_nest() {
        let toks = lex("before /* outer /* inner */ still comment */ after");
        assert_eq!(
            idents("before /* outer /* inner */ still */ after").len(),
            2
        );
        let ids: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Ident).collect();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0].text, "before");
        assert_eq!(ids[1].text, "after");
    }

    #[test]
    fn strings_hide_code_and_handle_escapes() {
        let toks = lex(r#"let s = "a \" b.unwrap()"; t"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("unwrap"));
        assert!(idents(r#"let s = "x.unwrap()"; done"#).contains(&"done".to_string()));
        assert!(!idents(r#"let s = "x.unwrap()"; done"#).contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = lex(r##"let s = r#"quote " inside"#; after"##);
        let raw: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::RawStr).collect();
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].text, r#"quote " inside"#);
        assert!(idents(r##"r#"body"#; x"##).contains(&"x".to_string()));
        // Unfenced raw string and byte string.
        assert_eq!(
            lex(r#"r"\d+" b"bytes""#)
                .iter()
                .filter(|t| matches!(t.kind, TokKind::RawStr | TokKind::Str))
                .count(),
            2
        );
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let u = '\\u{1F}'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], "x");
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_lose_exponents() {
        let toks = lex("0..10 1e-6 0xFF 1.5");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, ["0", "10", "1e-6", "0xFF", "1.5"]);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn cfg_test_region_spans_the_mod() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { y.unwrap(); }\n\
                   }\n\
                   fn after() {}\n";
        let toks = lex(src);
        let regions = cfg_test_regions(&toks);
        assert_eq!(regions, vec![(2, 5)]);
        assert!(!in_regions(&regions, 1));
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 6));
    }

    #[test]
    fn cfg_test_on_use_item_does_not_swallow_the_file() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\nfn f() { x.unwrap(); }";
        let regions = cfg_test_regions(&lex(src));
        assert!(regions.is_empty());
    }
}
