//! Findings, the `btr-lint-v1` machine report, and the human table.

use std::fmt::Write as _;

/// Schema tag stamped on every JSON report this binary emits. Bump it
/// when a field changes meaning; CI greps for the literal value.
pub const LINT_SCHEMA: &str = "btr-lint-v1";

/// One rule violation at a location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired (kebab-case, from the rule catalog).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line (0 when the finding is file- or repo-level).
    pub line: u32,
    /// Human-readable explanation with enough context to act on.
    pub message: String,
}

/// A finding that was silenced by an inline allow directive — reported
/// for audit (the JSON carries every suppression and its reason).
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The silenced finding.
    pub finding: Finding,
    /// The directive's written reason.
    pub reason: String,
}

/// Aggregate result of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed violations; any entry here is a nonzero exit.
    pub findings: Vec<Finding>,
    /// Violations silenced by a reasoned allow.
    pub suppressed: Vec<Suppressed>,
}

impl Report {
    /// Stable order: path, then line, then rule.
    pub fn sort(&mut self) {
        let key = |f: &Finding| (f.path.clone(), f.line, f.rule);
        self.findings.sort_by_key(key);
        self.suppressed.sort_by_key(|s| key(&s.finding));
    }

    /// The `btr-lint-v1` JSON document. Hand-rolled (the crate is
    /// dependency-free); keys are emitted in a fixed order so the
    /// output is byte-stable for a given repo state.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"schema\":\"");
        s.push_str(LINT_SCHEMA);
        s.push_str("\",\"counts\":{\"findings\":");
        let _ = write!(s, "{}", self.findings.len());
        s.push_str(",\"suppressed\":");
        let _ = write!(s, "{}", self.suppressed.len());
        s.push_str("},\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            finding_json(&mut s, f);
        }
        s.push_str("],\"suppressed\":[");
        for (i, sup) in self.suppressed.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let mut obj = String::new();
            finding_json(&mut obj, &sup.finding);
            // Splice the reason in before the closing brace.
            obj.pop();
            s.push_str(&obj);
            s.push_str(",\"reason\":\"");
            escape_into(&mut s, &sup.reason);
            s.push_str("\"}");
        }
        s.push_str("]}");
        s
    }

    /// The human table printed to stderr-adjacent output.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        if self.findings.is_empty() {
            let _ = writeln!(
                s,
                "btr-lint: clean ({} suppression{} in effect)",
                self.suppressed.len(),
                if self.suppressed.len() == 1 { "" } else { "s" }
            );
            return s;
        }
        let _ = writeln!(
            s,
            "btr-lint: {} finding{}",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" }
        );
        let loc_width = self
            .findings
            .iter()
            .map(|f| f.path.len() + digits(f.line) + 1)
            .max()
            .unwrap_or(0);
        let rule_width = self
            .findings
            .iter()
            .map(|f| f.rule.len())
            .max()
            .unwrap_or(0);
        for f in &self.findings {
            let loc = if f.line == 0 {
                f.path.clone()
            } else {
                format!("{}:{}", f.path, f.line)
            };
            let _ = writeln!(
                s,
                "  {loc:<loc_width$}  {:<rule_width$}  {}",
                f.rule, f.message
            );
        }
        s
    }
}

fn finding_json(s: &mut String, f: &Finding) {
    s.push_str("{\"rule\":\"");
    escape_into(s, f.rule);
    s.push_str("\",\"path\":\"");
    escape_into(s, &f.path);
    s.push_str("\",\"line\":");
    let _ = write!(s, "{}", f.line);
    s.push_str(",\"message\":\"");
    escape_into(s, &f.message);
    s.push_str("\"}");
}

fn escape_into(s: &mut String, raw: &str) {
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
}

fn digits(n: u32) -> usize {
    if n == 0 {
        1
    } else {
        (n.ilog10() + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32, msg: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line,
            message: msg.into(),
        }
    }

    #[test]
    fn json_shape_counts_and_escaping() {
        let mut r = Report::default();
        r.findings
            .push(finding("determinism", "b.rs", 2, "say \"no\""));
        r.suppressed.push(Suppressed {
            finding: finding("panic-in-hot-path", "a.rs", 9, "unwrap"),
            reason: "validated above".into(),
        });
        r.sort();
        let json = r.to_json();
        assert!(json.starts_with("{\"schema\":\"btr-lint-v1\""));
        assert!(json.contains("\"counts\":{\"findings\":1,\"suppressed\":1}"));
        assert!(json.contains("say \\\"no\\\""));
        assert!(json.contains("\"reason\":\"validated above\""));
    }

    #[test]
    fn clean_report_is_findings_zero() {
        let r = Report::default();
        assert!(r.to_json().contains("\"findings\":0"));
        assert!(r.to_table().contains("clean"));
    }

    #[test]
    fn sort_is_path_line_rule() {
        let mut r = Report::default();
        r.findings.push(finding("z-rule", "b.rs", 1, "m"));
        r.findings.push(finding("a-rule", "a.rs", 9, "m"));
        r.findings.push(finding("a-rule", "a.rs", 2, "m"));
        r.sort();
        let order: Vec<(String, u32)> = r
            .findings
            .iter()
            .map(|f| (f.path.clone(), f.line))
            .collect();
        assert_eq!(
            order,
            [("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]
        );
    }
}
