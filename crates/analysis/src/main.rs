//! `btr-lint` — run the workspace static-analysis pass.
//!
//! ```text
//! btr-lint [--root DIR] [--json PATH] [--quiet]
//! ```
//!
//! Prints the human table (unless `--quiet`), optionally writes the
//! `btr-lint-v1` JSON report (`-` for stdout), and exits nonzero when
//! any unsuppressed finding remains. Exit codes: 0 clean, 1 findings,
//! 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Writes to stdout tolerating a closed pipe (`btr-lint --json - | head`
/// must not panic mid-report).
fn emit_stdout(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<String> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(v),
                None => return usage("--json needs a path (or `-` for stdout)"),
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("btr-lint [--root DIR] [--json PATH] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match btr_analysis::run_at(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("btr-lint: cannot load workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = json {
        let doc = report.to_json();
        if path == "-" {
            emit_stdout(&doc);
            emit_stdout("\n");
        } else if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("btr-lint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if !quiet {
        emit_stdout(&report.to_table());
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("btr-lint: {msg}\nusage: btr-lint [--root DIR] [--json PATH] [--quiet]");
    ExitCode::from(2)
}
