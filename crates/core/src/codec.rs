//! Pluggable link-coding backends for the transport pipeline.
//!
//! The paper positions transmission *ordering* against classic low-power
//! link coding (bus-invert, delta/XOR). [`crate::encoding`] holds the
//! stream-level primitives; this module packages them as [`LinkCodec`]
//! implementations a [`crate::transport::CodedTransport`] composes with
//! the ordering stage, so the NoC and the accelerator measure the *coded*
//! wire and the sweep runner can answer "does ordering still win once the
//! link is coded, and do they compose?".
//!
//! A codec maps a packet's plain payload-flit stream (all images
//! `data_width` bits wide) to the wire images actually driven onto the
//! link, `data_width + extra_wires` bits wide — bus-invert appends its
//! invert line as one extra wire above the data MSB — and decodes the wire
//! stream back losslessly. Codec state is per-packet (the first flit of
//! every packet re-seeds the scheme), matching how the ordering stage is
//! also applied per packet.

use crate::encoding::{bus_invert_decode, bus_invert_wire_stream, delta_xor_decode};
use btr_bits::payload::PayloadBits;
use serde::{Deserialize, Serialize};

/// Which link-coding backend a transport session applies after ordering
/// and flitization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CodecKind {
    /// No coding: the ordered flit images are the wire images.
    #[default]
    Unencoded,
    /// Bus-invert coding (Stan & Burleson): invert a flit when that
    /// strictly reduces data-wire toggles, signaled on one extra wire.
    BusInvert,
    /// Delta/XOR coding: transmit the XOR of consecutive flits.
    DeltaXor,
}

impl CodecKind {
    /// All backends, in ablation order.
    pub const ALL: [CodecKind; 3] = [
        CodecKind::Unencoded,
        CodecKind::BusInvert,
        CodecKind::DeltaXor,
    ];

    /// Short label used in tables and JSON (`"none"`, `"bus-invert"`,
    /// `"delta-xor"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CodecKind::Unencoded => "none",
            CodecKind::BusInvert => "bus-invert",
            CodecKind::DeltaXor => "delta-xor",
        }
    }

    /// Side-channel wires the codec adds to the link beyond the data
    /// wires (the bus-invert line).
    #[must_use]
    pub fn extra_wires(self) -> u32 {
        match self {
            CodecKind::BusInvert => 1,
            CodecKind::Unencoded | CodecKind::DeltaXor => 0,
        }
    }

    /// The backend implementation for this kind.
    #[must_use]
    pub fn codec(self) -> &'static dyn LinkCodec {
        match self {
            CodecKind::Unencoded => &Unencoded,
            CodecKind::BusInvert => &BusInvert,
            CodecKind::DeltaXor => &DeltaXor,
        }
    }
}

impl std::fmt::Display for CodecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for CodecKind {
    type Err = String;

    /// Parses `"none"`/`"unencoded"`, `"bus-invert"`/`"businvert"`/`"bi"`,
    /// `"delta-xor"`/`"deltaxor"`/`"xor"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "unencoded" => Ok(CodecKind::Unencoded),
            "bus-invert" | "businvert" | "bi" => Ok(CodecKind::BusInvert),
            "delta-xor" | "deltaxor" | "xor" => Ok(CodecKind::DeltaXor),
            other => Err(format!(
                "unknown codec {other:?}; use none|bus-invert|delta-xor"
            )),
        }
    }
}

/// Errors from the decode half of a link codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A wire image's width does not match `data_width + extra_wires`.
    WireWidth {
        /// Width of the offending wire image.
        got: u32,
        /// Expected wire width.
        want: u32,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::WireWidth { got, want } => {
                write!(f, "wire image is {got} bits, codec expects {want}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A link-coding scheme: encodes a packet's plain flit stream into the
/// wire images (data wires + side-channel wires) and decodes losslessly.
///
/// Implementations must round-trip: for any stream of equal-width flits,
/// `decode_stream(&encode_stream(s), w) == s`.
pub trait LinkCodec: std::fmt::Debug + Sync {
    /// The codec's identity.
    fn kind(&self) -> CodecKind;

    /// Encodes a plain flit stream (every image `data_width` bits) into
    /// wire images of `data_width + extra_wires` bits, in order.
    ///
    /// # Panics
    ///
    /// Panics if the widened wire image would exceed
    /// [`btr_bits::payload::MAX_WIDTH_BITS`] or the stream mixes widths.
    fn encode_stream(&self, plain: &[PayloadBits]) -> Vec<PayloadBits>;

    /// Decodes a packet's wire images back into the plain flit stream of
    /// `data_width`-bit images.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if a wire image's width is not
    /// `data_width + extra_wires`.
    fn decode_stream(
        &self,
        wire: &[PayloadBits],
        data_width: u32,
    ) -> Result<Vec<PayloadBits>, CodecError>;
}

fn check_wire_widths(wire: &[PayloadBits], data_width: u32, extra: u32) -> Result<(), CodecError> {
    let want = data_width + extra;
    for w in wire {
        if w.width() != want {
            return Err(CodecError::WireWidth {
                got: w.width(),
                want,
            });
        }
    }
    Ok(())
}

/// The identity codec: wire images are the ordered flit images.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unencoded;

impl LinkCodec for Unencoded {
    fn kind(&self) -> CodecKind {
        CodecKind::Unencoded
    }

    fn encode_stream(&self, plain: &[PayloadBits]) -> Vec<PayloadBits> {
        plain.to_vec()
    }

    fn decode_stream(
        &self,
        wire: &[PayloadBits],
        data_width: u32,
    ) -> Result<Vec<PayloadBits>, CodecError> {
        check_wire_widths(wire, data_width, 0)?;
        Ok(wire.to_vec())
    }
}

/// Bus-invert coding over one extra invert-line wire (bit `data_width` of
/// every wire image).
#[derive(Debug, Clone, Copy, Default)]
pub struct BusInvert;

impl LinkCodec for BusInvert {
    fn kind(&self) -> CodecKind {
        CodecKind::BusInvert
    }

    fn encode_stream(&self, plain: &[PayloadBits]) -> Vec<PayloadBits> {
        let Some(first) = plain.first() else {
            return Vec::new();
        };
        let data_width = first.width();
        bus_invert_wire_stream(plain)
            .into_iter()
            .map(|(data, invert)| {
                let mut wire = data.resized(data_width + 1);
                wire.set_field(data_width, 1, u64::from(invert));
                wire
            })
            .collect()
    }

    fn decode_stream(
        &self,
        wire: &[PayloadBits],
        data_width: u32,
    ) -> Result<Vec<PayloadBits>, CodecError> {
        check_wire_widths(wire, data_width, 1)?;
        let pairs: Vec<(PayloadBits, bool)> = wire
            .iter()
            .map(|w| (w.resized(data_width), w.bit(data_width)))
            .collect();
        Ok(bus_invert_decode(&pairs))
    }
}

/// Delta/XOR coding: wire image `i` is `flit[i] XOR flit[i-1]` (the first
/// flit is sent as-is). No extra wires.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaXor;

impl LinkCodec for DeltaXor {
    fn kind(&self) -> CodecKind {
        CodecKind::DeltaXor
    }

    fn encode_stream(&self, plain: &[PayloadBits]) -> Vec<PayloadBits> {
        crate::encoding::delta_xor_wire_stream(plain)
    }

    fn decode_stream(
        &self,
        wire: &[PayloadBits],
        data_width: u32,
    ) -> Result<Vec<PayloadBits>, CodecError> {
        check_wire_widths(wire, data_width, 0)?;
        Ok(delta_xor_decode(wire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_stream(n: usize, width: u32, seed: u64) -> Vec<PayloadBits> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut p = PayloadBits::zero(width);
                for w in 0..width.div_ceil(64) {
                    let len = 64.min(width - w * 64);
                    p.set_field(w * 64, len, rng.gen());
                }
                p
            })
            .collect()
    }

    #[test]
    fn all_codecs_round_trip() {
        for kind in CodecKind::ALL {
            let codec = kind.codec();
            assert_eq!(codec.kind(), kind);
            for (n, width, seed) in [(1usize, 8u32, 1u64), (7, 64, 2), (40, 128, 3), (13, 96, 4)] {
                let stream = random_stream(n, width, seed);
                let wire = codec.encode_stream(&stream);
                assert_eq!(wire.len(), stream.len());
                for w in &wire {
                    assert_eq!(w.width(), width + kind.extra_wires());
                }
                let back = codec.decode_stream(&wire, width).unwrap();
                assert_eq!(back, stream, "{kind} n={n} w={width}");
            }
        }
    }

    #[test]
    fn empty_streams_encode_and_decode() {
        for kind in CodecKind::ALL {
            let codec = kind.codec();
            assert!(codec.encode_stream(&[]).is_empty());
            assert!(codec.decode_stream(&[], 64).unwrap().is_empty());
        }
    }

    #[test]
    fn decode_rejects_wrong_wire_width() {
        let stream = random_stream(4, 64, 9);
        for kind in CodecKind::ALL {
            let codec = kind.codec();
            let wire = codec.encode_stream(&stream);
            let err = codec.decode_stream(&wire, 32).unwrap_err();
            assert!(matches!(err, CodecError::WireWidth { .. }));
            assert!(err.to_string().contains("codec expects"));
        }
    }

    #[test]
    fn bus_invert_wire_collapses_alternating_stream() {
        // Alternating all-zero / all-one flits: the coded data wires never
        // toggle, only the invert line does.
        let stream: Vec<PayloadBits> = (0..10)
            .map(|i| {
                let p = PayloadBits::zero(64);
                if i % 2 == 0 {
                    p
                } else {
                    p.invert()
                }
            })
            .collect();
        let wire = BusInvert.encode_stream(&stream);
        let transitions: u64 = wire
            .windows(2)
            .map(|w| u64::from(w[1].transitions_to(&w[0])))
            .sum();
        assert_eq!(transitions, 9, "one invert-line toggle per boundary");
        assert_eq!(BusInvert.decode_stream(&wire, 64).unwrap(), stream);
    }

    #[test]
    fn kind_parses_and_prints() {
        for kind in CodecKind::ALL {
            assert_eq!(kind.label().parse::<CodecKind>(), Ok(kind));
        }
        assert_eq!("bi".parse::<CodecKind>(), Ok(CodecKind::BusInvert));
        assert_eq!("xor".parse::<CodecKind>(), Ok(CodecKind::DeltaXor));
        assert_eq!("unencoded".parse::<CodecKind>(), Ok(CodecKind::Unencoded));
        assert!("hamming".parse::<CodecKind>().is_err());
        assert_eq!(CodecKind::default(), CodecKind::Unencoded);
        assert_eq!(CodecKind::BusInvert.to_string(), "bus-invert");
    }
}
