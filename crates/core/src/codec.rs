//! Pluggable link-coding backends for the transport pipeline.
//!
//! The paper positions transmission *ordering* against classic low-power
//! link coding (bus-invert, delta/XOR). This module holds the one
//! implementation of those schemes, split into two halves:
//!
//! * [`CodecKind`] — the **stateless scheme**: which transform runs on the
//!   wires, how many side-channel wires it adds, and the per-packet stream
//!   conveniences ([`CodecKind::encode_stream`] /
//!   [`CodecKind::decode_stream`]) that seed a fresh state per call;
//! * [`LinkCodecState`] — the **explicit state object** (seed / step /
//!   inverse): the running wire memory a real encoder flip-flop holds.
//!   [`CodecKind::seed_state`] seeds it, [`LinkCodecState::encode_step`]
//!   advances the transmit side one flit, [`LinkCodecState::decode_step`]
//!   is the mirrored inverse on the receive side, and
//!   [`LinkCodecState::reset`] returns it to the seeded state.
//!
//! *Where* the state lives is the [`CodecScope`] axis:
//!
//! * [`CodecScope::PerPacket`] — the MC-side transport
//!   ([`crate::transport::CodedTransport`]) seeds a fresh state for every
//!   packet, so the modeled wire forgets itself at packet boundaries;
//! * [`CodecScope::PerLink`] — every directed physical link owns one
//!   persistent [`LinkCodecState`] pair that survives across packets,
//!   batches and layers (`btr_noc::stats::LinkSlab` holds them), modeling
//!   the real wires whose charge state does not reset between packets.
//!
//! A codec maps a plain payload-flit stream (all images `data_width` bits
//! wide) to the wire images actually driven onto the link, `data_width +
//! extra_wires` bits wide — bus-invert appends its invert line as one
//! extra wire above the data MSB — and decodes the wire stream back
//! losslessly.

use btr_bits::payload::PayloadBits;
use serde::{Deserialize, Serialize};

/// Which link-coding backend a transport session applies after ordering
/// and flitization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CodecKind {
    /// No coding: the ordered flit images are the wire images.
    #[default]
    Unencoded,
    /// Bus-invert coding (Stan & Burleson): invert a flit when that
    /// strictly reduces data-wire toggles, signaled on one extra wire.
    BusInvert,
    /// Delta/XOR coding: transmit the XOR of consecutive flits.
    DeltaXor,
}

impl CodecKind {
    /// All backends, in ablation order.
    pub const ALL: [CodecKind; 3] = [
        CodecKind::Unencoded,
        CodecKind::BusInvert,
        CodecKind::DeltaXor,
    ];

    /// Short label used in tables and JSON (`"none"`, `"bus-invert"`,
    /// `"delta-xor"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CodecKind::Unencoded => "none",
            CodecKind::BusInvert => "bus-invert",
            CodecKind::DeltaXor => "delta-xor",
        }
    }

    /// Side-channel wires the codec adds to the link beyond the data
    /// wires (the bus-invert line).
    #[must_use]
    pub fn extra_wires(self) -> u32 {
        match self {
            CodecKind::BusInvert => 1,
            CodecKind::Unencoded | CodecKind::DeltaXor => 0,
        }
    }

    /// True when the scheme carries running state between flits (so a
    /// per-link instance is observable at all): everything but the
    /// identity codec.
    #[must_use]
    pub fn is_stateful(self) -> bool {
        self != CodecKind::Unencoded
    }

    /// Seeds a fresh codec state for a link of `data_width` data wires
    /// (the state of a wire that has not carried a coded flit yet).
    ///
    /// # Panics
    ///
    /// Panics if the widened wire image would exceed
    /// [`btr_bits::payload::MAX_WIDTH_BITS`] or `data_width` is zero.
    #[must_use]
    pub fn seed_state(self, data_width: u32) -> LinkCodecState {
        LinkCodecState::new(self, data_width)
    }

    /// Encodes a plain flit stream (every image `data_width` bits) into
    /// wire images of `data_width + extra_wires` bits, in order, with
    /// **per-packet** state: a fresh [`LinkCodecState`] is seeded for the
    /// call, so the first flit re-seeds the scheme.
    ///
    /// # Panics
    ///
    /// Panics if the widened wire image would exceed
    /// [`btr_bits::payload::MAX_WIDTH_BITS`] or the stream mixes widths.
    #[must_use]
    pub fn encode_stream(self, plain: &[PayloadBits]) -> Vec<PayloadBits> {
        let Some(first) = plain.first() else {
            return Vec::new();
        };
        let mut state = self.seed_state(first.width());
        plain.iter().map(|p| state.encode_step(p)).collect()
    }

    /// Decodes a packet's wire images back into the plain flit stream of
    /// `data_width`-bit images (**per-packet** state, the inverse of
    /// [`CodecKind::encode_stream`]).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if a wire image's width is not
    /// `data_width + extra_wires`.
    pub fn decode_stream(
        self,
        wire: &[PayloadBits],
        data_width: u32,
    ) -> Result<Vec<PayloadBits>, CodecError> {
        let mut state = self.seed_state(data_width);
        wire.iter().map(|w| state.decode_step(w)).collect()
    }
}

impl std::fmt::Display for CodecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for CodecKind {
    type Err = String;

    /// Parses `"none"`/`"unencoded"`, `"bus-invert"`/`"businvert"`/`"bi"`,
    /// `"delta-xor"`/`"deltaxor"`/`"xor"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "unencoded" => Ok(CodecKind::Unencoded),
            "bus-invert" | "businvert" | "bi" => Ok(CodecKind::BusInvert),
            "delta-xor" | "deltaxor" | "xor" => Ok(CodecKind::DeltaXor),
            other => Err(format!(
                "unknown codec {other:?}; use none|bus-invert|delta-xor"
            )),
        }
    }
}

/// Where link-codec state lives — the ownership axis of the codec stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CodecScope {
    /// Codec state is seeded fresh for every packet by the MC-side
    /// transport: the first flit of each packet re-seeds the scheme, so
    /// the modeled wire forgets itself at packet boundaries (the
    /// pre-refactor behavior, kept as the bit-exact reference).
    #[default]
    PerPacket,
    /// Every directed physical link owns one persistent
    /// [`LinkCodecState`] pair that survives across packets, batches and
    /// layers within an inference phase — the transport defers the codec
    /// to the wires and the NoC links encode/decode at traversal time.
    PerLink,
}

impl CodecScope {
    /// Both scopes, in ablation order.
    pub const ALL: [CodecScope; 2] = [CodecScope::PerPacket, CodecScope::PerLink];

    /// Short label used in tables and JSON (`"per-packet"`, `"per-link"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CodecScope::PerPacket => "per-packet",
            CodecScope::PerLink => "per-link",
        }
    }
}

impl std::fmt::Display for CodecScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for CodecScope {
    type Err = String;

    /// Parses `"per-packet"`/`"packet"` or `"per-link"`/`"link"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "per-packet" | "perpacket" | "packet" => Ok(CodecScope::PerPacket),
            "per-link" | "perlink" | "link" => Ok(CodecScope::PerLink),
            other => Err(format!(
                "unknown codec scope {other:?}; use per-packet|per-link"
            )),
        }
    }
}

/// How per-link codec lane state is repaired when a packet is
/// retransmitted after an EDC failure.
///
/// Only meaningful for [`CodecScope::PerLink`]: a wire flip that lands in
/// a stateful decoder (delta-XOR keeps the previous *plain* image)
/// poisons the rx lane, so every later flit decodes wrong and retries
/// alone cannot converge. The resync axis decides whether the NI is
/// allowed to repair lane state at a retry boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ResyncPolicy {
    /// On every retry the NI reseeds the tx and rx lanes of all links
    /// together (a lightweight sideband "sync" pulse, as real
    /// retransmission protocols do). Lanes stay mirrored, so losslessness
    /// is preserved — only the bit-transition cost changes.
    #[default]
    ReseedOnRetry,
    /// Lane state is never reset: the decoder runs continuously across
    /// retries. Honest about what a sync-free wire can do — a sticky
    /// decoder poisoning makes the retry budget run out and surfaces as a
    /// typed unrecoverable error rather than silent corruption.
    Continuous,
}

impl ResyncPolicy {
    /// Both policies, in ablation order.
    pub const ALL: [ResyncPolicy; 2] = [ResyncPolicy::ReseedOnRetry, ResyncPolicy::Continuous];

    /// Short label used in tables and JSON (`"reseed"`, `"continuous"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ResyncPolicy::ReseedOnRetry => "reseed",
            ResyncPolicy::Continuous => "continuous",
        }
    }
}

impl std::fmt::Display for ResyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ResyncPolicy {
    type Err = String;

    /// Parses `"reseed"`/`"reseed-on-retry"` or `"continuous"`/`"cont"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "reseed" | "reseed-on-retry" | "reseedonretry" => Ok(ResyncPolicy::ReseedOnRetry),
            "continuous" | "cont" => Ok(ResyncPolicy::Continuous),
            other => Err(format!(
                "unknown resync policy {other:?}; use reseed|continuous"
            )),
        }
    }
}

/// Errors from the decode half of a link codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A wire image's width does not match `data_width + extra_wires`.
    WireWidth {
        /// Width of the offending wire image.
        got: u32,
        /// Expected wire width.
        want: u32,
    },
    /// A link-aligned *plain* image carried non-zero side-channel wires —
    /// it was already coded, and narrowing it would corrupt the data.
    SideChannel {
        /// Index of the offending flit in the stream.
        flit: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::WireWidth { got, want } => {
                write!(f, "wire image is {got} bits, codec expects {want}")
            }
            CodecError::SideChannel { flit } => {
                write!(
                    f,
                    "plain flit {flit} carries non-zero codec side-channel wires"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Summary of an uninterrupted wire run produced by
/// [`LinkCodecState::encode_run`]: everything a per-link transition
/// accumulator needs to charge the run in O(1) beyond the encode pass
/// itself — the boundary images and the intra-run transition sum — with
/// no intermediate wires materialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRun {
    /// First wire image of the run (charged against the link's previous
    /// image at the run boundary).
    pub first: PayloadBits,
    /// Last wire image of the run (becomes the link's previous image).
    pub last: PayloadBits,
    /// Sum of bit transitions between consecutive wires *within* the run.
    pub intra: u64,
    /// Number of flits in the run.
    pub count: u64,
}

/// The running state of one link codec endpoint: the wire memory a real
/// encoder (or its mirrored decoder) holds between flits.
///
/// One instance per *directed physical link* models [`CodecScope::PerLink`]
/// (the state lives for the link's lifetime); one instance per packet —
/// what [`CodecKind::encode_stream`] seeds internally — models
/// [`CodecScope::PerPacket`].
///
/// The transmit and receive ends of a link hold separate instances that
/// evolve through the identical sequence of images, so
/// `rx.decode_step(tx.encode_step(p)) == p` for every flit, at any point
/// in the stream, with no packet-boundary reset required.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkCodecState {
    kind: CodecKind,
    data_width: u32,
    /// The wire memory, `None` until the first flit seeds it: the previous
    /// *plain* image for delta-XOR, the previous *wire data* image
    /// (post-inversion, invert line excluded) for bus-invert. Always
    /// `data_width` wide.
    prev: Option<PayloadBits>,
}

impl LinkCodecState {
    /// Seeds the state for a link of `data_width` data wires.
    ///
    /// # Panics
    ///
    /// Panics if `data_width` is zero or `data_width + extra_wires`
    /// exceeds [`btr_bits::payload::MAX_WIDTH_BITS`].
    #[must_use]
    pub fn new(kind: CodecKind, data_width: u32) -> Self {
        assert!(data_width > 0, "codec state needs at least one data wire");
        assert!(
            data_width + kind.extra_wires() <= btr_bits::payload::MAX_WIDTH_BITS,
            "wire width {} exceeds maximum {}",
            data_width + kind.extra_wires(),
            btr_bits::payload::MAX_WIDTH_BITS
        );
        Self {
            kind,
            data_width,
            prev: None,
        }
    }

    /// The scheme this state runs.
    #[must_use]
    pub fn kind(&self) -> CodecKind {
        self.kind
    }

    /// Width of the data wires.
    #[must_use]
    pub fn data_width(&self) -> u32 {
        self.data_width
    }

    /// Width of the wire images this state produces and consumes
    /// (`data_width + extra_wires`).
    #[must_use]
    pub fn wire_width(&self) -> u32 {
        self.data_width + self.kind.extra_wires()
    }

    /// True once a flit has seeded the wire memory.
    #[must_use]
    pub fn is_seeded(&self) -> bool {
        self.prev.is_some()
    }

    /// Returns the state to its seeded (packet-boundary) condition — the
    /// step a per-packet scope takes between packets and a per-link scope
    /// deliberately does not.
    pub fn reset(&mut self) {
        self.prev = None;
    }

    /// Narrows an incoming plain image to the data wires. Accepts the
    /// image at `data_width`, or at `wire_width` with zeroed side-channel
    /// wires (the NoC re-aligns narrower payload images onto the full
    /// link width at injection).
    fn data_image(&self, plain: &PayloadBits) -> PayloadBits {
        if plain.width() == self.data_width {
            *plain
        } else {
            assert_eq!(
                plain.width(),
                self.wire_width(),
                "plain image width {} matches neither the {} data wires nor the {}-bit wire",
                plain.width(),
                self.data_width,
                self.wire_width()
            );
            // A set side-channel wire here means the caller handed us an
            // already-coded wire image (e.g. a per-packet-coded stream
            // routed onto per-link coded wires); truncating it would
            // silently corrupt the data, so fail loudly instead.
            assert_eq!(
                plain.field(self.data_width, self.wire_width() - self.data_width),
                0,
                "plain image carries non-zero codec side-channel wires"
            );
            plain.resized(self.data_width)
        }
    }

    /// Advances the transmit side one flit: encodes `plain` against the
    /// wire memory and returns the `wire_width` image actually driven
    /// onto the link.
    ///
    /// # Panics
    ///
    /// Panics if `plain` is neither `data_width` nor `wire_width` bits
    /// wide (the latter with zeroed side-channel wires).
    #[must_use]
    pub fn encode_step(&mut self, plain: &PayloadBits) -> PayloadBits {
        let data = self.data_image(plain);
        match self.kind {
            CodecKind::Unencoded => data,
            CodecKind::DeltaXor => {
                let wire = match &self.prev {
                    None => data,
                    Some(prev) => data.xor(prev),
                };
                self.prev = Some(data);
                wire
            }
            CodecKind::BusInvert => {
                // Invert exactly when that strictly reduces data-wire
                // toggles against the previous wire image. Inverting every
                // data wire flips every toggle, so the inverted image's
                // distance is `data_width - t` — one XOR+popcount pass
                // decides, and the inversion is materialized only when
                // it wins.
                let (wire_data, invert) = match &self.prev {
                    None => (data, false),
                    Some(prev) => {
                        let t = data.transitions_to(prev);
                        if self.data_width - t < t {
                            (data.invert(), true)
                        } else {
                            (data, false)
                        }
                    }
                };
                self.prev = Some(wire_data);
                let mut wire = wire_data.resized(self.data_width + 1);
                wire.set_field(self.data_width, 1, u64::from(invert));
                wire
            }
        }
    }

    /// Advances the transmit side over a whole uninterrupted run of plain
    /// flits in one pass — the word-parallel bulk kernel behind the
    /// analytic engine's per-link fast path. The state ends exactly where
    /// flit-by-flit [`LinkCodecState::encode_step`] calls would, and the
    /// returned [`WireRun`] summarizes the wire stream (first image, last
    /// image, intra-run transition sum) without materializing the
    /// intermediate wires:
    ///
    /// * **Delta-XOR telescopes.** With lane memory `p` and plains
    ///   `x1..xn`, the wires are `x1⊕p, x2⊕x1, …`, so consecutive wires
    ///   differ by the *second difference* `w_k ⊕ w_{k-1} = x_k ⊕ x_{k-2}`
    ///   (with `x0 = p`) — one XOR+popcount per flit, and the end-of-run
    ///   lane state is just the last plain image.
    /// * **Bus-invert keeps its sequential invert decision** but runs
    ///   branch-light: the decision popcount `t` *is* the data-wire
    ///   transition count (`data_width − t` when the inversion wins), so
    ///   the intra sum needs no second pass, and the inverted image is
    ///   materialized only when it wins.
    /// * **Unencoded degenerates** to the raw-wire run
    ///   (`LinkSlab::observe_run` semantics): wires are the plains.
    ///
    /// Returns `None` for an empty run (the state is untouched).
    ///
    /// # Panics
    ///
    /// Panics under the same width conditions as
    /// [`LinkCodecState::encode_step`], or if the run mixes widths.
    pub fn encode_run<'a>(
        &mut self,
        plains: impl IntoIterator<Item = &'a PayloadBits>,
    ) -> Option<WireRun> {
        let mut plains = plains.into_iter();
        let first = plains.next()?;
        match self.kind {
            CodecKind::Unencoded => {
                // Wires are the plains; the steady state is pure
                // XOR+popcount over borrowed images, no copies at all.
                self.expect_data_width(first);
                let mut intra = 0u64;
                let mut last = first;
                let mut count = 1u64;
                for plain in plains {
                    self.expect_data_width(plain);
                    intra += u64::from(plain.transitions_to(last));
                    last = plain;
                    count += 1;
                }
                Some(WireRun {
                    first: *first,
                    last: *last,
                    intra,
                    count,
                })
            }
            CodecKind::DeltaXor => {
                // `prev = None` is indistinguishable from `prev = zero`
                // for delta-XOR (`x ⊕ 0 = x`), which closes the telescope:
                // every wire-boundary XOR is a second difference of the
                // plain stream extended by the lane memory. The sliding
                // pair (x_{k-2}, x_{k-1}) is held by reference — the
                // steady state copies nothing.
                self.expect_data_width(first);
                let p0 = self
                    .prev
                    .unwrap_or_else(|| PayloadBits::zero(self.data_width));
                let first_wire = first.xor(&p0);
                let mut intra = 0u64;
                let mut count = 1u64;
                let (mut back2, mut back1): (&PayloadBits, &PayloadBits) = (&p0, first);
                for plain in plains {
                    self.expect_data_width(plain);
                    intra += u64::from(plain.transitions_to(back2));
                    (back2, back1) = (back1, plain);
                    count += 1;
                }
                self.prev = Some(*back1);
                Some(WireRun {
                    first: first_wire,
                    last: back1.xor(back2),
                    intra,
                    count,
                })
            }
            CodecKind::BusInvert => {
                let wire_of = |wire_data: &PayloadBits, invert: bool| {
                    let mut wire = wire_data.resized(self.data_width + 1);
                    wire.set_field(self.data_width, 1, u64::from(invert));
                    wire
                };
                // Seed step: against no memory the first flit travels
                // uninverted; against memory it takes the normal decision.
                let first_data = self.data_image(first);
                let (wire_data, mut invert) = match &self.prev {
                    None => (first_data, false),
                    Some(prev) => {
                        let t = first_data.transitions_to(prev);
                        if self.data_width - t < t {
                            (first_data.invert(), true)
                        } else {
                            (first_data, false)
                        }
                    }
                };
                let first_wire = wire_of(&wire_data, invert);
                let mut intra = 0u64;
                let mut count = 1u64;
                // The previous wire-data image is a borrow of the input
                // flit whenever the flit travels uninverted at data
                // width; `owned` holds it only when an inversion (or a
                // link-width narrowing) materialized a new image.
                let mut owned = wire_data;
                let mut prev_input: Option<&PayloadBits> = None;
                for plain in plains {
                    let prev = prev_input.unwrap_or(&owned);
                    // `t` doubles as the data-wire transition count: the
                    // codec transmits the side that toggles fewer wires,
                    // so the intra sum is `min`-selected from the same
                    // XOR+popcount that decides the inversion.
                    if plain.width() == self.data_width {
                        let t = plain.transitions_to(prev);
                        let next_invert = self.data_width - t < t;
                        intra += u64::from(if next_invert { self.data_width - t } else { t })
                            + u64::from(next_invert != invert);
                        if next_invert {
                            owned = plain.invert();
                            prev_input = None;
                        } else {
                            prev_input = Some(plain);
                        }
                        invert = next_invert;
                    } else {
                        let data = self.data_image(plain);
                        let t = data.transitions_to(prev);
                        let next_invert = self.data_width - t < t;
                        intra += u64::from(if next_invert { self.data_width - t } else { t })
                            + u64::from(next_invert != invert);
                        owned = if next_invert { data.invert() } else { data };
                        prev_input = None;
                        invert = next_invert;
                    }
                    count += 1;
                }
                let last_data = match prev_input {
                    Some(p) => *p,
                    None => owned,
                };
                let last = wire_of(&last_data, invert);
                self.prev = Some(last_data);
                Some(WireRun {
                    first: first_wire,
                    last,
                    intra,
                    count,
                })
            }
        }
    }

    /// Width check for the equal-width run kernels (unencoded and
    /// delta-XOR have `wire_width == data_width`, so [`Self::data_image`]
    /// is the identity and the kernels can borrow the inputs directly).
    fn expect_data_width(&self, plain: &PayloadBits) {
        assert_eq!(
            plain.width(),
            self.data_width,
            "plain image width {} does not match the {} data wires",
            plain.width(),
            self.data_width
        );
    }

    /// The intra-run wire transition sum [`LinkCodecState::encode_run`]
    /// would report for `plains` from the current state, without
    /// advancing it — the pure counting form of the bulk kernel (what a
    /// BT-only evaluation of a run costs: one XOR+popcount per flit, no
    /// materialized wires at all).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`LinkCodecState::encode_run`].
    #[must_use]
    pub fn transitions_of_run<'a>(&self, plains: impl IntoIterator<Item = &'a PayloadBits>) -> u64 {
        let mut probe = self.clone();
        probe.encode_run(plains).map_or(0, |run| run.intra)
    }

    /// Advances the receive side one flit: decodes a `wire_width` image
    /// against the mirrored wire memory and returns the `data_width`
    /// plain image.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::WireWidth`] if `wire` is not `wire_width`
    /// bits wide.
    pub fn decode_step(&mut self, wire: &PayloadBits) -> Result<PayloadBits, CodecError> {
        if wire.width() != self.wire_width() {
            return Err(CodecError::WireWidth {
                got: wire.width(),
                want: self.wire_width(),
            });
        }
        Ok(match self.kind {
            CodecKind::Unencoded => *wire,
            CodecKind::DeltaXor => {
                let plain = match &self.prev {
                    None => *wire,
                    Some(prev) => wire.xor(prev),
                };
                self.prev = Some(plain);
                plain
            }
            CodecKind::BusInvert => {
                let wire_data = wire.resized(self.data_width);
                let invert = wire.bit(self.data_width);
                self.prev = Some(wire_data);
                if invert {
                    wire_data.invert()
                } else {
                    wire_data
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_stream(n: usize, width: u32, seed: u64) -> Vec<PayloadBits> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut p = PayloadBits::zero(width);
                for w in 0..width.div_ceil(64) {
                    let len = 64.min(width - w * 64);
                    p.set_field(w * 64, len, rng.gen());
                }
                p
            })
            .collect()
    }

    #[test]
    fn all_codecs_round_trip() {
        for kind in CodecKind::ALL {
            for (n, width, seed) in [(1usize, 8u32, 1u64), (7, 64, 2), (40, 128, 3), (13, 96, 4)] {
                let stream = random_stream(n, width, seed);
                let wire = kind.encode_stream(&stream);
                assert_eq!(wire.len(), stream.len());
                for w in &wire {
                    assert_eq!(w.width(), width + kind.extra_wires());
                }
                let back = kind.decode_stream(&wire, width).unwrap();
                assert_eq!(back, stream, "{kind} n={n} w={width}");
            }
        }
    }

    #[test]
    fn empty_streams_encode_and_decode() {
        for kind in CodecKind::ALL {
            assert!(kind.encode_stream(&[]).is_empty());
            assert!(kind.decode_stream(&[], 64).unwrap().is_empty());
        }
    }

    #[test]
    fn decode_rejects_wrong_wire_width() {
        let stream = random_stream(4, 64, 9);
        for kind in CodecKind::ALL {
            let wire = kind.encode_stream(&stream);
            let err = kind.decode_stream(&wire, 32).unwrap_err();
            assert!(matches!(err, CodecError::WireWidth { .. }));
            assert!(err.to_string().contains("codec expects"));
        }
    }

    #[test]
    fn state_steps_match_the_stream_functions() {
        // encode_stream/decode_stream are exactly a fresh state folded
        // over the packet — the per-packet scope in state-object form.
        for kind in CodecKind::ALL {
            let stream = random_stream(23, 96, 17);
            let mut tx = kind.seed_state(96);
            let stepped: Vec<PayloadBits> = stream.iter().map(|p| tx.encode_step(p)).collect();
            assert_eq!(stepped, kind.encode_stream(&stream), "{kind}");
            let mut rx = kind.seed_state(96);
            let decoded: Vec<PayloadBits> =
                stepped.iter().map(|w| rx.decode_step(w).unwrap()).collect();
            assert_eq!(decoded, stream, "{kind}");
        }
    }

    #[test]
    fn persistent_state_survives_packet_boundaries() {
        // A tx/rx pair fed multiple packets without reset stays lossless
        // (the per-link scope), and reset() restores per-packet behavior.
        for kind in CodecKind::ALL {
            let packets: Vec<Vec<PayloadBits>> = (0..5)
                .map(|i| random_stream(4 + i, 64, 100 + i as u64))
                .collect();
            let mut tx = kind.seed_state(64);
            let mut rx = kind.seed_state(64);
            for packet in &packets {
                for plain in packet {
                    let wire = tx.encode_step(plain);
                    assert_eq!(&rx.decode_step(&wire).unwrap(), plain, "{kind}");
                }
            }
            assert_eq!(tx.is_seeded(), kind.is_stateful());
            // Resetting both ends at every boundary reproduces the
            // per-packet stream encode exactly.
            let mut tx = kind.seed_state(64);
            for packet in &packets {
                tx.reset();
                let stepped: Vec<PayloadBits> = packet.iter().map(|p| tx.encode_step(p)).collect();
                assert_eq!(stepped, kind.encode_stream(packet), "{kind}");
            }
        }
    }

    #[test]
    fn encode_run_matches_step_loop() {
        // The bulk kernel must be indistinguishable from flit-by-flit
        // encode_step: same wire boundaries, same intra transition sum,
        // same end-of-run state — from a fresh lane and mid-stream.
        for kind in CodecKind::ALL {
            for (n, width, seed) in [(1usize, 8u32, 1u64), (2, 64, 2), (9, 96, 3), (32, 128, 4)] {
                for warmup in [0usize, 3] {
                    let history = random_stream(warmup, width, seed + 100);
                    let stream = random_stream(n, width, seed);
                    let mut stepped = kind.seed_state(width);
                    for p in &history {
                        let _ = stepped.encode_step(p);
                    }
                    let mut bulk = stepped.clone();
                    let wires: Vec<PayloadBits> =
                        stream.iter().map(|p| stepped.encode_step(p)).collect();
                    let intra: u64 = wires
                        .windows(2)
                        .map(|w| u64::from(w[1].transitions_to(&w[0])))
                        .sum();
                    assert_eq!(bulk.transitions_of_run(&stream), intra, "{kind}");
                    let run = bulk.encode_run(&stream).unwrap();
                    assert_eq!(run.first, wires[0], "{kind} n={n} warmup={warmup}");
                    assert_eq!(run.last, *wires.last().unwrap(), "{kind}");
                    assert_eq!(run.intra, intra, "{kind} n={n} warmup={warmup}");
                    assert_eq!(run.count, n as u64);
                    assert_eq!(bulk, stepped, "{kind}: end-of-run state diverges");
                }
            }
        }
    }

    #[test]
    fn encode_run_empty_is_identity() {
        for kind in CodecKind::ALL {
            let mut state = kind.seed_state(64);
            let _ = state.encode_step(&random_stream(1, 64, 7)[0]);
            let before = state.clone();
            assert!(state.encode_run(std::iter::empty()).is_none());
            assert_eq!(state, before);
            assert_eq!(state.transitions_of_run(std::iter::empty()), 0);
        }
    }

    #[test]
    fn encode_accepts_link_aligned_plain_images() {
        // The NoC re-aligns narrower payload images onto the full link
        // width; the state must accept the wire-width image with zeroed
        // side-channel wires and produce the identical wire.
        let stream = random_stream(9, 64, 33);
        let mut narrow = CodecKind::BusInvert.seed_state(64);
        let mut wide = CodecKind::BusInvert.seed_state(64);
        for plain in &stream {
            let aligned = plain.resized(65);
            assert_eq!(narrow.encode_step(plain), wide.encode_step(&aligned));
        }
    }

    #[test]
    fn bus_invert_wire_collapses_alternating_stream() {
        // Alternating all-zero / all-one flits: the coded data wires never
        // toggle, only the invert line does.
        let stream: Vec<PayloadBits> = (0..10)
            .map(|i| {
                let p = PayloadBits::zero(64);
                if i % 2 == 0 {
                    p
                } else {
                    p.invert()
                }
            })
            .collect();
        let wire = CodecKind::BusInvert.encode_stream(&stream);
        let transitions: u64 = wire
            .windows(2)
            .map(|w| u64::from(w[1].transitions_to(&w[0])))
            .sum();
        assert_eq!(transitions, 9, "one invert-line toggle per boundary");
        assert_eq!(
            CodecKind::BusInvert.decode_stream(&wire, 64).unwrap(),
            stream
        );
    }

    #[test]
    fn kind_parses_and_prints() {
        for kind in CodecKind::ALL {
            assert_eq!(kind.label().parse::<CodecKind>(), Ok(kind));
        }
        assert_eq!("bi".parse::<CodecKind>(), Ok(CodecKind::BusInvert));
        assert_eq!("xor".parse::<CodecKind>(), Ok(CodecKind::DeltaXor));
        assert_eq!("unencoded".parse::<CodecKind>(), Ok(CodecKind::Unencoded));
        assert!("hamming".parse::<CodecKind>().is_err());
        assert_eq!(CodecKind::default(), CodecKind::Unencoded);
        assert_eq!(CodecKind::BusInvert.to_string(), "bus-invert");
    }

    #[test]
    fn scope_parses_and_prints() {
        for scope in CodecScope::ALL {
            assert_eq!(scope.label().parse::<CodecScope>(), Ok(scope));
        }
        assert_eq!("link".parse::<CodecScope>(), Ok(CodecScope::PerLink));
        assert_eq!("packet".parse::<CodecScope>(), Ok(CodecScope::PerPacket));
        assert!("per-flit".parse::<CodecScope>().is_err());
        assert_eq!(CodecScope::default(), CodecScope::PerPacket);
        assert_eq!(CodecScope::PerLink.to_string(), "per-link");
    }
}
