//! Related-work baselines for ablation: bus-invert and delta encoding.
//!
//! These are **not** part of the paper's method — the paper explicitly
//! positions ordering as *not* a bus-encoding scheme ("our method is not a
//! bus-encoding method and operates without additional links", Sec. II).
//! They are implemented here so the benchmark harness can put the ordering
//! results side by side with the classic encodings the related work section
//! cites:
//!
//! * **Bus-invert coding** (Stan & Burleson [14]): if more than half the
//!   wires would toggle, transmit the inverted flit plus one extra invert
//!   line. Guarantees ≤ w/2 transitions per flit at the cost of one line.
//! * **Delta encoding** (after Sarman et al. [11]): transmit the XOR of
//!   consecutive flits, which concentrates `'1'` bits when the stream is
//!   correlated. (Decoding needs the running state; overhead-free on wires.)

use crate::codec::CodecKind;
use btr_bits::payload::PayloadBits;
use serde::{Deserialize, Serialize};

/// Result of encoding a flit stream with a link coding scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncodedStream {
    /// Transitions on the data wires after encoding.
    pub transitions: u64,
    /// Transitions contributed by extra control wires (e.g. the invert
    /// line), kept separate so the comparison can be made with and without
    /// the extra-line cost.
    pub control_transitions: u64,
    /// Number of flits in the stream.
    pub flits: u64,
}

impl EncodedStream {
    /// Total transitions including control wires.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.transitions + self.control_transitions
    }
}

/// Counts transitions of the raw (unencoded) stream, as a reference.
#[must_use]
pub fn unencoded(stream: &[PayloadBits]) -> EncodedStream {
    let transitions = stream
        .windows(2)
        .map(|w| u64::from(w[1].transitions_to(&w[0])))
        .sum();
    EncodedStream {
        transitions,
        control_transitions: 0,
        flits: stream.len() as u64,
    }
}

/// Bus-invert coding: per flit, send it inverted if that halves the toggles.
///
/// Returns the transition counts; the invert line's own toggles are
/// accounted in `control_transitions`.
#[must_use]
pub fn bus_invert(stream: &[PayloadBits]) -> EncodedStream {
    let mut transitions = 0u64;
    let mut control_transitions = 0u64;
    let mut prev: Option<(PayloadBits, bool)> = None;

    for (wire, invert) in bus_invert_wire_stream(stream) {
        if let Some((prev_wire, prev_invert)) = &prev {
            transitions += u64::from(wire.transitions_to(prev_wire));
            control_transitions += u64::from(invert != *prev_invert);
        }
        prev = Some((wire, invert));
    }

    EncodedStream {
        transitions,
        control_transitions,
        flits: stream.len() as u64,
    }
}

/// Produces the bus-invert wire stream: each element is the data image
/// actually driven onto the wires plus the invert-line value transmitted
/// alongside it. The first flit is always sent direct; after that a flit
/// is inverted exactly when inversion strictly reduces the data-wire
/// toggles relative to the previous *wire* image.
///
/// Thin wrapper over [`crate::codec::LinkCodecState`] — the one bus-invert
/// implementation, shared with the per-link coded-wire observation in
/// `btr_noc::stats::LinkSlab`.
#[must_use]
pub fn bus_invert_wire_stream(stream: &[PayloadBits]) -> Vec<(PayloadBits, bool)> {
    let Some(first) = stream.first() else {
        return Vec::new();
    };
    let data_width = first.width();
    let mut state = CodecKind::BusInvert.seed_state(data_width);
    stream
        .iter()
        .map(|flit| {
            let wire = state.encode_step(flit);
            (wire.resized(data_width), wire.bit(data_width))
        })
        .collect()
}

/// Decodes a bus-invert wire stream back to the plain flits (inverse of
/// [`bus_invert_wire_stream`]): each flit whose invert line is set is
/// inverted back, independently of its neighbors.
#[must_use]
pub fn bus_invert_decode(wire_stream: &[(PayloadBits, bool)]) -> Vec<PayloadBits> {
    let Some((first, _)) = wire_stream.first() else {
        return Vec::new();
    };
    let data_width = first.width();
    let mut state = CodecKind::BusInvert.seed_state(data_width);
    wire_stream
        .iter()
        .map(|(data, invert)| {
            let mut wire = data.resized(data_width + 1);
            wire.set_field(data_width, 1, u64::from(*invert));
            state
                .decode_step(&wire)
                .expect("wire rebuilt at the state's wire width")
        })
        .collect()
}

/// Delta (XOR) encoding: wire image is `flit XOR previous_flit`.
///
/// The first flit is sent as-is. Decoding XORs the running state back.
#[must_use]
pub fn delta_xor(stream: &[PayloadBits]) -> EncodedStream {
    let mut transitions = 0u64;
    if let Some(first) = stream.first() {
        // Single pass over the shared LinkCodecState implementation: no
        // materialized wire stream, transitions accumulated inline.
        let mut state = CodecKind::DeltaXor.seed_state(first.width());
        let mut prev_wire: Option<PayloadBits> = None;
        for flit in stream {
            let wire = state.encode_step(flit);
            if let Some(pw) = &prev_wire {
                transitions += u64::from(wire.transitions_to(pw));
            }
            prev_wire = Some(wire);
        }
    }
    EncodedStream {
        transitions,
        control_transitions: 0,
        flits: stream.len() as u64,
    }
}

/// Decodes a delta-XOR wire stream back to the plain flits, verifying the
/// scheme is lossless (thin wrapper over [`crate::codec::LinkCodecState`]).
#[must_use]
pub fn delta_xor_decode(wire_stream: &[PayloadBits]) -> Vec<PayloadBits> {
    let Some(first) = wire_stream.first() else {
        return Vec::new();
    };
    let mut state = CodecKind::DeltaXor.seed_state(first.width());
    wire_stream
        .iter()
        .map(|wire| {
            state
                .decode_step(wire)
                .expect("delta-XOR wire width equals the data width")
        })
        .collect()
}

/// Produces the delta-XOR wire stream (the images actually transmitted;
/// thin wrapper over [`crate::codec::LinkCodecState`]).
#[must_use]
pub fn delta_xor_wire_stream(stream: &[PayloadBits]) -> Vec<PayloadBits> {
    CodecKind::DeltaXor.encode_stream(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn payload(width: u32, bits: u64) -> PayloadBits {
        let mut p = PayloadBits::zero(width);
        p.set_field(0, 64.min(width), bits);
        p
    }

    fn random_stream(n: usize, width: u32, seed: u64) -> Vec<PayloadBits> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut p = PayloadBits::zero(width);
                for w in 0..width.div_ceil(64) {
                    let len = 64.min(width - w * 64);
                    p.set_field(w * 64, len, rng.gen());
                }
                p
            })
            .collect()
    }

    #[test]
    fn bus_invert_never_worse_than_half_width_per_flit() {
        let stream = random_stream(200, 64, 11);
        let enc = bus_invert(&stream);
        // Worst case per boundary: width/2 data toggles + 1 invert toggle.
        let boundaries = (stream.len() - 1) as u64;
        assert!(enc.transitions <= boundaries * 32);
        assert!(enc.control_transitions <= boundaries);
    }

    #[test]
    fn bus_invert_beats_unencoded_on_adversarial_stream() {
        // Alternating all-zero / all-one flits: unencoded toggles every
        // wire; bus-invert toggles only the invert line.
        let stream: Vec<PayloadBits> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    payload(64, 0)
                } else {
                    payload(64, u64::MAX)
                }
            })
            .collect();
        let raw = unencoded(&stream);
        let enc = bus_invert(&stream);
        assert_eq!(raw.transitions, 9 * 64);
        assert_eq!(enc.transitions, 0);
        assert_eq!(enc.control_transitions, 9);
    }

    #[test]
    fn bus_invert_is_lossless() {
        let stream = random_stream(80, 96, 3);
        let wire = bus_invert_wire_stream(&stream);
        assert_eq!(bus_invert_decode(&wire), stream);
        // The stats function and the wire stream agree on what toggles.
        let enc = bus_invert(&stream);
        let data: u64 = wire
            .windows(2)
            .map(|w| u64::from(w[1].0.transitions_to(&w[0].0)))
            .sum();
        let control: u64 = wire.windows(2).map(|w| u64::from(w[1].1 != w[0].1)).sum();
        assert_eq!(enc.transitions, data);
        assert_eq!(enc.control_transitions, control);
    }

    #[test]
    fn delta_xor_is_lossless() {
        let stream = random_stream(50, 128, 5);
        let wire = delta_xor_wire_stream(&stream);
        let decoded = delta_xor_decode(&wire);
        assert_eq!(decoded, stream);
    }

    #[test]
    fn delta_xor_wins_on_slowly_varying_stream() {
        // Counter-like stream: consecutive flits differ in few bits, so the
        // XOR images are near-zero and wire transitions collapse.
        let stream: Vec<PayloadBits> = (0..100u64).map(|i| payload(64, i)).collect();
        let raw = unencoded(&stream);
        let enc = delta_xor(&stream);
        assert!(
            enc.transitions < raw.transitions,
            "delta {} vs raw {}",
            enc.transitions,
            raw.transitions
        );
    }

    #[test]
    fn unencoded_matches_manual_count() {
        let stream = vec![payload(8, 0b0), payload(8, 0b1111), payload(8, 0b1010)];
        let raw = unencoded(&stream);
        assert_eq!(raw.transitions, 4 + 2);
        assert_eq!(raw.total(), 6);
        assert_eq!(raw.flits, 3);
    }

    #[test]
    fn empty_and_singleton_streams() {
        assert_eq!(unencoded(&[]).transitions, 0);
        assert_eq!(bus_invert(&[]).total(), 0);
        assert_eq!(delta_xor(&[payload(8, 3)]).transitions, 0);
        assert_eq!(delta_xor_decode(&[]).len(), 0);
    }
}
