//! Half-half flitization (Fig. 2) and ordered packet construction (Fig. 4).
//!
//! A [`crate::task::NeuronTask`] is serialized into payload flits where each
//! flit's **left half carries inputs** and **right half carries weights**
//! (then the bias, then zero padding). This keeps weights aligned on the
//! same link wires across consecutive flits so that weight-only ordering
//! (O1) still produces monotone popcount columns in the weight half.
//!
//! The ordering methods permute values **only among the slots occupied in
//! the baseline layout** — padded zeros and the bias stay in place ("we do
//! not order the padded zeros", Sec. IV-A) — so O0/O1/O2 packets are
//! identical except for the transmission order of the same values.

use crate::ordering::{
    placement_by_original_index_into, round_robin_assignment, round_robin_assignment_into,
    OrderingMethod, TieBreak,
};
use crate::task::{NeuronTask, RecoveredTask};
use crate::transport::TransportScratch;
use btr_bits::payload::{PayloadBits, MAX_WIDTH_BITS};
use btr_bits::word::DataWord;
use serde::{Deserialize, Serialize};

/// One slot of a flit: which value class occupies a word lane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Slot<W> {
    /// An input (activation) operand.
    Input(W),
    /// A weight operand.
    Weight(W),
    /// The bias operand.
    Bias(W),
    /// Zero padding (kernel size did not fill the flit).
    Pad,
}

impl<W: DataWord> Slot<W> {
    /// The raw bits this slot drives onto its word lane.
    #[must_use]
    pub fn bits_u64(&self) -> u64 {
        match self {
            Slot::Input(w) | Slot::Weight(w) | Slot::Bias(w) => w.bits_u64(),
            Slot::Pad => 0,
        }
    }
}

/// One payload flit: `values_per_flit` word lanes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlitRow<W> {
    slots: Vec<Slot<W>>,
}

impl<W: DataWord> FlitRow<W> {
    fn padded(values_per_flit: usize) -> Self {
        Self {
            slots: vec![Slot::Pad; values_per_flit],
        }
    }

    /// The slots of this flit (length = values per flit).
    #[must_use]
    pub fn slots(&self) -> &[Slot<W>] {
        &self.slots
    }

    /// Renders the flit as its link image: slot `s` occupies bits
    /// `[s·WIDTH, (s+1)·WIDTH)`, inputs in the low-offset (left) half.
    #[must_use]
    pub fn payload_bits(&self) -> PayloadBits {
        let width = W::WIDTH * self.slots.len() as u32;
        let mut p = PayloadBits::zero(width);
        for (s, slot) in self.slots.iter().enumerate() {
            p.set_field(s as u32 * W::WIDTH, W::WIDTH, slot.bits_u64());
        }
        p
    }
}

/// Errors from [`order_task`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlitizeError {
    /// `values_per_flit` must be an even number ≥ 2 for half-half layout.
    OddValuesPerFlit(usize),
    /// The resulting link width would exceed [`MAX_WIDTH_BITS`].
    LinkTooWide {
        /// Requested link width in bits.
        requested: u32,
    },
    /// More value ranks than the u16 pair index can address.
    TooManyValues(usize),
}

impl std::fmt::Display for FlitizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlitizeError::OddValuesPerFlit(v) => {
                write!(
                    f,
                    "values per flit must be even and >= 2 for half-half layout, got {v}"
                )
            }
            FlitizeError::LinkTooWide { requested } => {
                write!(
                    f,
                    "link width {requested} exceeds the supported maximum {MAX_WIDTH_BITS}"
                )
            }
            FlitizeError::TooManyValues(n) => {
                write!(f, "task with {n} pairs exceeds the u16 pair-index range")
            }
        }
    }
}

impl std::error::Error for FlitizeError {}

/// Errors from [`OrderedTask::recover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// A slot expected to hold a value class held something else.
    SlotMismatch {
        /// Flit index of the offending slot.
        flit: usize,
        /// Slot index within the flit.
        slot: usize,
    },
    /// Separated-ordering packet arrived without its pair index.
    MissingPairIndex,
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::SlotMismatch { flit, slot } => {
                write!(f, "unexpected slot contents at flit {flit}, slot {slot}")
            }
            RecoverError::MissingPairIndex => {
                write!(
                    f,
                    "separated-ordering packet is missing its pair index side channel"
                )
            }
        }
    }
}

impl std::error::Error for RecoverError {}

/// Occupancy of the half-half layout for a task of `n` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HalfHalfLayout {
    /// Word lanes per flit (inputs use the first half, weights the second).
    pub values_per_flit: usize,
    /// Number of payload flits in the packet.
    pub num_flits: usize,
    /// Occupied input slots per flit (row-major split of `n`).
    pub input_occupancy: Vec<usize>,
    /// Occupied weight slots per flit, excluding the bias.
    pub weight_occupancy: Vec<usize>,
    /// `(flit, slot-within-weight-half)` of the bias.
    pub bias_position: (usize, usize),
}

/// Computes the half-half occupancy for `n` input/weight pairs.
///
/// # Panics
///
/// Panics if `values_per_flit` is odd or `< 2`, or `n == 0` (checked by the
/// public entry points).
#[must_use]
pub fn half_half_layout(n: usize, values_per_flit: usize) -> HalfHalfLayout {
    assert!(values_per_flit >= 2 && values_per_flit.is_multiple_of(2));
    assert!(n > 0);
    let half = values_per_flit / 2;
    // The weight half also carries the bias: n + 1 values.
    let num_flits = (n + 1).div_ceil(half).max(n.div_ceil(half));
    let row_major = |count: usize| -> Vec<usize> {
        (0..num_flits)
            .map(|f| count.saturating_sub(f * half).min(half))
            .collect()
    };
    HalfHalfLayout {
        values_per_flit,
        num_flits,
        input_occupancy: row_major(n),
        weight_occupancy: row_major(n),
        bias_position: (n / half, n % half),
    }
}

/// A task serialized into ordered flits, ready for transmission.
///
/// Produced by [`order_task`]; consumed by the NoC layer (via
/// [`OrderedTask::payload_flits`]) and by the receiving PE (via
/// [`OrderedTask::recover`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderedTask<W> {
    method: OrderingMethod,
    values_per_flit: usize,
    num_pairs: usize,
    flits: Vec<FlitRow<W>>,
    /// For separated-ordering: `pair_index[input_rank] = weight_rank` of the
    /// paired weight — the paper's "minimal-bit-width index" side channel.
    pair_index: Option<Vec<u16>>,
}

impl<W: DataWord> OrderedTask<W> {
    /// The ordering method this packet was built with.
    #[must_use]
    pub fn method(&self) -> OrderingMethod {
        self.method
    }

    /// Number of (input, weight) pairs carried.
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.num_pairs
    }

    /// Word lanes per flit.
    #[must_use]
    pub fn values_per_flit(&self) -> usize {
        self.values_per_flit
    }

    /// The payload flits in transmission order.
    #[must_use]
    pub fn flits(&self) -> &[FlitRow<W>] {
        &self.flits
    }

    /// Link images of the payload flits, in transmission order.
    #[must_use]
    pub fn payload_flits(&self) -> Vec<PayloadBits> {
        self.flits.iter().map(FlitRow::payload_bits).collect()
    }

    /// The separated-ordering pair index, if any.
    #[must_use]
    pub fn pair_index(&self) -> Option<&[u16]> {
        self.pair_index.as_deref()
    }

    /// Side-channel overhead of the separated-ordering index in bits:
    /// `N · ceil(log2 N)` (zero for O0/O1).
    #[must_use]
    pub fn index_overhead_bits(&self) -> u64 {
        index_overhead_bits_for(self.method, self.num_pairs)
    }

    /// Reconstructs the paired operands at the receiver, exercising the
    /// paper's recovery paths: slot pairing for O0/O1 ("no decoding
    /// process"), index lookup for O2.
    ///
    /// # Errors
    ///
    /// Returns [`RecoverError`] if the layout is inconsistent (corrupted
    /// packet) or a separated packet lost its index.
    pub fn recover(&self) -> Result<RecoveredTask<W>, RecoverError> {
        let layout = half_half_layout(self.num_pairs, self.values_per_flit);
        let half = self.values_per_flit / 2;

        let assign: Vec<(usize, usize)> = match self.method {
            OrderingMethod::Baseline => (0..self.num_pairs).map(|l| (l / half, l % half)).collect(),
            OrderingMethod::Affiliated | OrderingMethod::Separated => {
                round_robin_assignment(&layout.weight_occupancy)
            }
        };

        let input_at = |rank: usize| -> Result<W, RecoverError> {
            let (f, s) = assign[rank];
            match self.flits[f].slots()[s] {
                Slot::Input(w) => Ok(w),
                _ => Err(RecoverError::SlotMismatch { flit: f, slot: s }),
            }
        };
        let weight_at = |rank: usize| -> Result<W, RecoverError> {
            let (f, s) = assign[rank];
            match self.flits[f].slots()[half + s] {
                Slot::Weight(w) => Ok(w),
                _ => Err(RecoverError::SlotMismatch {
                    flit: f,
                    slot: half + s,
                }),
            }
        };

        let mut pairs = Vec::with_capacity(self.num_pairs);
        match self.method {
            OrderingMethod::Baseline | OrderingMethod::Affiliated => {
                for rank in 0..self.num_pairs {
                    pairs.push((input_at(rank)?, weight_at(rank)?));
                }
            }
            OrderingMethod::Separated => {
                let index = self
                    .pair_index
                    .as_ref()
                    .ok_or(RecoverError::MissingPairIndex)?;
                for (rank, &partner) in index.iter().enumerate() {
                    pairs.push((input_at(rank)?, weight_at(partner as usize)?));
                }
            }
        }

        let (bf, bs) = layout.bias_position;
        let bias = match self.flits[bf].slots()[half + bs] {
            Slot::Bias(w) => w,
            _ => {
                return Err(RecoverError::SlotMismatch {
                    flit: bf,
                    slot: half + bs,
                })
            }
        };
        Ok(RecoveredTask { pairs, bias })
    }
}

impl<W: DataWord> OrderedTask<W> {
    /// Reconstructs an `OrderedTask` from the raw link images a receiver
    /// collected, given the packet metadata a head flit carries (`method`,
    /// `num_pairs`, `values_per_flit`) and, for separated-ordering, the
    /// index side channel.
    ///
    /// This is the receiving PE's wire-level decode path: the occupied slot
    /// structure is fully determined by `num_pairs` and `values_per_flit`,
    /// so each lane's bit field can be re-typed without ambiguity.
    ///
    /// # Errors
    ///
    /// Returns [`FlitizeError`] for invalid geometry and
    /// [`RecoverError::MissingPairIndex`] (wrapped in `Ok(Err(..))`-free
    /// form: the error type is `FlitizeError`) if the flit count does not
    /// match the expected layout.
    pub fn from_payload_flits(
        method: OrderingMethod,
        num_pairs: usize,
        values_per_flit: usize,
        pair_index: Option<Vec<u16>>,
        flits: &[PayloadBits],
    ) -> Result<Self, FlitizeError> {
        if values_per_flit < 2 || !values_per_flit.is_multiple_of(2) {
            return Err(FlitizeError::OddValuesPerFlit(values_per_flit));
        }
        if num_pairs > usize::from(u16::MAX) || num_pairs == 0 {
            return Err(FlitizeError::TooManyValues(num_pairs));
        }
        let layout = half_half_layout(num_pairs, values_per_flit);
        if flits.len() != layout.num_flits {
            return Err(FlitizeError::TooManyValues(flits.len()));
        }
        let half = values_per_flit / 2;
        let mut rows: Vec<FlitRow<W>> = (0..layout.num_flits)
            .map(|_| FlitRow::padded(values_per_flit))
            .collect();
        let lane = |p: &PayloadBits, s: usize| -> W {
            W::from_bits_u64(p.field(s as u32 * W::WIDTH, W::WIDTH))
        };
        for (f, p) in flits.iter().enumerate() {
            for s in 0..layout.input_occupancy[f] {
                rows[f].slots[s] = Slot::Input(lane(p, s));
            }
            for s in 0..layout.weight_occupancy[f] {
                rows[f].slots[half + s] = Slot::Weight(lane(p, half + s));
            }
        }
        let (bf, bs) = layout.bias_position;
        rows[bf].slots[half + bs] = Slot::Bias(lane(&flits[bf], half + bs));
        Ok(Self {
            method,
            values_per_flit,
            num_pairs,
            flits: rows,
            pair_index,
        })
    }
}

/// Serializes a task into ordered half-half flits.
///
/// * `Baseline` (O0): natural row-major order.
/// * `Affiliated` (O1): *(weight, input)* pairs placed by descending weight
///   popcount, round-robin across flits (Fig. 3a).
/// * `Separated` (O2): weights and inputs placed independently by their own
///   popcounts (Fig. 3b); the returned packet carries the re-pairing index.
///
/// # Errors
///
/// Returns [`FlitizeError`] if `values_per_flit` is odd/too small, the link
/// would be wider than [`MAX_WIDTH_BITS`], or the task has more pairs than
/// the u16 index can address.
pub fn order_task<W: DataWord>(
    task: &NeuronTask<W>,
    method: OrderingMethod,
    values_per_flit: usize,
) -> Result<OrderedTask<W>, FlitizeError> {
    order_task_with(task, method, values_per_flit, TieBreak::Stable)
}

/// [`order_task`] with an explicit popcount-tie rule (see
/// [`TieBreak`]; `Stable` is the paper's popcount-only comparator).
///
/// # Errors
///
/// Same conditions as [`order_task`].
pub fn order_task_with<W: DataWord>(
    task: &NeuronTask<W>,
    method: OrderingMethod,
    values_per_flit: usize,
    tiebreak: TieBreak,
) -> Result<OrderedTask<W>, FlitizeError> {
    order_task_cached(
        task,
        method,
        values_per_flit,
        tiebreak,
        None,
        &mut TransportScratch::default(),
    )
}

/// [`order_task_with`] with reusable scratch buffers and an optional
/// precomputed weight permutation — the accelerator's hot encode path.
///
/// `weight_perm`, when given, must equal
/// `tiebreak.descending_order(task.weights())`; the driver caches it per
/// weight kernel so a layer's weights are sorted once, not once per task
/// (the kernel is shared by every output pixel and every batch element).
/// `scratch` hosts the permutation/assignment buffers so repeated encodes
/// do not allocate. The produced packet is bit-identical to
/// [`order_task_with`].
///
/// # Errors
///
/// Same conditions as [`order_task`].
pub fn order_task_cached<W: DataWord>(
    task: &NeuronTask<W>,
    method: OrderingMethod,
    values_per_flit: usize,
    tiebreak: TieBreak,
    weight_perm: Option<&[usize]>,
    scratch: &mut TransportScratch,
) -> Result<OrderedTask<W>, FlitizeError> {
    if values_per_flit < 2 || !values_per_flit.is_multiple_of(2) {
        return Err(FlitizeError::OddValuesPerFlit(values_per_flit));
    }
    let width = values_per_flit as u32 * W::WIDTH;
    if width > MAX_WIDTH_BITS {
        return Err(FlitizeError::LinkTooWide { requested: width });
    }
    let n = task.len();
    if n > usize::from(u16::MAX) {
        return Err(FlitizeError::TooManyValues(n));
    }

    let layout = half_half_layout(n, values_per_flit);
    let half = values_per_flit / 2;
    let mut flits: Vec<FlitRow<W>> = (0..layout.num_flits)
        .map(|_| FlitRow::padded(values_per_flit))
        .collect();

    // Bias keeps its baseline position in all methods.
    let (bf, bs) = layout.bias_position;
    flits[bf].slots[half + bs] = Slot::Bias(task.bias());

    let TransportScratch {
        keys,
        wperm: wperm_buf,
        iperm,
        assign,
        wdest,
        idest,
        inv_wperm,
        plain_buf: _,
    } = scratch;
    debug_assert!(
        weight_perm.is_none_or(|p| p.len() == n),
        "cached weight permutation does not cover the task"
    );

    let mut pair_index = None;
    match method {
        OrderingMethod::Baseline => {
            for (l, (&input, &weight)) in
                task.inputs().iter().zip(task.weights().iter()).enumerate()
            {
                let (f, s) = (l / half, l % half);
                flits[f].slots[s] = Slot::Input(input);
                flits[f].slots[half + s] = Slot::Weight(weight);
            }
        }
        OrderingMethod::Affiliated => {
            let wperm: &[usize] = match weight_perm {
                Some(p) => p,
                None => {
                    tiebreak.descending_order_into(task.weights(), keys, wperm_buf);
                    wperm_buf
                }
            };
            round_robin_assignment_into(&layout.weight_occupancy, assign);
            for (rank, &orig) in wperm.iter().enumerate() {
                let (f, s) = assign[rank];
                flits[f].slots[half + s] = Slot::Weight(task.weights()[orig]);
                // Input stays affiliated with its weight: same flit, same
                // relative slot in the input half.
                flits[f].slots[s] = Slot::Input(task.inputs()[orig]);
            }
        }
        OrderingMethod::Separated => {
            let wperm: &[usize] = match weight_perm {
                Some(p) => p,
                None => {
                    tiebreak.descending_order_into(task.weights(), keys, wperm_buf);
                    wperm_buf
                }
            };
            tiebreak.descending_order_into(task.inputs(), keys, iperm);
            round_robin_assignment_into(&layout.weight_occupancy, assign);
            placement_by_original_index_into(wperm, assign, wdest);
            for (orig, &(f, s)) in wdest.iter().enumerate() {
                flits[f].slots[half + s] = Slot::Weight(task.weights()[orig]);
            }
            placement_by_original_index_into(iperm, assign, idest);
            for (orig, &(f, s)) in idest.iter().enumerate() {
                flits[f].slots[s] = Slot::Input(task.inputs()[orig]);
            }
            // inverse weight permutation: original index -> weight rank.
            inv_wperm.clear();
            inv_wperm.resize(n, 0);
            for (rank, &orig) in wperm.iter().enumerate() {
                inv_wperm[orig] = rank as u16;
            }
            pair_index = Some(iperm.iter().map(|&orig| inv_wperm[orig]).collect());
        }
    }

    Ok(OrderedTask {
        method,
        values_per_flit,
        num_pairs: n,
        flits,
        pair_index,
    })
}

/// Side-channel overhead of the separated-ordering re-pairing index for a
/// task of `num_pairs` pairs: `N · ceil(log2 N)` bits (zero for O0/O1).
#[must_use]
pub fn index_overhead_bits_for(method: OrderingMethod, num_pairs: usize) -> u64 {
    match method {
        OrderingMethod::Separated => {
            let width = if num_pairs <= 1 {
                0
            } else {
                u64::from(usize::BITS - (num_pairs - 1).leading_zeros())
            };
            num_pairs as u64 * width
        }
        OrderingMethod::Baseline | OrderingMethod::Affiliated => 0,
    }
}

/// Orders and renders a task **directly into link images** — the hot
/// encode path. Produces exactly
/// `order_task_with(task, method, values_per_flit, tiebreak).payload_flits()`
/// (pinned by `tests/transport_parity.rs`) plus the O2 pair index, without
/// materializing the slot-level [`OrderedTask`]: values are written
/// straight into [`PayloadBits`] lanes, padding stays zero.
///
/// `weight_perm` and `scratch` as in [`order_task_cached`].
///
/// # Errors
///
/// Same conditions as [`order_task`].
#[allow(clippy::type_complexity)]
pub fn order_task_images<W: DataWord>(
    task: &NeuronTask<W>,
    method: OrderingMethod,
    values_per_flit: usize,
    tiebreak: TieBreak,
    weight_perm: Option<&[usize]>,
    scratch: &mut TransportScratch,
) -> Result<(Vec<PayloadBits>, Option<Vec<u16>>), FlitizeError> {
    order_images_from_parts(
        task.inputs(),
        task.weights(),
        task.bias(),
        method,
        values_per_flit,
        tiebreak,
        weight_perm,
        scratch,
    )
}

/// [`order_task_images`] over bare operand slices, so hot callers (the
/// accelerator's encode stage) can feed a reused input buffer and the
/// layer's shared kernel without materializing a [`NeuronTask`] per task.
///
/// # Errors
///
/// Same conditions as [`order_task`].
///
/// # Panics
///
/// Panics if `inputs` and `weights` have different lengths (the
/// [`NeuronTask`] invariant the task-based entry points establish).
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn order_images_from_parts<W: DataWord>(
    inputs: &[W],
    weights: &[W],
    bias: W,
    method: OrderingMethod,
    values_per_flit: usize,
    tiebreak: TieBreak,
    weight_perm: Option<&[usize]>,
    scratch: &mut TransportScratch,
) -> Result<(Vec<PayloadBits>, Option<Vec<u16>>), FlitizeError> {
    assert_eq!(inputs.len(), weights.len(), "operand slices must pair up");
    if values_per_flit < 2 || !values_per_flit.is_multiple_of(2) {
        return Err(FlitizeError::OddValuesPerFlit(values_per_flit));
    }
    let width = values_per_flit as u32 * W::WIDTH;
    if width > MAX_WIDTH_BITS {
        return Err(FlitizeError::LinkTooWide { requested: width });
    }
    let n = inputs.len();
    if n > usize::from(u16::MAX) {
        return Err(FlitizeError::TooManyValues(n));
    }

    let layout = half_half_layout(n, values_per_flit);
    let half = values_per_flit / 2;
    let mut flits = vec![PayloadBits::zero(width); layout.num_flits];
    let lane = |flits: &mut [PayloadBits], f: usize, slot: usize, w: W| {
        flits[f].set_field(slot as u32 * W::WIDTH, W::WIDTH, w.bits_u64());
    };

    // Bias keeps its baseline position in all methods.
    let (bf, bs) = layout.bias_position;
    lane(&mut flits, bf, half + bs, bias);

    let TransportScratch {
        keys,
        wperm: wperm_buf,
        iperm,
        assign,
        wdest,
        idest,
        inv_wperm,
        plain_buf: _,
    } = scratch;
    debug_assert!(
        weight_perm.is_none_or(|p| p.len() == n),
        "cached weight permutation does not cover the task"
    );

    let mut pair_index = None;
    match method {
        OrderingMethod::Baseline => {
            for (l, (&input, &weight)) in inputs.iter().zip(weights.iter()).enumerate() {
                let (f, s) = (l / half, l % half);
                lane(&mut flits, f, s, input);
                lane(&mut flits, f, half + s, weight);
            }
        }
        OrderingMethod::Affiliated => {
            let wperm: &[usize] = match weight_perm {
                Some(p) => p,
                None => {
                    tiebreak.descending_order_into(weights, keys, wperm_buf);
                    wperm_buf
                }
            };
            round_robin_assignment_into(&layout.weight_occupancy, assign);
            for (rank, &orig) in wperm.iter().enumerate() {
                let (f, s) = assign[rank];
                lane(&mut flits, f, half + s, weights[orig]);
                lane(&mut flits, f, s, inputs[orig]);
            }
        }
        OrderingMethod::Separated => {
            let wperm: &[usize] = match weight_perm {
                Some(p) => p,
                None => {
                    tiebreak.descending_order_into(weights, keys, wperm_buf);
                    wperm_buf
                }
            };
            tiebreak.descending_order_into(inputs, keys, iperm);
            round_robin_assignment_into(&layout.weight_occupancy, assign);
            placement_by_original_index_into(wperm, assign, wdest);
            for (orig, &(f, s)) in wdest.iter().enumerate() {
                lane(&mut flits, f, half + s, weights[orig]);
            }
            placement_by_original_index_into(iperm, assign, idest);
            for (orig, &(f, s)) in idest.iter().enumerate() {
                lane(&mut flits, f, s, inputs[orig]);
            }
            inv_wperm.clear();
            inv_wperm.resize(n, 0);
            for (rank, &orig) in wperm.iter().enumerate() {
                inv_wperm[orig] = rank as u16;
            }
            pair_index = Some(iperm.iter().map(|&orig| inv_wperm[orig]).collect());
        }
    }

    Ok((flits, pair_index))
}

/// Destination of one input lane: the flit index and the lane's bit
/// offset within that flit.
#[derive(Debug, Clone, Copy)]
struct LaneDest {
    flit: u32,
    offset: u32,
}

/// A per-kernel-group encode template: the static (weight-side) half of
/// every flit image pre-rendered once, plus the input-lane placement plan
/// — everything about a task's wire image that does not depend on the
/// activations.
///
/// Weights never change within a session, so their descending-popcount
/// order, their round-robin slot assignment, the bias lane, the O2
/// inverse weight permutation and the index-overhead accounting are all
/// functions of the kernel group alone. [`build_encode_template`] renders
/// them once per layer; [`render_images_with_template`] then encodes each
/// task by cloning the template flits and OR-ing only the per-request
/// activation lanes in ([`PayloadBits::or_word_field`] — the input half
/// of a template is zero, so no read-mask cycle is needed). The result is
/// bit-identical to [`order_images_from_parts`], which stays as the
/// untemplated path (pinned by `tests/transport_parity.rs`).
#[derive(Debug, Clone)]
pub struct EncodeTemplate {
    method: OrderingMethod,
    values_per_flit: usize,
    num_pairs: usize,
    word_width_bits: u32,
    /// Every `W`-bit lane sits inside one `u64` word when `64 % W == 0`
    /// (true for all supported words); the fill loop falls back to
    /// [`PayloadBits::set_field`] otherwise.
    word_aligned: bool,
    /// Bias + ordered weight half rendered; input lanes zero.
    flits: Vec<PayloadBits>,
    /// Input-lane destinations: indexed by **original input index** for
    /// O0/O1 (inputs keep / follow the weight placement) and by **input
    /// rank** for O2 (inputs are placed by their own popcount order).
    input_dests: Vec<LaneDest>,
    /// O2 only: original index → weight rank, the cached half of the
    /// re-pairing index (`pair_index[input_rank] = inv_wperm[orig]`).
    inv_wperm: Vec<u16>,
    index_overhead_bits: u64,
}

impl EncodeTemplate {
    /// Number of (input, weight) pairs per task of this group.
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.num_pairs
    }

    /// Side-channel overhead of the O2 re-pairing index, in bits.
    #[must_use]
    pub fn index_overhead_bits(&self) -> u64 {
        self.index_overhead_bits
    }

    /// The ordering method the template was rendered for.
    #[must_use]
    pub fn method(&self) -> OrderingMethod {
        self.method
    }

    /// Word lanes per flit the template was rendered for.
    #[must_use]
    pub fn values_per_flit(&self) -> usize {
        self.values_per_flit
    }
}

/// Pre-renders the static half of a kernel group's flit images — see
/// [`EncodeTemplate`]. `weight_perm` and `scratch` as in
/// [`order_task_cached`]; the build runs once per layer per group, off
/// the per-task hot path.
///
/// # Errors
///
/// Same conditions as [`order_task`].
pub fn build_encode_template<W: DataWord>(
    weights: &[W],
    bias: W,
    method: OrderingMethod,
    values_per_flit: usize,
    tiebreak: TieBreak,
    weight_perm: Option<&[usize]>,
    scratch: &mut TransportScratch,
) -> Result<EncodeTemplate, FlitizeError> {
    if values_per_flit < 2 || !values_per_flit.is_multiple_of(2) {
        return Err(FlitizeError::OddValuesPerFlit(values_per_flit));
    }
    let width = values_per_flit as u32 * W::WIDTH;
    if width > MAX_WIDTH_BITS {
        return Err(FlitizeError::LinkTooWide { requested: width });
    }
    let n = weights.len();
    if n > usize::from(u16::MAX) {
        return Err(FlitizeError::TooManyValues(n));
    }

    let layout = half_half_layout(n, values_per_flit);
    let half = values_per_flit / 2;
    let mut flits = vec![PayloadBits::zero(width); layout.num_flits];
    let lane = |flits: &mut [PayloadBits], f: usize, slot: usize, w: W| {
        flits[f].set_field(slot as u32 * W::WIDTH, W::WIDTH, w.bits_u64());
    };
    let dest = |f: usize, slot: usize| LaneDest {
        flit: f as u32,
        offset: slot as u32 * W::WIDTH,
    };

    // Bias keeps its baseline position in all methods.
    let (bf, bs) = layout.bias_position;
    lane(&mut flits, bf, half + bs, bias);

    let TransportScratch {
        keys,
        wperm: wperm_buf,
        assign,
        ..
    } = scratch;
    debug_assert!(
        weight_perm.is_none_or(|p| p.len() == n),
        "cached weight permutation does not cover the group"
    );

    let mut input_dests = vec![LaneDest { flit: 0, offset: 0 }; n];
    let mut inv_wperm = Vec::new();
    match method {
        OrderingMethod::Baseline => {
            for (l, (&weight, d)) in weights.iter().zip(input_dests.iter_mut()).enumerate() {
                let (f, s) = (l / half, l % half);
                lane(&mut flits, f, half + s, weight);
                *d = dest(f, s);
            }
        }
        OrderingMethod::Affiliated => {
            let wperm: &[usize] = match weight_perm {
                Some(p) => p,
                None => {
                    tiebreak.descending_order_into(weights, keys, wperm_buf);
                    wperm_buf
                }
            };
            round_robin_assignment_into(&layout.weight_occupancy, assign);
            for (rank, &orig) in wperm.iter().enumerate() {
                let (f, s) = assign[rank];
                lane(&mut flits, f, half + s, weights[orig]);
                // The input of the same original pair rides the same
                // flit, same relative slot in the input half.
                input_dests[orig] = dest(f, s);
            }
        }
        OrderingMethod::Separated => {
            let wperm: &[usize] = match weight_perm {
                Some(p) => p,
                None => {
                    tiebreak.descending_order_into(weights, keys, wperm_buf);
                    wperm_buf
                }
            };
            round_robin_assignment_into(&layout.weight_occupancy, assign);
            inv_wperm.resize(n, 0);
            for (rank, &orig) in wperm.iter().enumerate() {
                let (f, s) = assign[rank];
                lane(&mut flits, f, half + s, weights[orig]);
                inv_wperm[orig] = rank as u16;
            }
            // Inputs are placed by their own per-task rank; the rank →
            // slot map is static (the same round-robin assignment).
            for (rank, d) in input_dests.iter_mut().enumerate() {
                let (f, s) = assign[rank];
                *d = dest(f, s);
            }
        }
    }

    Ok(EncodeTemplate {
        method,
        values_per_flit,
        num_pairs: n,
        word_width_bits: W::WIDTH,
        word_aligned: 64 % W::WIDTH == 0,
        flits,
        input_dests,
        inv_wperm,
        index_overhead_bits: index_overhead_bits_for(method, n),
    })
}

/// Encodes one task's ordered flit images off a pre-rendered
/// [`EncodeTemplate`]: clone the static half, deal the activation lanes,
/// and (for O2) sort the inputs and emit the re-pairing index off the
/// cached inverse weight permutation. Bit-identical to
/// [`order_images_from_parts`] over the template's weights.
///
/// # Panics
///
/// Panics if `inputs` does not pair up with the template's weights or the
/// word type differs from the one the template was built for.
#[allow(clippy::type_complexity)]
pub fn render_images_with_template<W: DataWord>(
    template: &EncodeTemplate,
    inputs: &[W],
    tiebreak: TieBreak,
    scratch: &mut TransportScratch,
) -> (Vec<PayloadBits>, Option<Vec<u16>>) {
    assert_eq!(
        inputs.len(),
        template.num_pairs,
        "operand slices must pair up"
    );
    assert_eq!(
        W::WIDTH,
        template.word_width_bits,
        "word type differs from the template's"
    );
    let n = inputs.len();
    let mut flits = template.flits.clone();
    // The template's input lanes are zero, so dealing a lane is a single
    // OR of the (invariantly masked) word bits at a precomputed offset.
    let fill = |flits: &mut [PayloadBits], d: LaneDest, w: W| {
        if template.word_aligned {
            flits[d.flit as usize].or_word_field(d.offset, W::WIDTH, w.bits_u64());
        } else {
            flits[d.flit as usize].set_field(d.offset, W::WIDTH, w.bits_u64());
        }
    };
    match template.method {
        OrderingMethod::Baseline | OrderingMethod::Affiliated => {
            for (&input, &d) in inputs.iter().zip(template.input_dests.iter()) {
                fill(&mut flits, d, input);
            }
            (flits, None)
        }
        OrderingMethod::Separated => {
            let TransportScratch { keys, iperm, .. } = scratch;
            tiebreak.descending_order_into(inputs, keys, iperm);
            let mut pair_index = Vec::with_capacity(n);
            for (rank, &orig) in iperm.iter().enumerate() {
                fill(&mut flits, template.input_dests[rank], inputs[orig]);
                pair_index.push(template.inv_wperm[orig]);
            }
            (flits, Some(pair_index))
        }
    }
}

/// Flitizes a flat value stream (weights-only packets, as in the "without
/// NoC" experiments of Sec. V-A): `values_per_flit` lanes per flit, zero
/// padding at the tail.
///
/// With `ordered == false` values fill flits row-major in natural order;
/// with `ordered == true` they are sorted by descending popcount and dealt
/// round-robin across the packet's flits.
///
/// # Panics
///
/// Panics if `values_per_flit == 0` or the link would exceed
/// [`MAX_WIDTH_BITS`].
#[must_use]
pub fn flitize_values<W: DataWord>(
    values: &[W],
    values_per_flit: usize,
    ordered: bool,
) -> Vec<PayloadBits> {
    use crate::transport::{pack_values, packet_occupancy, row_major_assignment};
    assert!(values_per_flit > 0, "values_per_flit must be positive");
    let width = values_per_flit as u32 * W::WIDTH;
    assert!(
        width <= MAX_WIDTH_BITS,
        "link width {width} exceeds maximum {MAX_WIDTH_BITS}"
    );
    if values.is_empty() {
        return Vec::new();
    }
    let occupancy = packet_occupancy(values.len(), values_per_flit);
    let perm: Vec<usize> = if ordered {
        crate::ordering::descending_popcount_order(values)
    } else {
        (0..values.len()).collect()
    };
    let assign = if ordered {
        round_robin_assignment(&occupancy)
    } else {
        row_major_assignment(&occupancy)
    };
    pack_values(values, &occupancy, &assign, &perm, values_per_flit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_bits::word::{F32Word, Fx8Word};

    fn fx_task(n: usize) -> NeuronTask<Fx8Word> {
        let inputs: Vec<Fx8Word> = (0..n)
            .map(|i| Fx8Word::new((i as i8).wrapping_mul(7)))
            .collect();
        let weights: Vec<Fx8Word> = (0..n)
            .map(|i| Fx8Word::new((i as i8).wrapping_mul(13).wrapping_sub(5)))
            .collect();
        NeuronTask::new(inputs, weights, Fx8Word::new(42)).unwrap()
    }

    #[test]
    fn layout_matches_fig2_example() {
        // LeNet 5x5 kernel: 25 pairs, 16 values per flit (8+8).
        let l = half_half_layout(25, 16);
        assert_eq!(l.num_flits, 4);
        assert_eq!(l.input_occupancy, vec![8, 8, 8, 1]);
        assert_eq!(l.weight_occupancy, vec![8, 8, 8, 1]);
        // Bias right after the last weight: flit 3, weight-half slot 1
        // ("Flit 3: 1 input + 1 weight + 1 bias + 13 zeros").
        assert_eq!(l.bias_position, (3, 1));
    }

    #[test]
    fn layout_exact_fit_still_fits_bias() {
        // 8 pairs, half = 4: weights fill 2 flits exactly; the bias forces
        // a third flit.
        let l = half_half_layout(8, 8);
        assert_eq!(l.num_flits, 3);
        assert_eq!(l.weight_occupancy, vec![4, 4, 0]);
        assert_eq!(l.bias_position, (2, 0));
    }

    #[test]
    fn baseline_keeps_natural_order() {
        let task = fx_task(5);
        let ot = order_task(&task, OrderingMethod::Baseline, 4).unwrap();
        // half = 2: inputs [i0 i1 | i2 i3 | i4 -], weights likewise.
        assert_eq!(ot.flits().len(), 3);
        match ot.flits()[0].slots()[0] {
            Slot::Input(w) => assert_eq!(w, task.inputs()[0]),
            ref s => panic!("expected input, got {s:?}"),
        }
        match ot.flits()[1].slots()[2] {
            Slot::Weight(w) => assert_eq!(w, task.weights()[2]),
            ref s => panic!("expected weight, got {s:?}"),
        }
    }

    #[test]
    fn ordered_weight_columns_descend() {
        let task = fx_task(25);
        for method in [OrderingMethod::Affiliated, OrderingMethod::Separated] {
            let ot = order_task(&task, method, 16).unwrap();
            let half = 8;
            // Column-wise weight popcounts never increase across flits.
            for s in 0..half {
                let mut prev = u32::MAX;
                for row in ot.flits() {
                    if let Slot::Weight(w) = row.slots()[half + s] {
                        assert!(w.popcount() <= prev, "{method:?} column {s}");
                        prev = w.popcount();
                    }
                }
            }
        }
    }

    #[test]
    fn separated_input_columns_descend_too() {
        let task = fx_task(25);
        let ot = order_task(&task, OrderingMethod::Separated, 16).unwrap();
        for s in 0..8 {
            let mut prev = u32::MAX;
            for row in ot.flits() {
                if let Slot::Input(w) = row.slots()[s] {
                    assert!(w.popcount() <= prev);
                    prev = w.popcount();
                }
            }
        }
    }

    #[test]
    fn all_methods_preserve_value_multisets() {
        let task = fx_task(25);
        for method in OrderingMethod::ALL {
            let ot = order_task(&task, method, 16).unwrap();
            let mut inputs = Vec::new();
            let mut weights = Vec::new();
            let mut biases = Vec::new();
            for row in ot.flits() {
                for slot in row.slots() {
                    match *slot {
                        Slot::Input(w) => inputs.push(w.code()),
                        Slot::Weight(w) => weights.push(w.code()),
                        Slot::Bias(w) => biases.push(w.code()),
                        Slot::Pad => {}
                    }
                }
            }
            let mut expect_i: Vec<i8> = task.inputs().iter().map(|w| w.code()).collect();
            let mut expect_w: Vec<i8> = task.weights().iter().map(|w| w.code()).collect();
            inputs.sort_unstable();
            weights.sort_unstable();
            expect_i.sort_unstable();
            expect_w.sort_unstable();
            assert_eq!(inputs, expect_i, "{method:?}");
            assert_eq!(weights, expect_w, "{method:?}");
            assert_eq!(biases, vec![42], "{method:?}");
        }
    }

    #[test]
    fn recovery_preserves_mac_for_all_methods() {
        for n in [1usize, 2, 7, 8, 25, 150] {
            let task = fx_task(n);
            for method in OrderingMethod::ALL {
                let ot = order_task(&task, method, 16).unwrap();
                let rec = ot.recover().unwrap();
                assert_eq!(rec.mac_i64(), task.mac_i64(), "{method:?} n={n}");
                assert_eq!(rec.pairs.len(), n);
            }
        }
    }

    #[test]
    fn recovery_f32_matches_reference() {
        let inputs: Vec<F32Word> = (0..25)
            .map(|i| F32Word::new(i as f32 * 0.25 - 3.0))
            .collect();
        let weights: Vec<F32Word> = (0..25)
            .map(|i| F32Word::new(0.1 * i as f32 - 1.2))
            .collect();
        let task = NeuronTask::new(inputs, weights, F32Word::new(0.5)).unwrap();
        for method in OrderingMethod::ALL {
            let ot = order_task(&task, method, 16).unwrap();
            let rec = ot.recover().unwrap();
            assert!((rec.mac_f64() - task.mac_f64()).abs() < 1e-9, "{method:?}");
        }
    }

    #[test]
    fn separated_carries_index_others_do_not() {
        let task = fx_task(9);
        let o0 = order_task(&task, OrderingMethod::Baseline, 8).unwrap();
        let o1 = order_task(&task, OrderingMethod::Affiliated, 8).unwrap();
        let o2 = order_task(&task, OrderingMethod::Separated, 8).unwrap();
        assert!(o0.pair_index().is_none());
        assert!(o1.pair_index().is_none());
        assert_eq!(o2.pair_index().unwrap().len(), 9);
        assert_eq!(o0.index_overhead_bits(), 0);
        assert_eq!(o1.index_overhead_bits(), 0);
        // 9 values, ceil(log2 9) = 4 bits each.
        assert_eq!(o2.index_overhead_bits(), 36);
    }

    #[test]
    fn missing_index_is_detected() {
        let task = fx_task(4);
        let mut ot = order_task(&task, OrderingMethod::Separated, 8).unwrap();
        ot.pair_index = None;
        assert_eq!(ot.recover().unwrap_err(), RecoverError::MissingPairIndex);
    }

    #[test]
    fn rejects_odd_values_per_flit() {
        let task = fx_task(4);
        assert_eq!(
            order_task(&task, OrderingMethod::Baseline, 7).unwrap_err(),
            FlitizeError::OddValuesPerFlit(7)
        );
        assert_eq!(
            order_task(&task, OrderingMethod::Baseline, 0).unwrap_err(),
            FlitizeError::OddValuesPerFlit(0)
        );
    }

    #[test]
    fn rejects_too_wide_links() {
        let inputs: Vec<F32Word> = vec![F32Word::new(1.0); 4];
        let weights = inputs.clone();
        let task = NeuronTask::new(inputs, weights, F32Word::new(0.0)).unwrap();
        let err = order_task(&task, OrderingMethod::Baseline, 64).unwrap_err();
        assert_eq!(err, FlitizeError::LinkTooWide { requested: 2048 });
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn payload_flits_have_link_width() {
        let task = fx_task(25);
        let ot = order_task(&task, OrderingMethod::Affiliated, 16).unwrap();
        let flits = ot.payload_flits();
        assert_eq!(flits.len(), 4);
        assert!(flits.iter().all(|f| f.width() == 128));
    }

    #[test]
    fn payload_halves_carry_the_right_values() {
        // One pair: input in lane 0 (left half), weight in lane 1, bias in
        // the next flit's weight half.
        let task = NeuronTask::new(
            vec![Fx8Word::new(0x11)],
            vec![Fx8Word::new(0x22)],
            Fx8Word::new(0x33),
        )
        .unwrap();
        let ot = order_task(&task, OrderingMethod::Baseline, 2).unwrap();
        let flits = ot.payload_flits();
        assert_eq!(flits.len(), 2);
        assert_eq!(flits[0].field(0, 8), 0x11);
        assert_eq!(flits[0].field(8, 8), 0x22);
        assert_eq!(flits[1].field(8, 8), 0x33);
    }

    #[test]
    fn flitize_values_baseline_row_major() {
        let vals: Vec<Fx8Word> = (1..=5).map(Fx8Word::new).collect();
        let flits = flitize_values(&vals, 2, false);
        assert_eq!(flits.len(), 3);
        assert_eq!(flits[0].field(0, 8), 1);
        assert_eq!(flits[0].field(8, 8), 2);
        assert_eq!(flits[2].field(0, 8), 5);
        assert_eq!(flits[2].field(8, 8), 0); // pad
    }

    #[test]
    fn flitize_values_ordered_descends_per_column() {
        let vals: Vec<Fx8Word> = vec![
            Fx8Word::new(0),   // 0 ones
            Fx8Word::new(-1),  // 8
            Fx8Word::new(3),   // 2
            Fx8Word::new(127), // 7
            Fx8Word::new(1),   // 1
            Fx8Word::new(-2),  // 7
        ];
        let flits = flitize_values(&vals, 2, true);
        assert_eq!(flits.len(), 3);
        for col in 0..2u32 {
            let pcs: Vec<u32> = flits
                .iter()
                .map(|f| (f.field(col * 8, 8) as u8).count_ones())
                .collect();
            assert!(pcs.windows(2).all(|w| w[0] >= w[1]), "col {col}: {pcs:?}");
        }
    }

    #[test]
    fn flitize_values_empty() {
        let vals: Vec<Fx8Word> = Vec::new();
        assert!(flitize_values(&vals, 8, true).is_empty());
    }

    #[test]
    fn direct_image_emission_matches_slot_level_path() {
        // The hot encode path writes PayloadBits lanes directly; it must
        // be bit-identical to the slot-level OrderedTask rendering, pair
        // index included, for every method, tiebreak, and task size.
        let mut scratch = crate::transport::TransportScratch::default();
        for n in [1usize, 2, 7, 8, 25, 150] {
            let task = fx_task(n);
            for method in OrderingMethod::ALL {
                for tiebreak in [TieBreak::Stable, TieBreak::Value] {
                    let slotted = order_task_with(&task, method, 16, tiebreak).unwrap();
                    let (images, pair_index) =
                        order_task_images(&task, method, 16, tiebreak, None, &mut scratch).unwrap();
                    assert_eq!(
                        images,
                        slotted.payload_flits(),
                        "{method:?} {tiebreak:?} n={n}"
                    );
                    assert_eq!(
                        pair_index.as_deref(),
                        slotted.pair_index(),
                        "{method:?} {tiebreak:?} n={n}"
                    );
                    // A precomputed weight permutation changes nothing.
                    let wperm = tiebreak.descending_order(task.weights());
                    let (cached, _) =
                        order_task_images(&task, method, 16, tiebreak, Some(&wperm), &mut scratch)
                            .unwrap();
                    assert_eq!(cached, images, "{method:?} {tiebreak:?} n={n} cached");
                }
            }
        }
    }

    #[test]
    fn wire_decode_roundtrips_for_all_methods() {
        // The PE-side path: encode -> link images -> decode -> recover.
        for n in [1usize, 7, 25, 150] {
            let task = fx_task(n);
            for method in OrderingMethod::ALL {
                let sent = order_task(&task, method, 16).unwrap();
                let images = sent.payload_flits();
                let decoded = OrderedTask::<Fx8Word>::from_payload_flits(
                    method,
                    n,
                    16,
                    sent.pair_index().map(<[u16]>::to_vec),
                    &images,
                )
                .unwrap();
                assert_eq!(decoded, sent, "{method:?} n={n}");
                assert_eq!(decoded.recover().unwrap().mac_i64(), task.mac_i64());
            }
        }
    }

    #[test]
    fn wire_decode_validates_geometry() {
        let task = fx_task(9);
        let sent = order_task(&task, OrderingMethod::Baseline, 8).unwrap();
        let images = sent.payload_flits();
        assert!(OrderedTask::<Fx8Word>::from_payload_flits(
            OrderingMethod::Baseline,
            9,
            7,
            None,
            &images
        )
        .is_err());
        assert!(OrderedTask::<Fx8Word>::from_payload_flits(
            OrderingMethod::Baseline,
            9,
            8,
            None,
            &images[..1]
        )
        .is_err());
    }

    #[test]
    fn ordered_task_roundtrip_through_payload_width() {
        // f32 path with the paper's 512-bit configuration.
        let inputs: Vec<F32Word> = (0..25).map(|i| F32Word::new(i as f32)).collect();
        let weights: Vec<F32Word> = (0..25).map(|i| F32Word::new(-(i as f32))).collect();
        let task = NeuronTask::new(inputs, weights, F32Word::new(1.0)).unwrap();
        let ot = order_task(&task, OrderingMethod::Separated, 16).unwrap();
        assert!(ot.payload_flits().iter().all(|f| f.width() == 512));
    }
}
