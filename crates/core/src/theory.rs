//! The mathematical model of Sec. III.
//!
//! Given two `w`-bit words where the first contains `x` ones and the second
//! `y` ones, and assuming the positions of the ones are uniformly random and
//! independent, the probability that one wire toggles is (Eq. 1)
//!
//! ```text
//! P(t) = 1 − (w−x)(w−y)/w² − xy/w²
//! ```
//!
//! and the expected number of transitions over the whole word is (Eq. 2,
//! generalized from the paper's w = 32)
//!
//! ```text
//! E = w·P(t) = x + y − 2xy/w        (for w = 32: x + y − xy/16)
//! ```
//!
//! Summing over the `N` word lanes of two flits gives Eq. 3, whose data-
//! dependent term is the pair-product objective `F = Σ xi·yi` (Eq. 4):
//! because `Σxi + Σyi` is fixed by the payload multiset, minimizing expected
//! BT is equivalent to **maximizing F**. The paper proves the descending
//! interleaved ordering `x1 ≥ y1 ≥ x2 ≥ y2 ≥ …` is globally optimal; this
//! module provides that construction plus brute-force oracles used by the
//! test-suite to re-verify the claim exhaustively on small instances.

/// Probability that a single wire toggles between two `width`-bit words
/// containing `x` and `y` ones respectively (Eq. 1).
///
/// # Panics
///
/// Panics if `x` or `y` exceeds `width`, or `width == 0`.
#[must_use]
pub fn transition_probability(x: u32, y: u32, width: u32) -> f64 {
    assert!(width > 0, "width must be positive");
    assert!(x <= width && y <= width, "popcounts must be <= width");
    let w = f64::from(width);
    let (x, y) = (f64::from(x), f64::from(y));
    1.0 - ((w - x) * (w - y)) / (w * w) - (x * y) / (w * w)
}

/// Expected number of bit transitions between two `width`-bit words with
/// popcounts `x` and `y` (Eq. 2 generalized): `E = x + y − 2xy/w`.
///
/// # Panics
///
/// Panics if `x` or `y` exceeds `width`, or `width == 0`.
#[must_use]
pub fn expected_bt(x: u32, y: u32, width: u32) -> f64 {
    assert!(width > 0, "width must be positive");
    assert!(x <= width && y <= width, "popcounts must be <= width");
    let w = f64::from(width);
    f64::from(x) + f64::from(y) - 2.0 * f64::from(x) * f64::from(y) / w
}

/// Expected BT between two 32-bit words (the paper's Eq. 2:
/// `E = x + y − xy/16`).
#[must_use]
pub fn expected_bt_32(x: u32, y: u32) -> f64 {
    expected_bt(x, y, 32)
}

/// Total expected BT between two flits carrying `N` aligned `width`-bit
/// words with popcount series `xs` and `ys` (Eq. 3).
///
/// # Panics
///
/// Panics if the series lengths differ.
#[must_use]
pub fn expected_total_bt(xs: &[u32], ys: &[u32], width: u32) -> f64 {
    assert_eq!(
        xs.len(),
        ys.len(),
        "flits must carry the same number of words"
    );
    xs.iter()
        .zip(ys.iter())
        .map(|(&x, &y)| expected_bt(x, y, width))
        .sum()
}

/// The pair-product objective `F = Σ xi·yi` (Eq. 4). Maximizing `F`
/// minimizes [`expected_total_bt`] for a fixed payload multiset.
#[must_use]
pub fn pair_product_objective(xs: &[u32], ys: &[u32]) -> u64 {
    assert_eq!(
        xs.len(),
        ys.len(),
        "flits must carry the same number of words"
    );
    xs.iter()
        .zip(ys.iter())
        .map(|(&x, &y)| u64::from(x) * u64::from(y))
        .sum()
}

/// The paper's optimal two-flit arrangement: sort all `2N` popcounts
/// descending and deal them alternately, so the interleaved order satisfies
/// `x1 ≥ y1 ≥ x2 ≥ y2 ≥ … ≥ xN ≥ yN`.
///
/// Returns `(xs, ys)`, the popcount series of the two flits.
///
/// # Panics
///
/// Panics if `popcounts.len()` is odd.
#[must_use]
pub fn optimal_two_flit_split(popcounts: &[u32]) -> (Vec<u32>, Vec<u32>) {
    assert!(
        popcounts.len().is_multiple_of(2),
        "need an even number of values for two flits"
    );
    let mut sorted = popcounts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut xs = Vec::with_capacity(sorted.len() / 2);
    let mut ys = Vec::with_capacity(sorted.len() / 2);
    for pair in sorted.chunks(2) {
        xs.push(pair[0]);
        if pair.len() == 2 {
            ys.push(pair[1]);
        }
    }
    (xs, ys)
}

/// Brute-force oracle: the maximum achievable `F = Σ xi·yi` over **all**
/// ways of splitting `popcounts` (length `2N`) into two flits of `N` values
/// each and pairing their lanes.
///
/// Because `F` only depends on which values share a lane, it suffices to
/// enumerate partitions into two sets and pair each sorted descending
/// (rearrangement inequality gives the optimal pairing within a partition).
/// Exponential — intended for tests with `2N ≤ 16`.
///
/// # Panics
///
/// Panics if `popcounts.len()` is odd or greater than 16.
#[must_use]
pub fn brute_force_max_objective(popcounts: &[u32]) -> u64 {
    let n2 = popcounts.len();
    assert!(n2.is_multiple_of(2), "need an even number of values");
    assert!(n2 <= 16, "brute force limited to 16 values");
    let n = n2 / 2;
    let mut best = 0u64;
    // Enumerate all subsets of size n for the first flit.
    for mask in 0u32..(1 << n2) {
        if mask.count_ones() as usize != n {
            continue;
        }
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for (i, &pc) in popcounts.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                xs.push(pc);
            } else {
                ys.push(pc);
            }
        }
        // Optimal pairing within a fixed partition: sort both descending.
        xs.sort_unstable_by(|a, b| b.cmp(a));
        ys.sort_unstable_by(|a, b| b.cmp(a));
        best = best.max(pair_product_objective(&xs, &ys));
    }
    best
}

/// Monte-Carlo estimate of the BT between two random `width`-bit words with
/// exactly `x` and `y` ones, for cross-checking Eq. 1/2 (used by Fig. 1's
/// verification mode and the test-suite).
///
/// # Panics
///
/// Panics if `x` or `y` exceeds `width` or `width > 64`.
#[must_use]
pub fn monte_carlo_bt(x: u32, y: u32, width: u32, samples: u32, seed: u64) -> f64 {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    assert!(width <= 64, "monte carlo supports widths up to 64");
    assert!(x <= width && y <= width, "popcounts must be <= width");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut positions: Vec<u32> = (0..width).collect();
    let mut total = 0u64;
    for _ in 0..samples {
        positions.shuffle(&mut rng);
        let a: u64 = positions[..x as usize].iter().map(|&p| 1u64 << p).sum();
        positions.shuffle(&mut rng);
        let b: u64 = positions[..y as usize].iter().map(|&p| 1u64 << p).sum();
        total += u64::from((a ^ b).count_ones());
    }
    total as f64 / f64::from(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_matches_paper_form_for_w32() {
        // Paper: E = x + y − xy/16 for 32-bit words.
        for x in [0u32, 1, 8, 16, 31, 32] {
            for y in [0u32, 3, 16, 32] {
                let paper = f64::from(x) + f64::from(y) - f64::from(x) * f64::from(y) / 16.0;
                assert!((expected_bt_32(x, y) - paper).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn expectation_is_width_times_probability() {
        for w in [8u32, 16, 32] {
            for x in 0..=w {
                for y in 0..=w {
                    let lhs = expected_bt(x, y, w);
                    let rhs = f64::from(w) * transition_probability(x, y, w);
                    assert!((lhs - rhs).abs() < 1e-9, "w={w} x={x} y={y}");
                }
            }
        }
    }

    #[test]
    fn identical_extremes_have_zero_expectation() {
        assert_eq!(expected_bt(0, 0, 32), 0.0);
        assert_eq!(expected_bt(32, 32, 32), 0.0);
        // All-ones vs all-zeros toggles every wire.
        assert_eq!(expected_bt(32, 0, 32), 32.0);
    }

    #[test]
    fn expectation_peak_is_at_opposite_extremes() {
        // E(x, y) decreases in y when x > w/2 and increases when x < w/2.
        let mut max = 0.0;
        let mut argmax = (0, 0);
        for x in 0..=32 {
            for y in 0..=32 {
                let e = expected_bt_32(x, y);
                if e > max {
                    max = e;
                    argmax = (x, y);
                }
            }
        }
        assert!(argmax == (0, 32) || argmax == (32, 0));
        assert_eq!(max, 32.0);
    }

    #[test]
    fn total_bt_decomposes_into_constant_minus_objective() {
        // Eq. 3: Et = Σx + Σy − 2·F/w.
        let xs = [10u32, 4, 22];
        let ys = [7u32, 30, 1];
        let sum: f64 = xs.iter().chain(ys.iter()).map(|&v| f64::from(v)).sum();
        let f = pair_product_objective(&xs, &ys) as f64;
        let total = expected_total_bt(&xs, &ys, 32);
        assert!((total - (sum - 2.0 * f / 32.0)).abs() < 1e-9);
    }

    #[test]
    fn optimal_split_interleaves_descending() {
        let (xs, ys) = optimal_two_flit_split(&[3, 9, 1, 7, 5, 2]);
        assert_eq!(xs, vec![9, 5, 2]);
        assert_eq!(ys, vec![7, 3, 1]);
        // Interleaved: x1 >= y1 >= x2 >= y2 >= x3 >= y3.
        assert!(
            xs[0] >= ys[0] && ys[0] >= xs[1] && xs[1] >= ys[1] && ys[1] >= xs[2] && xs[2] >= ys[2]
        );
    }

    #[test]
    fn count_based_ordering_matches_brute_force_small() {
        // Exhaustively verify the paper's optimality claim on a few fixed
        // small instances (the proptest suite covers random ones).
        let cases: &[&[u32]] = &[
            &[0, 1, 2, 3],
            &[8, 8, 8, 8],
            &[32, 0, 16, 16],
            &[1, 2, 3, 4, 5, 6],
            &[7, 7, 1, 1, 30, 2, 19, 5],
            &[0, 0, 0, 32, 32, 32, 16, 8],
        ];
        for &pcs in cases {
            let (xs, ys) = optimal_two_flit_split(pcs);
            let ours = pair_product_objective(&xs, &ys);
            let best = brute_force_max_objective(pcs);
            assert_eq!(ours, best, "popcounts {pcs:?}");
        }
    }

    #[test]
    fn local_pairwise_inequality() {
        // The paper's inductive step: for four values a >= b >= c >= d, the
        // interleaved pairing (a·b + c·d) beats the alternatives.
        for a in 0..=8u64 {
            for b in 0..=a {
                for c in 0..=b {
                    for d in 0..=c {
                        let interleaved = a * b + c * d;
                        assert!(interleaved >= a * c + b * d);
                        assert!(interleaved >= a * d + b * c);
                    }
                }
            }
        }
    }

    #[test]
    fn monte_carlo_agrees_with_eq2() {
        for &(x, y) in &[(0u32, 0u32), (16, 16), (32, 0), (8, 24), (5, 29)] {
            let analytic = expected_bt_32(x, y);
            let sampled = monte_carlo_bt(x, y, 32, 20_000, 42);
            assert!(
                (analytic - sampled).abs() < 0.2,
                "x={x} y={y}: analytic {analytic} vs sampled {sampled}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "popcounts must be <= width")]
    fn rejects_popcount_above_width() {
        let _ = expected_bt(33, 0, 32);
    }
}
