//! The "without NoC" evaluation harness (Sec. V-A: Table I, Figs. 9–11).
//!
//! Packets of real weights are flitized onto a single link and the BT
//! between flits is measured two ways:
//!
//! * [`Comparison::Consecutive`] — flits stream back-to-back; BT between
//!   each consecutive pair (the link recorder of Fig. 8);
//! * [`Comparison::RandomPairs`] — "the BTs of *random comparisons*
//!   between flits" (Sec. V-A): uniformly sampled flit pairs, emulating
//!   arbitrary interleaving of flits on a shared link.
//!
//! The ordering unit sits at the memory controller behind a prefetch
//! buffer (Fig. 6), so its sorting window spans more than one kernel
//! packet. [`WindowConfig::window_packets`] controls how many consecutive
//! packets are pooled into one descending-sort window; Fig. 9's
//! many-flit monotone grid corresponds to such a multi-packet window.
//! Padded zeros keep their slots ("we do not order the padded zeros",
//! Sec. IV-A), so baseline and ordered streams have identical flit counts.

use crate::flitize::flitize_values;
use crate::ordering::round_robin_assignment;
pub use crate::ordering::TieBreak;
use crate::transport::{pack_values, row_major_assignment, window_occupancy};
use btr_bits::payload::PayloadBits;
use btr_bits::stats::{BitPositionStats, PopcountHistogram};
use btr_bits::transition::{reduction_rate, TransitionRecorder};
use btr_bits::word::DataWord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How sorted values are placed into the window's occupied flit slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Rank `r` goes to flit `r mod k` (Fig. 3's column-major deal):
    /// every flit receives the same *rank profile*, so any two flits in
    /// the stream look alike — the right choice when flits interleave
    /// arbitrarily.
    RoundRobin,
    /// Rank `r` goes to occupied slot `r` in flit order: consecutive flits
    /// carry adjacent ranks (Fig. 9's visual).
    RowMajor,
}

/// How flit pairs are selected for BT measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Comparison {
    /// Consecutive flits in stream order.
    Consecutive,
    /// `pairs` uniformly random flit pairs (seeded; the same pair indices
    /// are used for baseline and ordered streams).
    RandomPairs {
        /// Number of sampled pairs.
        pairs: usize,
        /// RNG seed for pair sampling.
        seed: u64,
    },
}

/// Configuration of the windowed stream experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Word lanes per flit.
    pub values_per_flit: usize,
    /// Consecutive packets pooled into one ordering window.
    pub window_packets: usize,
    /// Sorted-value placement.
    pub placement: Placement,
    /// Tie handling among equal popcounts.
    pub tiebreak: TieBreak,
}

impl WindowConfig {
    /// Table I's default configuration: 8 values per flit, a 64-packet
    /// prefetch window, round-robin placement, popcount-only comparator
    /// (the mechanism exactly as the paper describes it). EXPERIMENTS.md
    /// records the calibration sweep and the sensitivity variants
    /// ([`TieBreak::Value`], global quantization) that reach the paper's
    /// absolute magnitudes.
    #[must_use]
    pub fn table1() -> Self {
        Self {
            values_per_flit: 8,
            window_packets: 64,
            placement: Placement::RoundRobin,
            tiebreak: TieBreak::Stable,
        }
    }
}

/// Builds the flit stream for `packets`, optionally ordered per window.
///
/// Baseline (`ordered == false`): each packet is flitized row-major with
/// zero padding in its tail flit. Ordered: the values of each
/// `window_packets`-packet group are pooled, sorted descending by
/// popcount, and dealt into the **occupied** slots of the window's flits
/// (padding slots stay zero in place), per the configured placement.
///
/// # Panics
///
/// Panics if `values_per_flit == 0` or `window_packets == 0`.
#[must_use]
pub fn build_stream_flits<W: DataWord>(
    packets: &[Vec<W>],
    config: &WindowConfig,
    ordered: bool,
) -> Vec<PayloadBits> {
    assert!(
        config.values_per_flit > 0,
        "values_per_flit must be positive"
    );
    assert!(config.window_packets > 0, "window_packets must be positive");
    let vpf = config.values_per_flit;
    let mut flits = Vec::new();
    for window in packets.chunks(config.window_packets) {
        if !ordered {
            for packet in window {
                flits.extend(flitize_values(packet, vpf, false));
            }
            continue;
        }
        // Occupied-slot layout of the window: per-packet row-major shape,
        // padding at each packet's tail flit ("we do not order the padded
        // zeros"); packing shared with the rest of the transport pipeline.
        let occupancy = window_occupancy(window.iter().map(Vec::len), vpf);
        let values: Vec<W> = window.iter().flatten().copied().collect();
        let perm = config.tiebreak.descending_order(&values);
        let assign: Vec<(usize, usize)> = match config.placement {
            Placement::RoundRobin => round_robin_assignment(&occupancy),
            Placement::RowMajor => row_major_assignment(&occupancy),
        };
        flits.extend(pack_values(&values, &occupancy, &assign, &perm, vpf));
    }
    flits
}

/// Result of streaming one configuration over a link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamReport {
    /// Number of flits streamed.
    pub flits: u64,
    /// Total bit transitions on the link.
    pub transitions: u64,
    /// Average transitions per flit boundary (the paper's "BTs per flit").
    pub bt_per_flit: f64,
    /// Transition probability at each bit position of the link, folded to
    /// word width (all value lanes overlaid) — the bottom rows of
    /// Figs. 10/11.
    pub word_transition_probability: Vec<f64>,
    /// Popcount grid of the first flits (rows = flits, columns = value
    /// lanes), as visualized in Fig. 9.
    pub popcount_grid: Vec<Vec<u32>>,
}

/// Measures BT over an already-built flit stream.
///
/// With [`Comparison::Consecutive`] the transitions of each consecutive
/// pair accumulate (Fig. 8 recorder); with [`Comparison::RandomPairs`]
/// uniformly sampled pairs are compared and `bt_per_flit` is the mean BT
/// per sampled pair.
#[must_use]
pub fn measure_flits<W: DataWord>(
    flits: &[PayloadBits],
    values_per_flit: usize,
    comparison: Comparison,
    grid_rows: usize,
) -> StreamReport {
    let width = values_per_flit as u32 * W::WIDTH;
    let grid: Vec<Vec<u32>> = flits
        .iter()
        .take(grid_rows)
        .map(|f| flit_popcounts::<W>(f, values_per_flit))
        .collect();

    match comparison {
        Comparison::Consecutive => {
            let mut recorder = TransitionRecorder::new(width);
            for flit in flits {
                recorder.observe(flit);
            }
            let per_link = recorder.per_position_probability();
            StreamReport {
                flits: recorder.flits(),
                transitions: recorder.total(),
                bt_per_flit: recorder.transitions_per_flit(),
                word_transition_probability: fold_to_word_width(&per_link, W::WIDTH),
                popcount_grid: grid,
            }
        }
        Comparison::RandomPairs { pairs, seed } => {
            if flits.len() < 2 || pairs == 0 {
                return StreamReport {
                    flits: flits.len() as u64,
                    transitions: 0,
                    bt_per_flit: 0.0,
                    word_transition_probability: Vec::new(),
                    popcount_grid: grid,
                };
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let mut total = 0u64;
            let mut per_position = vec![0u64; width as usize];
            for _ in 0..pairs {
                let a = rng.gen_range(0..flits.len());
                let mut b = rng.gen_range(0..flits.len() - 1);
                if b >= a {
                    b += 1;
                }
                let diff = flits[a].xor(&flits[b]);
                total += u64::from(diff.popcount());
                // O(popcount), not O(width): only toggling wires count.
                diff.for_each_set_bit(|i| per_position[i as usize] += 1);
            }
            let probs: Vec<f64> = per_position
                .iter()
                .map(|&c| c as f64 / pairs as f64)
                .collect();
            StreamReport {
                flits: flits.len() as u64,
                transitions: total,
                bt_per_flit: total as f64 / pairs as f64,
                word_transition_probability: fold_to_word_width(&probs, W::WIDTH),
                popcount_grid: grid,
            }
        }
    }
}

/// Builds the (baseline or ordered) stream per `config` and measures it.
#[must_use]
pub fn evaluate_windowed<W: DataWord>(
    packets: &[Vec<W>],
    config: &WindowConfig,
    ordered: bool,
    comparison: Comparison,
    grid_rows: usize,
) -> StreamReport {
    let flits = build_stream_flits(packets, config, ordered);
    measure_flits::<W>(&flits, config.values_per_flit, comparison, grid_rows)
}

/// Runs baseline and ordered configurations over the same packets and
/// comparison pairs (one Table I row).
#[must_use]
pub fn compare_windowed<W: DataWord>(
    packets: &[Vec<W>],
    config: &WindowConfig,
    comparison: Comparison,
    grid_rows: usize,
) -> StreamComparison {
    let baseline = evaluate_windowed(packets, config, false, comparison, grid_rows);
    let ordered = evaluate_windowed(packets, config, true, comparison, grid_rows);
    let rate = reduction_rate(baseline.transitions, ordered.transitions);
    StreamComparison {
        baseline,
        ordered,
        reduction_rate: rate,
    }
}

/// Streams `packets` over one link and measures consecutive-flit BT with
/// per-packet ordering (window of 1, round-robin placement) — the simplest
/// configuration, kept for the library's quickstart path.
///
/// # Panics
///
/// Panics if `values_per_flit == 0`.
#[must_use]
pub fn evaluate_stream<W: DataWord>(
    packets: &[Vec<W>],
    values_per_flit: usize,
    ordered: bool,
    grid_rows: usize,
) -> StreamReport {
    let config = WindowConfig {
        values_per_flit,
        window_packets: 1,
        placement: Placement::RoundRobin,
        tiebreak: TieBreak::Stable,
    };
    evaluate_windowed(
        packets,
        &config,
        ordered,
        Comparison::Consecutive,
        grid_rows,
    )
}

/// Popcount of each value lane in a flit image.
fn flit_popcounts<W: DataWord>(flit: &PayloadBits, values_per_flit: usize) -> Vec<u32> {
    (0..values_per_flit)
        .map(|s| flit.field(s as u32 * W::WIDTH, W::WIDTH).count_ones())
        .collect()
}

/// Overlays all value lanes of a link onto word-width bit positions by
/// averaging: position `p` of the output aggregates link wires
/// `p, p + w, p + 2w, …`.
fn fold_to_word_width(link_probs: &[f64], word_width: u32) -> Vec<f64> {
    if link_probs.is_empty() {
        return Vec::new();
    }
    let w = word_width as usize;
    let lanes = link_probs.len() / w;
    (0..w)
        .map(|p| {
            let sum: f64 = (0..lanes).map(|l| link_probs[l * w + p]).sum();
            sum / lanes as f64
        })
        .collect()
}

/// Side-by-side comparison of the baseline and ordered streams over the
/// same packets — one row of Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamComparison {
    /// Baseline (natural order) stream.
    pub baseline: StreamReport,
    /// Ordered (descending popcount, round-robin) stream.
    pub ordered: StreamReport,
    /// `(baseline − ordered) / baseline` transitions.
    pub reduction_rate: f64,
}

/// Runs both configurations over the same packets (Table I rows).
#[must_use]
pub fn compare_streams<W: DataWord>(
    packets: &[Vec<W>],
    values_per_flit: usize,
    grid_rows: usize,
) -> StreamComparison {
    let baseline = evaluate_stream(packets, values_per_flit, false, grid_rows);
    let ordered = evaluate_stream(packets, values_per_flit, true, grid_rows);
    let rate = reduction_rate(baseline.transitions, ordered.transitions);
    StreamComparison {
        baseline,
        ordered,
        reduction_rate: rate,
    }
}

/// Per-bit-position `'1'` statistics of a word stream (top rows of
/// Figs. 10/11). Order-independent, so it is computed once per dataset.
#[must_use]
pub fn word_bit_statistics<W: DataWord>(words: &[W]) -> BitPositionStats {
    let mut stats = BitPositionStats::new(W::WIDTH);
    stats.observe_all(words);
    stats
}

/// Popcount histogram of a word stream (for Fig. 9-style summaries and the
/// bimodality analysis of trained fixed-8 weights).
#[must_use]
pub fn word_popcount_histogram<W: DataWord>(words: &[W]) -> PopcountHistogram {
    let mut hist = PopcountHistogram::new(W::WIDTH);
    for &w in words {
        hist.observe(w);
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_bits::word::Fx8Word;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_packets(count: usize, len: usize, seed: u64) -> Vec<Vec<Fx8Word>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| (0..len).map(|_| Fx8Word::new(rng.gen())).collect())
            .collect()
    }

    #[test]
    fn ordering_reduces_transitions_on_random_data() {
        let packets = random_packets(500, 25, 42);
        let cmp = compare_streams(&packets, 8, 0);
        assert!(
            cmp.reduction_rate > 0.05,
            "expected a clear reduction, got {}",
            cmp.reduction_rate
        );
        assert_eq!(cmp.baseline.flits, cmp.ordered.flits);
    }

    #[test]
    fn ordering_helps_most_on_bimodal_data() {
        // Near-zero trained-like codes: half small positive (few ones),
        // half small negative (many ones).
        let mut rng = StdRng::seed_from_u64(7);
        let packets: Vec<Vec<Fx8Word>> = (0..300)
            .map(|_| {
                (0..25)
                    .map(|_| {
                        let mag = rng.gen_range(0..4i8);
                        if rng.gen_bool(0.5) {
                            Fx8Word::new(mag)
                        } else {
                            Fx8Word::new(-mag)
                        }
                    })
                    .collect()
            })
            .collect();
        let bimodal = compare_streams(&packets, 8, 0);
        let uniform = compare_streams(&random_packets(300, 25, 8), 8, 0);
        assert!(
            bimodal.reduction_rate > uniform.reduction_rate,
            "bimodal {} should beat uniform {}",
            bimodal.reduction_rate,
            uniform.reduction_rate
        );
        // The paper's headline: trained fixed-8 cuts BT by ~half.
        assert!(
            bimodal.reduction_rate > 0.3,
            "got {}",
            bimodal.reduction_rate
        );
    }

    #[test]
    fn report_fields_are_consistent() {
        let packets = random_packets(10, 16, 1);
        let report = evaluate_stream(&packets, 8, false, 4);
        assert_eq!(report.flits, 20); // 16 values / 8 per flit * 10 packets
        assert_eq!(report.popcount_grid.len(), 4);
        assert_eq!(report.popcount_grid[0].len(), 8);
        assert_eq!(report.word_transition_probability.len(), 8);
        let expected = report.transitions as f64 / (report.flits - 1) as f64;
        assert!((report.bt_per_flit - expected).abs() < 1e-12);
    }

    #[test]
    fn fold_overlays_lanes() {
        let link = vec![1.0, 0.0, 0.5, 0.0]; // 2 lanes of 2-bit words
        let folded = fold_to_word_width(&link, 2);
        assert_eq!(folded, vec![0.75, 0.0]);
        assert!(fold_to_word_width(&[], 8).is_empty());
    }

    #[test]
    fn grid_shows_descending_rows_after_ordering() {
        let packets = random_packets(1, 32, 3);
        let report = evaluate_stream(&packets, 8, true, 4);
        // Within the single ordered packet, lane popcounts descend down
        // each column.
        for lane in 0..8 {
            let col: Vec<u32> = report.popcount_grid.iter().map(|r| r[lane]).collect();
            assert!(col.windows(2).all(|w| w[0] >= w[1]), "lane {lane}: {col:?}");
        }
    }

    #[test]
    fn word_statistics_helpers() {
        let words: Vec<Fx8Word> = vec![Fx8Word::new(-1), Fx8Word::new(0)];
        let stats = word_bit_statistics(&words);
        assert_eq!(stats.count(), 2);
        assert!((stats.mean_popcount() - 4.0).abs() < 1e-12);
        let hist = word_popcount_histogram(&words);
        assert_eq!(hist.counts()[8], 1);
        assert_eq!(hist.counts()[0], 1);
    }

    #[test]
    fn windowed_ordering_preserves_flit_count_and_multiset() {
        let packets = random_packets(32, 25, 5);
        for placement in [Placement::RoundRobin, Placement::RowMajor] {
            let config = WindowConfig {
                values_per_flit: 8,
                window_packets: 8,
                placement,
                tiebreak: TieBreak::Stable,
            };
            let base = build_stream_flits(&packets, &config, false);
            let ord = build_stream_flits(&packets, &config, true);
            assert_eq!(base.len(), ord.len(), "{placement:?}");
            // Same value multiset: total popcount is invariant.
            let pc = |fs: &[btr_bits::PayloadBits]| -> u64 {
                fs.iter().map(|f| u64::from(f.popcount())).sum()
            };
            assert_eq!(pc(&base), pc(&ord), "{placement:?}");
        }
    }

    #[test]
    fn row_major_window_is_globally_descending() {
        let packets = random_packets(8, 24, 6); // 24 = full flits, no padding
        let config = WindowConfig {
            values_per_flit: 8,
            window_packets: 8,
            placement: Placement::RowMajor,
            tiebreak: TieBreak::Stable,
        };
        let flits = build_stream_flits(&packets, &config, true);
        let mut prev = u32::MAX;
        for f in &flits {
            for s in 0..8u32 {
                let pc = (f.field(s * 8, 8) as u8).count_ones();
                assert!(pc <= prev, "global descending order violated");
                prev = pc;
            }
        }
    }

    #[test]
    fn random_pairs_mode_is_deterministic_and_positive() {
        let packets = random_packets(50, 25, 7);
        let config = WindowConfig::table1();
        let cmp1 = compare_windowed(
            &packets,
            &config,
            Comparison::RandomPairs {
                pairs: 2000,
                seed: 1,
            },
            0,
        );
        let cmp2 = compare_windowed(
            &packets,
            &config,
            Comparison::RandomPairs {
                pairs: 2000,
                seed: 1,
            },
            0,
        );
        assert_eq!(cmp1.baseline.transitions, cmp2.baseline.transitions);
        assert_eq!(cmp1.ordered.transitions, cmp2.ordered.transitions);
        assert!(
            cmp1.reduction_rate > 0.05,
            "windowed ordering should cut random-pair BT, got {}",
            cmp1.reduction_rate
        );
    }

    #[test]
    fn larger_windows_help_random_pair_comparisons() {
        let packets = random_packets(256, 25, 8);
        let comparison = Comparison::RandomPairs {
            pairs: 5000,
            seed: 2,
        };
        let rate = |window: usize| {
            let config = WindowConfig {
                values_per_flit: 8,
                window_packets: window,
                placement: Placement::RoundRobin,
                tiebreak: TieBreak::Stable,
            };
            compare_windowed(&packets, &config, comparison, 0).reduction_rate
        };
        let small = rate(1);
        let large = rate(64);
        assert!(
            large > small,
            "window 64 ({large}) should beat window 1 ({small})"
        );
    }

    #[test]
    fn measure_flits_handles_degenerate_inputs() {
        let flits: Vec<btr_bits::PayloadBits> = Vec::new();
        let r =
            measure_flits::<Fx8Word>(&flits, 8, Comparison::RandomPairs { pairs: 10, seed: 0 }, 0);
        assert_eq!(r.transitions, 0);
        let one = vec![btr_bits::PayloadBits::zero(64)];
        let r =
            measure_flits::<Fx8Word>(&one, 8, Comparison::RandomPairs { pairs: 10, seed: 0 }, 2);
        assert_eq!(r.bt_per_flit, 0.0);
        assert_eq!(r.popcount_grid.len(), 1);
    }

    #[test]
    fn empty_packets_produce_empty_report() {
        let packets: Vec<Vec<Fx8Word>> = Vec::new();
        let report = evaluate_stream(&packets, 8, true, 4);
        assert_eq!(report.flits, 0);
        assert_eq!(report.transitions, 0);
        assert_eq!(report.bt_per_flit, 0.0);
    }
}
