//! Per-flit error-detecting codes (EDC) for the unreliable-link model.
//!
//! Every deployed NoC pairs its links with an error-detection +
//! retransmission protocol; this module is the detection half. An EDC is
//! computed over a flit's **plain data image** (the ordered values, before
//! any link coding) and carried on extra side-channel wires directly above
//! the data MSB, accounted exactly like the codec side channel. The link
//! codec then codes the whole *frame* — data plus EDC field — as one unit,
//! so a wire flip anywhere in the frame lands in the decoded frame and the
//! receiving NI's check catches it:
//!
//! ```text
//!   wire layout (LSB → MSB):
//!   [ data: data_width ][ EDC: extra_wires ][ codec side channel ]
//!   `------------- frame -----------------'
//! ```
//!
//! [`EdcKind::Crc8`] detects **every** burst of ≤ 8 adjacent frame-bit
//! flips (the classic burst-detection guarantee of a degree-8 CRC), which
//! is what makes the recovery property tests airtight under the burst
//! error model; [`EdcKind::Parity`] is the one-wire cheap option (detects
//! any odd number of flips). Head flits and codec side-channel wires are
//! control signals and modeled as protected, as in real routers where
//! control carries separate ECC.

use btr_bits::payload::PayloadBits;
use serde::{Deserialize, Serialize};

/// Which error-detecting code a transport stamps on each payload flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EdcKind {
    /// No EDC: the frame is the data image (perfect-wire model).
    #[default]
    None,
    /// Single even-parity wire over the data bits: detects any odd number
    /// of flips, misses even-sized errors. One extra wire.
    Parity,
    /// CRC-8 (polynomial `x^8 + x^2 + x + 1`, 0x07) over the data bits:
    /// detects all single/double flips and every burst of length ≤ 8.
    /// Eight extra wires.
    Crc8,
}

impl EdcKind {
    /// All kinds, in ablation order.
    pub const ALL: [EdcKind; 3] = [EdcKind::None, EdcKind::Parity, EdcKind::Crc8];

    /// Short label used in tables and JSON (`"none"`, `"parity"`,
    /// `"crc8"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EdcKind::None => "none",
            EdcKind::Parity => "parity",
            EdcKind::Crc8 => "crc8",
        }
    }

    /// Side-channel wires the EDC adds between the data MSB and any codec
    /// side channel.
    #[must_use]
    pub fn extra_wires(self) -> u32 {
        match self {
            EdcKind::None => 0,
            EdcKind::Parity => 1,
            EdcKind::Crc8 => 8,
        }
    }

    /// Computes the check value over the low `data_width` bits of `image`.
    ///
    /// # Panics
    ///
    /// Panics if `image` is narrower than `data_width`.
    #[must_use]
    pub fn compute(self, image: &PayloadBits, data_width: u32) -> u64 {
        assert!(
            image.width() >= data_width,
            "image width {} below data width {data_width}",
            image.width()
        );
        match self {
            EdcKind::None => 0,
            EdcKind::Parity => {
                let mut ones = 0u32;
                let mut off = 0;
                while off < data_width {
                    let len = 64.min(data_width - off);
                    ones += image.field(off, len).count_ones();
                    off += len;
                }
                u64::from(ones & 1)
            }
            EdcKind::Crc8 => {
                // Bitwise CRC-8, data bits LSB-first. Bit-serial is fine
                // here: frames are narrow and the check runs once per
                // flit at NI speed, not per hop.
                let mut crc = 0u8;
                for i in 0..data_width {
                    let bit = u8::from(image.bit(i));
                    let top = crc >> 7;
                    crc <<= 1;
                    if top ^ bit != 0 {
                        crc ^= 0x07;
                    }
                }
                // Store the remainder bit-reversed: frame position
                // data_width + k then carries remainder coefficient
                // x^(7-k), so physical wire adjacency matches codeword
                // polynomial adjacency and the degree-8 burst guarantee
                // holds across the data/check boundary too.
                u64::from(crc.reverse_bits())
            }
        }
    }

    /// Widens a `data_width` plain image into a frame and writes the check
    /// field at `[data_width, data_width + extra_wires)`. Returns the
    /// image unchanged for [`EdcKind::None`].
    ///
    /// # Panics
    ///
    /// Panics if `image` is narrower than `data_width`.
    #[must_use]
    pub fn stamp(self, image: &PayloadBits, data_width: u32) -> PayloadBits {
        if self == EdcKind::None {
            return *image;
        }
        let mut frame = image.resized(data_width + self.extra_wires());
        frame.set_field(
            data_width,
            self.extra_wires(),
            self.compute(image, data_width),
        );
        frame
    }

    /// Checks a delivered frame: recomputes the EDC over the data bits and
    /// compares it to the carried field. Always `true` for
    /// [`EdcKind::None`]. The frame may be wider than
    /// `data_width + extra_wires` (link-aligned images); upper wires are
    /// ignored.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is narrower than the frame width.
    #[must_use]
    pub fn verify(self, frame: &PayloadBits, data_width: u32) -> bool {
        if self == EdcKind::None {
            return true;
        }
        assert!(
            frame.width() >= data_width + self.extra_wires(),
            "frame width {} below data + EDC width {}",
            frame.width(),
            data_width + self.extra_wires()
        );
        frame.field(data_width, self.extra_wires()) == self.compute(frame, data_width)
    }
}

impl std::fmt::Display for EdcKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for EdcKind {
    type Err = String;

    /// Parses `"none"`, `"parity"`, `"crc8"`/`"crc-8"`/`"crc"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "none" => Ok(EdcKind::None),
            "parity" => Ok(EdcKind::Parity),
            "crc8" | "crc-8" | "crc" => Ok(EdcKind::Crc8),
            other => Err(format!("unknown EDC {other:?}; use none|parity|crc8")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_image(width: u32, seed: u64) -> PayloadBits {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = PayloadBits::zero(width);
        let mut off = 0;
        while off < width {
            let len = 64.min(width - off);
            p.set_field(off, len, rng.gen());
            off += len;
        }
        p
    }

    #[test]
    fn stamp_then_verify_round_trips() {
        for kind in EdcKind::ALL {
            for width in [8u32, 64, 128, 130] {
                for seed in 0..20 {
                    let image = random_image(width, seed);
                    let frame = kind.stamp(&image, width);
                    assert_eq!(frame.width(), width + kind.extra_wires());
                    assert!(kind.verify(&frame, width), "{kind} w={width} s={seed}");
                    // Link-aligned (wider) frames verify identically.
                    assert!(kind.verify(&frame.resized(frame.width() + 3), width));
                    // The data bits are untouched.
                    assert_eq!(frame.resized(width), image);
                }
            }
        }
    }

    #[test]
    fn single_flips_are_always_detected() {
        for kind in [EdcKind::Parity, EdcKind::Crc8] {
            let width = 96;
            let image = random_image(width, 7);
            let frame = kind.stamp(&image, width);
            for bit in 0..frame.width() {
                let mut bad = frame;
                bad.set_field(bit, 1, u64::from(!frame.bit(bit)));
                assert!(!kind.verify(&bad, width), "{kind} flip at {bit}");
            }
        }
    }

    #[test]
    fn crc8_detects_every_short_burst() {
        // The degree-8 burst guarantee: any contiguous run of ≤ 8 flipped
        // frame bits (data or check field) is detected.
        let width = 128;
        let image = random_image(width, 13);
        let frame = EdcKind::Crc8.stamp(&image, width);
        for len in 1..=8u32 {
            for start in 0..=(frame.width() - len) {
                let mut bad = frame;
                let mask = (1u64 << len) - 1;
                bad.set_field(start, len, !frame.field(start, len) & mask);
                assert!(
                    !EdcKind::Crc8.verify(&bad, width),
                    "burst len={len} at {start} aliased"
                );
            }
        }
    }

    #[test]
    fn parity_misses_double_flips_crc_catches_them() {
        let width = 64;
        let image = random_image(width, 5);
        let pframe = EdcKind::Parity.stamp(&image, width);
        let cframe = EdcKind::Crc8.stamp(&image, width);
        let flip2 = |f: &PayloadBits, a: u32, b: u32| {
            let mut bad = *f;
            bad.set_field(a, 1, u64::from(!f.bit(a)));
            bad.set_field(b, 1, u64::from(!bad.bit(b)));
            bad
        };
        assert!(EdcKind::Parity.verify(&flip2(&pframe, 3, 40), width));
        assert!(!EdcKind::Crc8.verify(&flip2(&cframe, 3, 40), width));
    }

    #[test]
    fn kind_parses_and_prints() {
        for kind in EdcKind::ALL {
            assert_eq!(kind.label().parse::<EdcKind>(), Ok(kind));
        }
        assert_eq!("crc-8".parse::<EdcKind>(), Ok(EdcKind::Crc8));
        assert!("hamming".parse::<EdcKind>().is_err());
        assert_eq!(EdcKind::default(), EdcKind::None);
        assert_eq!(EdcKind::Crc8.to_string(), "crc8");
        assert_eq!(EdcKind::None.extra_wires(), 0);
        assert_eq!(EdcKind::Parity.extra_wires(), 1);
        assert_eq!(EdcKind::Crc8.extra_wires(), 8);
    }
}
