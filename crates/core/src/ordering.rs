//! The ordering rule: descending popcount sort + round-robin placement.
//!
//! Sec. IV of the paper defines three evaluation configurations:
//!
//! * **O0 — baseline**: values are transmitted in their natural (memory)
//!   order;
//! * **O1 — affiliated-ordering**: *(weight, input)* pairs are placed
//!   according to the descending `'1'`-bit count of the **weights**; inputs
//!   stay affiliated with their weights, so no de-ordering is needed
//!   (convolution/linear layers are order-invariant over paired operands);
//! * **O2 — separated-ordering**: weights and inputs are each placed
//!   according to their **own** descending `'1'`-bit counts; a
//!   minimal-bit-width index re-pairs them at the receiver.
//!
//! Placement follows Fig. 3: after sorting descending by popcount, value of
//! rank `r` goes to flit `r mod k` (round-robin over the packet's `k`
//! flits), so each link wire sees adjacent-rank — hence similar-popcount —
//! values on consecutive flits. For `k = 2` this is exactly the proven
//! optimal interleave `x1 ≥ y1 ≥ x2 ≥ y2 ≥ …` of Sec. III.

use btr_bits::word::DataWord;
use serde::{Deserialize, Serialize};

/// The three data-transmission configurations evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrderingMethod {
    /// O0 — no ordering; values keep their natural order.
    Baseline,
    /// O1 — affiliated-ordering: pairs follow the weights' popcount order.
    Affiliated,
    /// O2 — separated-ordering: weights and inputs ordered independently.
    Separated,
}

impl OrderingMethod {
    /// All three methods in the order the paper reports them.
    pub const ALL: [OrderingMethod; 3] = [
        OrderingMethod::Baseline,
        OrderingMethod::Affiliated,
        OrderingMethod::Separated,
    ];

    /// The paper's shorthand label (O0 / O1 / O2).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            OrderingMethod::Baseline => "O0",
            OrderingMethod::Affiliated => "O1",
            OrderingMethod::Separated => "O2",
        }
    }

    /// Long descriptive name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            OrderingMethod::Baseline => "baseline",
            OrderingMethod::Affiliated => "affiliated-ordering",
            OrderingMethod::Separated => "separated-ordering",
        }
    }
}

impl std::fmt::Display for OrderingMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.label(), self.name())
    }
}

impl std::str::FromStr for OrderingMethod {
    type Err = String;

    /// Parses the paper's shorthand (`"O0"`/`"O1"`/`"O2"`, case
    /// insensitive) or the long names.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "o0" | "baseline" => Ok(OrderingMethod::Baseline),
            "o1" | "affiliated" | "affiliated-ordering" => Ok(OrderingMethod::Affiliated),
            "o2" | "separated" | "separated-ordering" => Ok(OrderingMethod::Separated),
            other => Err(format!(
                "unknown ordering {other:?}; use O0|O1|O2 or baseline|affiliated|separated"
            )),
        }
    }
}

/// Tie handling among equal-popcount values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TieBreak {
    /// Keep the original relative order (popcount-only comparator, as in
    /// the hardware unit of Fig. 14).
    Stable,
    /// Sort equal-popcount values by their raw bit images, aligning
    /// identical/similar words (see [`descending_popcount_value_order`]).
    Value,
}

impl std::str::FromStr for TieBreak {
    type Err = String;

    /// Parses `"stable"` / `"value"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "stable" => Ok(TieBreak::Stable),
            "value" => Ok(TieBreak::Value),
            other => Err(format!("unknown tiebreak {other:?}; use stable|value")),
        }
    }
}

impl TieBreak {
    /// The descending permutation under this tie rule.
    #[must_use]
    pub fn descending_order<W: DataWord>(self, values: &[W]) -> Vec<usize> {
        match self {
            TieBreak::Stable => descending_popcount_order(values),
            TieBreak::Value => descending_popcount_value_order(values),
        }
    }

    /// [`TieBreak::descending_order`] into caller-owned buffers:
    /// `scratch` hosts the key/ping-pong arrays and `out` receives the
    /// permutation (cleared first), so hot paths (the accelerator's
    /// per-task encode stage) sort without allocating.
    ///
    /// This is the counting-sort ordering kernel: a `W`-bit word's
    /// popcount lies in `0..=W::WIDTH`, so the descending-popcount
    /// permutation falls out of `W::WIDTH + 1` buckets in O(n) — no
    /// comparator network (the paper's '1'-bit-count sorting-unit
    /// observation). The stable rule is a single stable bucket pass; the
    /// value rule runs a byte-wise LSD radix over the raw code first, so
    /// equal-popcount values still land in descending bit-image order.
    /// Both produce the *identical* permutation as
    /// [`TieBreak::descending_order_comparison_into`] (pinned by
    /// `tests/properties.rs`).
    pub fn descending_order_into<W: DataWord>(
        self,
        values: &[W],
        scratch: &mut SortScratch,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        let n = values.len();
        let w = W::WIDTH as usize;
        debug_assert!(w < POPCOUNT_BUCKETS, "word wider than the bucket table");
        match self {
            TieBreak::Stable => {
                // One stable counting pass over popcount buckets, emitted
                // high→low: ties keep their original (insertion) order.
                let mut offsets = [0usize; POPCOUNT_BUCKETS];
                for v in values {
                    offsets[v.popcount() as usize] += 1;
                }
                descending_prefix_offsets(&mut offsets[..=w]);
                out.resize(n, 0);
                for (i, v) in values.iter().enumerate() {
                    let slot = &mut offsets[v.popcount() as usize];
                    out[*slot] = i;
                    *slot += 1;
                }
            }
            TieBreak::Value => {
                // LSD radix over the composite (popcount, bits) key:
                // byte digits of the raw code first, the popcount bucket
                // last (most significant). Every pass is a stable
                // descending counting sort, so the result is the stable
                // descending lexicographic (popcount, bits) order.
                let SortScratch { keys, swap } = scratch;
                keys.clear();
                keys.extend(values.iter().enumerate().map(|(i, v)| SortKey {
                    popcount: v.popcount(),
                    bits: v.bits_u64(),
                    index: i as u32,
                }));
                swap.clear();
                swap.resize(n, SortKey::ZERO);
                let (mut src, mut dst) = (&mut *keys, &mut *swap);
                for pass in 0..W::WIDTH.div_ceil(8) {
                    let shift = 8 * pass;
                    radix_pass_descending(src, dst, 256, |k| ((k.bits >> shift) & 0xff) as usize);
                    std::mem::swap(&mut src, &mut dst);
                }
                radix_pass_descending(src, dst, w + 1, |k| k.popcount as usize);
                out.extend(dst.iter().map(|k| k.index as usize));
            }
        }
    }

    /// The pre-counting-sort implementation of
    /// [`TieBreak::descending_order_into`], preserved verbatim as the
    /// bit-exact oracle (the `btr_noc::legacy` idiom): one precomputed key
    /// per value, then a stable `sort_by_key` on
    /// `(Reverse(popcount), Reverse(bits))`. The counting-sort kernel must
    /// produce the identical permutation for every input and both tie
    /// rules; `tests/properties.rs` pins the equivalence and
    /// `bench_encode`/`bench_ordering` measure the kernel against it.
    pub fn descending_order_comparison_into<W: DataWord>(
        self,
        values: &[W],
        scratch: &mut SortScratch,
        out: &mut Vec<usize>,
    ) {
        let keys = &mut scratch.keys;
        keys.clear();
        out.clear();
        // One key computation per value instead of one per comparison;
        // `bits` is zeroed for the stable rule so the (stable) sort
        // compares popcounts only and ties keep their original order.
        keys.extend(values.iter().enumerate().map(|(i, v)| SortKey {
            popcount: v.popcount(),
            bits: match self {
                TieBreak::Stable => 0,
                TieBreak::Value => v.bits_u64(),
            },
            index: i as u32,
        }));
        keys.sort_by_key(|k| (std::cmp::Reverse(k.popcount), std::cmp::Reverse(k.bits)));
        out.extend(keys.iter().map(|k| k.index as usize));
    }
}

/// One more than the widest supported popcount (64-bit words), sizing the
/// stack bucket tables of the counting-sort kernel.
const POPCOUNT_BUCKETS: usize = 65;

/// Converts per-bucket counts into start offsets for a **descending**
/// stable counting pass: bucket `len-1` first, bucket `0` last.
#[inline]
fn descending_prefix_offsets(counts: &mut [usize]) {
    let mut start = 0usize;
    for c in counts.iter_mut().rev() {
        let run = *c;
        *c = start;
        start += run;
    }
}

/// One stable counting-sort pass of the LSD radix, descending by `digit`
/// (`digit(k) < radix <= 256` for every key).
#[inline]
fn radix_pass_descending(
    src: &[SortKey],
    dst: &mut [SortKey],
    radix: usize,
    digit: impl Fn(&SortKey) -> usize,
) {
    debug_assert!(radix <= 256 && src.len() == dst.len());
    let mut offsets = [0usize; 256];
    for k in src {
        offsets[digit(k)] += 1;
    }
    descending_prefix_offsets(&mut offsets[..radix]);
    for k in src {
        let slot = &mut offsets[digit(k)];
        dst[*slot] = *k;
        *slot += 1;
    }
}

/// Reusable buffers of the ordering kernel: the precomputed keys plus the
/// LSD radix ping-pong array. One instance per encoder thread (via
/// `TransportScratch`) keeps the per-task sort allocation-free.
#[derive(Debug, Default)]
pub struct SortScratch {
    keys: Vec<SortKey>,
    swap: Vec<SortKey>,
}

/// Precomputed comparison key of one value: popcount, (optional) raw bit
/// image, and the original index the permutation reports.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    popcount: u32,
    bits: u64,
    index: u32,
}

impl SortKey {
    const ZERO: SortKey = SortKey {
        popcount: 0,
        bits: 0,
        index: 0,
    };
}

/// Returns the permutation that sorts `values` by **descending** popcount.
///
/// `perm[rank] = original index`; the sort is stable (ties keep their
/// original relative order) so the transformation is deterministic. Keys
/// are computed once per value, not once per comparison.
#[must_use]
pub fn descending_popcount_order<W: DataWord>(values: &[W]) -> Vec<usize> {
    let mut perm = Vec::new();
    TieBreak::Stable.descending_order_into(values, &mut SortScratch::default(), &mut perm);
    perm
}

/// Descending popcount order with **raw-bit-image tiebreak**: values with
/// equal `'1'` counts are further sorted by their bit patterns
/// (descending), so identical and structurally similar words become
/// adjacent ranks.
///
/// The paper's comparator sorts on the popcount key alone and leaves tie
/// order unspecified; breaking ties by value costs nothing in software and
/// a wider comparator in hardware, and is what makes the reported
/// reduction magnitudes reachable on real weight data (equal-popcount
/// groups of small fixed-point codes contain many identical values; see
/// EXPERIMENTS.md).
#[must_use]
pub fn descending_popcount_value_order<W: DataWord>(values: &[W]) -> Vec<usize> {
    let mut perm = Vec::new();
    TieBreak::Value.descending_order_into(values, &mut SortScratch::default(), &mut perm);
    perm
}

/// Ascending variant, used as an ablation point. The theory predicts it is
/// exactly as good as descending *within* a packet (reversing a sequence
/// preserves adjacent-rank distances) but behaves differently at packet
/// boundaries.
#[must_use]
pub fn ascending_popcount_order<W: DataWord>(values: &[W]) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..values.len()).collect();
    perm.sort_by_key(|&i| values[i].popcount());
    perm
}

/// Greedy nearest-neighbor ordering (ablation): starting from the highest
/// popcount value, repeatedly append the unused value whose popcount is
/// closest to the previous one. A TSP-flavored heuristic that the paper's
/// sort provably dominates for the two-flit objective, included to probe
/// whether the simple sort leaves anything on the table in streams.
#[must_use]
pub fn greedy_nearest_order<W: DataWord>(values: &[W]) -> Vec<usize> {
    if values.is_empty() {
        return Vec::new();
    }
    let w = W::WIDTH as usize;
    // Popcount buckets in O(n): enumeration order keeps each bucket
    // ascending by original index, and the greedy rule only ever consumes
    // a bucket's smallest remaining index, so a front cursor per bucket
    // replaces the old O(n²) scan over the remaining set.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); w + 1];
    for (i, v) in values.iter().enumerate() {
        buckets[v.popcount() as usize].push(i);
    }
    let mut cursor = vec![0usize; w + 1];
    let remaining =
        |buckets: &[Vec<usize>], cursor: &[usize], pc: usize| cursor[pc] < buckets[pc].len();
    // Start from the maximum popcount (stable: first such index).
    let mut cur_pc = (0..=w)
        .rev()
        .find(|&pc| !buckets[pc].is_empty())
        .expect("non-empty");
    let mut order = Vec::with_capacity(values.len());
    order.push(buckets[cur_pc][0]);
    cursor[cur_pc] = 1;
    for _ in 1..values.len() {
        // Nearest non-exhausted popcount; an equal-distance tie between
        // the bucket below and above resolves to the smaller original
        // index (exactly the old `min_by_key` on `(distance, index)`).
        let pc = (0..=w)
            .find_map(|d| {
                let lower = cur_pc
                    .checked_sub(d)
                    .filter(|&pc| remaining(&buckets, &cursor, pc));
                let upper =
                    Some(cur_pc + d).filter(|&pc| pc <= w && remaining(&buckets, &cursor, pc));
                match (lower, upper) {
                    (Some(lo), Some(hi)) if lo != hi => {
                        Some(if buckets[lo][cursor[lo]] <= buckets[hi][cursor[hi]] {
                            lo
                        } else {
                            hi
                        })
                    }
                    (Some(pc), _) | (_, Some(pc)) => Some(pc),
                    (None, None) => None,
                }
            })
            .expect("some value remains");
        order.push(buckets[pc][cursor[pc]]);
        cursor[pc] += 1;
        cur_pc = pc;
    }
    order
}

/// Round-robin assignment of sorted ranks to flit slots.
///
/// `capacities[f]` is the number of occupied slots flit `f` has for this
/// value class (inputs or weights). Rank `r` is dealt to flits cyclically,
/// skipping full flits, and fills each flit's slots in increasing order.
/// Returns `assign[rank] = (flit, slot)`.
///
/// For equal capacities this reduces to `rank → (rank mod k, rank div k)`,
/// i.e. Fig. 3's column-major placement.
#[must_use]
pub fn round_robin_assignment(capacities: &[usize]) -> Vec<(usize, usize)> {
    let mut assign = Vec::new();
    round_robin_assignment_into(capacities, &mut assign);
    assign
}

/// [`round_robin_assignment`] into a caller-owned buffer (cleared first),
/// for allocation-free hot paths.
pub fn round_robin_assignment_into(capacities: &[usize], assign: &mut Vec<(usize, usize)>) {
    let total: usize = capacities.iter().sum();
    assign.clear();
    assign.reserve(total);
    let mut offset = 0usize;
    // Deal one slot per non-full flit per round until every slot is used;
    // `offset` is the round number (== slots already filled per flit).
    while assign.len() < total {
        let before = assign.len();
        for (f, &cap) in capacities.iter().enumerate() {
            if offset < cap {
                assign.push((f, offset));
            }
        }
        offset += 1;
        debug_assert!(assign.len() > before, "round-robin made no progress");
    }
}

/// Applies a rank permutation and a slot assignment to produce, for each
/// original value index, its destination `(flit, slot)`.
///
/// `perm[rank] = original index` (from [`descending_popcount_order`]);
/// `assign[rank] = (flit, slot)` (from [`round_robin_assignment`]).
///
/// # Panics
///
/// Panics if the two inputs have different lengths.
#[must_use]
pub fn placement_by_original_index(
    perm: &[usize],
    assign: &[(usize, usize)],
) -> Vec<(usize, usize)> {
    let mut dest = Vec::new();
    placement_by_original_index_into(perm, assign, &mut dest);
    dest
}

/// [`placement_by_original_index`] into a caller-owned buffer (cleared
/// first), for allocation-free hot paths.
///
/// # Panics
///
/// Panics if the two inputs have different lengths.
pub fn placement_by_original_index_into(
    perm: &[usize],
    assign: &[(usize, usize)],
    dest: &mut Vec<(usize, usize)>,
) {
    assert_eq!(perm.len(), assign.len(), "perm/assignment length mismatch");
    dest.clear();
    dest.resize(perm.len(), (usize::MAX, usize::MAX));
    for (rank, &orig) in perm.iter().enumerate() {
        dest[orig] = assign[rank];
    }
    debug_assert!(dest.iter().all(|&(f, _)| f != usize::MAX));
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_bits::word::Fx8Word;

    fn words(codes: &[i8]) -> Vec<Fx8Word> {
        codes.iter().map(|&c| Fx8Word::new(c)).collect()
    }

    #[test]
    fn method_labels() {
        assert_eq!(OrderingMethod::Baseline.label(), "O0");
        assert_eq!(OrderingMethod::Affiliated.label(), "O1");
        assert_eq!(OrderingMethod::Separated.label(), "O2");
        assert_eq!(OrderingMethod::ALL.len(), 3);
        assert_eq!(
            OrderingMethod::Separated.to_string(),
            "O2 (separated-ordering)"
        );
    }

    #[test]
    fn descending_order_sorts_by_popcount() {
        // popcounts: 0 -> 0, -1 -> 8, 1 -> 1, 3 -> 2
        let v = words(&[0, -1, 1, 3]);
        let perm = descending_popcount_order(&v);
        assert_eq!(perm, vec![1, 3, 2, 0]);
        let pcs: Vec<u32> = perm.iter().map(|&i| v[i].popcount()).collect();
        assert!(pcs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn descending_order_is_stable_on_ties() {
        // 1 and 2 both have popcount 1; original order preserved.
        let v = words(&[1, 2, 4]);
        let perm = descending_popcount_order(&v);
        assert_eq!(perm, vec![0, 1, 2]);
    }

    #[test]
    fn ascending_is_reverse_of_descending_without_ties() {
        let v = words(&[0, -1, 3, 7]); // popcounts 0, 8, 2, 3 (all distinct)
        let mut desc = descending_popcount_order(&v);
        desc.reverse();
        assert_eq!(ascending_popcount_order(&v), desc);
    }

    #[test]
    fn greedy_covers_all_indices() {
        let v = words(&[5, -1, 0, 127, 33, -128]);
        let order = greedy_nearest_order(&v);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..v.len()).collect::<Vec<_>>());
        // Starts from max popcount (-1 -> 8 ones).
        assert_eq!(order[0], 1);
    }

    #[test]
    fn greedy_empty() {
        let v: Vec<Fx8Word> = Vec::new();
        assert!(greedy_nearest_order(&v).is_empty());
    }

    #[test]
    fn round_robin_equal_capacities_is_column_major() {
        let assign = round_robin_assignment(&[2, 2, 2]);
        assert_eq!(assign, vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn round_robin_skips_full_flits() {
        // Fig. 2's occupancy for 25 weights over 4 flits: [8, 8, 8, 1].
        let assign = round_robin_assignment(&[3, 3, 3, 1]);
        assert_eq!(assign.len(), 10);
        // First round touches every flit; flit 3 is then full.
        assert_eq!(&assign[..4], &[(0, 0), (1, 0), (2, 0), (3, 0)]);
        assert_eq!(&assign[4..7], &[(0, 1), (1, 1), (2, 1)]);
        assert_eq!(&assign[7..], &[(0, 2), (1, 2), (2, 2)]);
    }

    #[test]
    fn round_robin_handles_zero_capacity_flits() {
        let assign = round_robin_assignment(&[0, 2, 0, 1]);
        assert_eq!(assign, vec![(1, 0), (3, 0), (1, 1)]);
    }

    #[test]
    fn round_robin_empty() {
        assert!(round_robin_assignment(&[]).is_empty());
        assert!(round_robin_assignment(&[0, 0]).is_empty());
    }

    #[test]
    fn placement_inverts_permutation() {
        let v = words(&[0, -1, 1]); // popcounts 0, 8, 1 -> perm [1, 2, 0]
        let perm = descending_popcount_order(&v);
        let assign = round_robin_assignment(&[2, 1]);
        let dest = placement_by_original_index(&perm, &assign);
        // original 1 (rank 0) -> (0,0); original 2 (rank 1) -> (1,0);
        // original 0 (rank 2) -> (0,1).
        assert_eq!(dest, vec![(0, 1), (0, 0), (1, 0)]);
    }

    #[test]
    fn column_popcounts_descend_after_round_robin() {
        // The physical property the ordering creates: at each wire column,
        // popcounts across consecutive flits never increase.
        let v = words(&[9, -1, 0, 77, -128, 31, 2, 60]);
        let perm = descending_popcount_order(&v);
        let k = 4; // 4 flits, 2 slots each
        let assign = round_robin_assignment(&[2; 4]);
        let mut grid = vec![vec![0u32; 2]; k];
        for (rank, &orig) in perm.iter().enumerate() {
            let (f, s) = assign[rank];
            grid[f][s] = v[orig].popcount();
        }
        for s in 0..2 {
            for f in 1..k {
                assert!(
                    grid[f - 1][s] >= grid[f][s],
                    "column {s} not descending: {:?}",
                    grid.iter().map(|r| r[s]).collect::<Vec<_>>()
                );
            }
        }
    }
}
