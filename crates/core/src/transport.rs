//! The shared transport pipeline: one implementation of the
//! `OrderedTask → codec → packets → per-link TransitionRecorder`
//! lifecycle.
//!
//! Three harnesses move ordered values over links: the "without NoC"
//! stream evaluation ([`crate::stream`]), raw NoC injection
//! (`btr_noc::session`), and the full accelerator driver
//! (`btr_accel::driver`). Historically each hand-rolled its own
//! flitization, ordering and recovery calls; this module is now the single
//! place that logic lives:
//!
//! * [`TransportSession`] — the MC/PE contract: encode a
//!   [`NeuronTask`] into wire images plus the [`TaskWireMeta`] a head
//!   flit (and, for O2, the index side channel) carries, and decode a
//!   delivered packet back into a [`RecoveredTask`];
//! * [`CodedTransport`] — the implementation of that contract as an
//!   `order → flitize → codec` pipeline: the paper's descending-popcount
//!   ordering per [`TransportConfig`], composed with the
//!   [`crate::codec::LinkCodec`] selected by [`TransportConfig::codec`]
//!   (unencoded, bus-invert, or delta-XOR);
//! * the packing helpers ([`packet_occupancy`], [`window_occupancy`],
//!   [`row_major_assignment`], [`pack_values`],
//!   [`pack_window_with_order`]) — the one copy of the
//!   "occupancy → permutation → slot assignment → flit images" pipeline
//!   that both the packet path and the weight-stream path are built on;
//! * [`link_recorder`] / [`record_stream`] — the measurement end of the
//!   lifecycle: a per-link [`TransitionRecorder`] observing the encoded
//!   flits (Fig. 8).

use crate::codec::{CodecError, CodecKind, CodecScope};
use crate::edc::EdcKind;
use crate::flitize::{
    build_encode_template, index_overhead_bits_for, order_images_from_parts, order_task_with,
    render_images_with_template, EncodeTemplate, FlitizeError, OrderedTask, RecoverError,
};
use crate::ordering::{round_robin_assignment, OrderingMethod, SortScratch, TieBreak};
use crate::task::{NeuronTask, RecoveredTask};
use btr_bits::payload::{PayloadBits, MAX_WIDTH_BITS};
use btr_bits::transition::TransitionRecorder;
use btr_bits::word::DataWord;
use serde::{Deserialize, Serialize};

/// Configuration of a transport session: how values are ordered, how many
/// word lanes each flit carries, and which link codec runs after
/// flitization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportConfig {
    /// Data transmission ordering (O0/O1/O2).
    pub ordering: OrderingMethod,
    /// Popcount-tie handling in the ordering unit.
    pub tiebreak: TieBreak,
    /// Word lanes per flit (the paper uses 16: 8 inputs + 8 weights).
    pub values_per_flit: usize,
    /// Link-coding backend applied to the ordered flit stream.
    pub codec: CodecKind,
    /// Where the codec state lives. With [`CodecScope::PerPacket`] this
    /// session applies the codec itself (fresh state per packet); with
    /// [`CodecScope::PerLink`] it emits the plain ordered images and the
    /// NoC links code the wires with their own persistent state.
    pub scope: CodecScope,
    /// Per-flit error-detecting code stamped on the plain ordered image
    /// and carried on extra wires between the data MSB and the codec
    /// side channel. The codec codes the whole data+EDC *frame*, so a
    /// wire flip anywhere in the frame is visible to the receiving NI's
    /// check. [`EdcKind::None`] models perfect wires (the paper's setup).
    pub edc: EdcKind,
}

impl TransportConfig {
    /// A session with the paper's popcount-only comparator
    /// ([`TieBreak::Stable`]) and no link coding.
    #[must_use]
    pub fn new(ordering: OrderingMethod, values_per_flit: usize) -> Self {
        Self {
            ordering,
            tiebreak: TieBreak::Stable,
            values_per_flit,
            codec: CodecKind::Unencoded,
            scope: CodecScope::PerPacket,
            edc: EdcKind::None,
        }
    }

    /// The same configuration with a different link codec.
    #[must_use]
    pub fn with_codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// The same configuration with a different codec scope.
    #[must_use]
    pub fn with_scope(mut self, scope: CodecScope) -> Self {
        self.scope = scope;
        self
    }

    /// The same configuration with a different per-flit EDC.
    #[must_use]
    pub fn with_edc(mut self, edc: EdcKind) -> Self {
        self.edc = edc;
        self
    }

    /// True when this session applies the codec itself (per-packet
    /// scope); false when the codec is deferred to the NoC links.
    #[must_use]
    pub fn codes_in_transport(&self) -> bool {
        self.codec != CodecKind::Unencoded && self.scope == CodecScope::PerPacket
    }

    /// Width of the data wires for word type `W`: `values_per_flit`
    /// word lanes.
    #[must_use]
    pub fn data_width_bits<W: DataWord>(&self) -> u32 {
        self.values_per_flit as u32 * W::WIDTH
    }

    /// Width of the protected *frame* for word type `W`: the data wires
    /// plus the EDC field. This is what the link codec codes as one unit
    /// and what wire flips are confined to.
    #[must_use]
    pub fn frame_width_bits<W: DataWord>(&self) -> u32 {
        self.data_width_bits::<W>() + self.edc.extra_wires()
    }

    /// Physical link width in bits for word type `W`: the frame (data +
    /// EDC field) plus the codec's side-channel wires (the bus-invert
    /// line).
    #[must_use]
    pub fn link_width_bits<W: DataWord>(&self) -> u32 {
        self.frame_width_bits::<W>() + self.codec.extra_wires()
    }
}

/// Reusable scratch buffers for the encode half of the transport
/// pipeline: the ordering permutations, slot assignments and inverse-index
/// tables `order → flitize` needs per task. One instance per encoder
/// thread keeps the per-task encode loop free of scratch allocations
/// (buffers grow to the largest task seen and are then reused).
#[derive(Debug, Default)]
pub struct TransportScratch {
    /// Ordering-kernel buffers (keys + radix ping-pong array).
    pub(crate) keys: SortScratch,
    /// Weight permutation (when not provided precomputed).
    pub(crate) wperm: Vec<usize>,
    /// Input permutation (separated-ordering only).
    pub(crate) iperm: Vec<usize>,
    /// Round-robin `rank → (flit, slot)` assignment.
    pub(crate) assign: Vec<(usize, usize)>,
    /// Weight destinations by original index.
    pub(crate) wdest: Vec<(usize, usize)>,
    /// Input destinations by original index.
    pub(crate) idest: Vec<(usize, usize)>,
    /// Inverse weight permutation for the O2 pair index.
    pub(crate) inv_wperm: Vec<u16>,
    /// Plain images recovered from delivered wire images (per-packet
    /// codec inverse, or the per-link re-alignment narrow).
    pub(crate) plain_buf: Vec<PayloadBits>,
}

/// The metadata a packet carries out-of-band of its payload flits: the
/// extended head-flit fields plus, for separated-ordering, the
/// minimal-bit-width re-pairing index (Sec. IV-B).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskWireMeta {
    /// Number of (input, weight) pairs in the task.
    pub num_pairs: usize,
    /// O2 re-pairing index (`pair_index[input_rank] = weight_rank`).
    pub pair_index: Option<Vec<u16>>,
}

/// A task encoded for transmission: the coded wire images plus wire
/// metadata and side-channel accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedTask<W> {
    meta: TaskWireMeta,
    index_overhead_bits: u64,
    /// The ordered flit images before link coding (the codec input).
    plain: Vec<PayloadBits>,
    /// The codec output — `None` when the codec is the identity, so the
    /// unencoded pipeline stores (and moves) one image vector, not two.
    wire: Option<Vec<PayloadBits>>,
    codec: CodecKind,
    edc: EdcKind,
    _word: std::marker::PhantomData<W>,
}

impl<W: DataWord> EncodedTask<W> {
    /// The wire images in transmission order (ordered, flitized, and
    /// link-coded — these are what the NoC's per-link transition
    /// recorders observe).
    #[must_use]
    pub fn payload_flits(&self) -> Vec<PayloadBits> {
        self.wire.as_ref().unwrap_or(&self.plain).clone()
    }

    /// The ordered flit images *before* link coding (the codec input).
    #[must_use]
    pub fn plain_flits(&self) -> Vec<PayloadBits> {
        self.plain.clone()
    }

    /// The metadata the receiver needs to decode the packet.
    #[must_use]
    pub fn wire_meta(&self) -> TaskWireMeta {
        self.meta.clone()
    }

    /// Side-channel overhead of the separated-ordering index in bits.
    #[must_use]
    pub fn index_overhead_bits(&self) -> u64 {
        self.index_overhead_bits
    }

    /// Side-channel overhead of the link codec in bits: one bit per extra
    /// wire per payload flit (the bus-invert line; zero for unencoded and
    /// delta-XOR).
    #[must_use]
    pub fn codec_overhead_bits(&self) -> u64 {
        let wire_flits = self.wire.as_ref().unwrap_or(&self.plain).len() as u64;
        u64::from(self.codec.extra_wires()) * wire_flits
    }

    /// Side-channel overhead of the per-flit EDC in bits: the check-field
    /// wires times the payload flit count, accounted exactly like
    /// [`EncodedTask::codec_overhead_bits`].
    #[must_use]
    pub fn edc_overhead_bits(&self) -> u64 {
        let wire_flits = self.wire.as_ref().unwrap_or(&self.plain).len() as u64;
        u64::from(self.edc.extra_wires()) * wire_flits
    }

    /// Consumes the encoded task into its wire images without cloning —
    /// the injection path hands these straight to the packet.
    #[must_use]
    pub fn into_wire_flits(self) -> Vec<PayloadBits> {
        self.wire.unwrap_or(self.plain)
    }

    /// Consumes the encoded task into `(wire metadata, wire images,
    /// index overhead bits, codec overhead bits, EDC overhead bits)` —
    /// everything the injection path needs, with no clone of the images
    /// or the O2 pair index.
    #[must_use]
    pub fn into_parts(self) -> (TaskWireMeta, Vec<PayloadBits>, u64, u64, u64) {
        let index_overhead_bits = self.index_overhead_bits;
        let codec_overhead_bits = self.codec_overhead_bits();
        let edc_overhead_bits = self.edc_overhead_bits();
        let wire = self.wire.unwrap_or(self.plain);
        (
            self.meta,
            wire,
            index_overhead_bits,
            codec_overhead_bits,
            edc_overhead_bits,
        )
    }
}

/// Errors from the decode half of a transport session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The link codec rejected the wire images.
    Codec(CodecError),
    /// The flit images do not match the expected layout geometry.
    Geometry(FlitizeError),
    /// The slot structure decoded, but operand recovery failed.
    Recover(RecoverError),
    /// A response packet carried no payload flits.
    EmptyResponse,
    /// A packet kept failing its EDC check after the NI's whole retry
    /// budget — the unreliable-link protocol's typed surrender, never
    /// silent corruption.
    Unrecoverable {
        /// Retransmissions attempted before giving up.
        retries: u32,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Codec(e) => write!(f, "link decode failed: {e}"),
            TransportError::Geometry(e) => write!(f, "wire decode failed: {e}"),
            TransportError::Recover(e) => write!(f, "operand recovery failed: {e}"),
            TransportError::EmptyResponse => write!(f, "response packet carried no payload flits"),
            TransportError::Unrecoverable { retries } => write!(
                f,
                "packet failed its EDC check after {retries} retransmission(s); retry budget \
                 exhausted"
            ),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<CodecError> for TransportError {
    fn from(e: CodecError) -> Self {
        TransportError::Codec(e)
    }
}

impl From<FlitizeError> for TransportError {
    fn from(e: FlitizeError) -> Self {
        TransportError::Geometry(e)
    }
}

impl From<RecoverError> for TransportError {
    fn from(e: RecoverError) -> Self {
        TransportError::Recover(e)
    }
}

/// The transport contract between a memory controller and a processing
/// element: `NeuronTask → OrderedTask → packets` on the sending side,
/// `packets → RecoveredTask` on the receiving side.
///
/// Implementations must round-trip: for any valid task,
/// `decode_task(encode_task(t).wire_meta(), encode_task(t).payload_flits())`
/// recovers a pairing with the same multiply-accumulate result.
pub trait TransportSession<W: DataWord> {
    /// The session configuration.
    fn transport_config(&self) -> &TransportConfig;

    /// Orders and flitizes a task for transmission.
    ///
    /// # Errors
    ///
    /// Returns [`FlitizeError`] for invalid geometry (odd lane count, link
    /// too wide, oversized task).
    fn encode_task(&self, task: &NeuronTask<W>) -> Result<EncodedTask<W>, FlitizeError>;

    /// Decodes delivered payload flits back into paired operands.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the flit images do not match the
    /// layout implied by `meta` or recovery fails.
    fn decode_task(
        &self,
        meta: &TaskWireMeta,
        flits: &[PayloadBits],
    ) -> Result<RecoveredTask<W>, TransportError>;

    /// Checks every delivered payload flit's EDC field — the receiving
    /// NI's detection step, run *before* decode. `Ok(false)` is the NACK
    /// that triggers a retransmission; sessions without an EDC verify
    /// trivially.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] when the images do not match the
    /// session's wire geometry at all (a harness bug, not a wire error).
    fn verify_delivered_frames(&self, flits: &[PayloadBits]) -> Result<bool, TransportError>;

    /// A per-link transition recorder matching this session's link width —
    /// the measurement end of the transport lifecycle (Fig. 8).
    fn link_recorder(&self) -> TransitionRecorder {
        TransitionRecorder::total_only(self.transport_config().link_width_bits::<W>())
    }
}

/// The `order → flitize → codec` transport pipeline: descending-popcount
/// ordering at the MC, link coding on the wires, codec decode plus
/// slot-pairing (O0/O1) or index-lookup (O2) recovery at the PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodedTransport {
    config: TransportConfig,
}

impl CodedTransport {
    /// Creates a session with the given configuration.
    #[must_use]
    pub fn new(config: TransportConfig) -> Self {
        Self { config }
    }

    /// Widens a stream of plain `data_width` images into EDC-stamped
    /// frames, in place. No-op (and no width change) without an EDC, so
    /// the perfect-wire pipeline is untouched.
    fn stamp_frames<W: DataWord>(&self, plain: &mut [PayloadBits]) {
        if self.config.edc == EdcKind::None {
            return;
        }
        let data_width = self.config.data_width_bits::<W>();
        for image in plain {
            *image = self.config.edc.stamp(image, data_width);
        }
    }

    /// [`TransportSession::encode_task`] with reusable scratch buffers and
    /// an optional precomputed weight permutation (see
    /// [`order_task_cached`]). The session itself is `Copy`, so encoder
    /// threads each take their own handle plus a private scratch and
    /// encode off the cycle-loop thread; the output is bit-identical to
    /// the plain encode.
    ///
    /// # Errors
    ///
    /// Returns [`FlitizeError`] for invalid geometry, like
    /// [`TransportSession::encode_task`].
    pub fn encode_task_cached<W: DataWord>(
        &self,
        task: &NeuronTask<W>,
        weight_perm: Option<&[usize]>,
        scratch: &mut TransportScratch,
    ) -> Result<EncodedTask<W>, FlitizeError> {
        self.encode_parts_cached(
            task.inputs(),
            task.weights(),
            task.bias(),
            weight_perm,
            scratch,
        )
    }

    /// [`CodedTransport::encode_task_cached`] over bare operand slices —
    /// the innermost encode path, letting the driver's encode stage feed
    /// a reused input buffer and the layer's shared kernel with no
    /// per-task `NeuronTask` materialization.
    ///
    /// # Errors
    ///
    /// Returns [`FlitizeError`] for invalid geometry.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `weights` have different lengths.
    pub fn encode_parts_cached<W: DataWord>(
        &self,
        inputs: &[W],
        weights: &[W],
        bias: W,
        weight_perm: Option<&[usize]>,
        scratch: &mut TransportScratch,
    ) -> Result<EncodedTask<W>, FlitizeError> {
        let (mut plain, pair_index) = order_images_from_parts(
            inputs,
            weights,
            bias,
            self.config.ordering,
            self.config.values_per_flit,
            self.config.tiebreak,
            weight_perm,
            scratch,
        )?;
        self.stamp_frames::<W>(&mut plain);
        let wire = if self.config.codes_in_transport() {
            Some(self.config.codec.encode_stream(&plain))
        } else {
            // Identity codec, or per-link scope: the plain ordered images
            // go onto the wire (the links code them with their own state).
            None
        };
        Ok(EncodedTask {
            meta: TaskWireMeta {
                num_pairs: inputs.len(),
                pair_index,
            },
            index_overhead_bits: index_overhead_bits_for(self.config.ordering, inputs.len()),
            plain,
            wire,
            codec: self.config.codec,
            edc: self.config.edc,
            _word: std::marker::PhantomData,
        })
    }

    /// Pre-renders one kernel group's [`EncodeTemplate`] for this
    /// session's ordering/lane configuration — the once-per-layer half of
    /// the template encode path (see [`build_encode_template`]).
    /// `weight_perm`, when given, must equal
    /// `tiebreak.descending_order(weights)` (the driver's cached per-group
    /// permutation).
    ///
    /// # Errors
    ///
    /// Returns [`FlitizeError`] for invalid geometry, like
    /// [`TransportSession::encode_task`].
    pub fn weight_template<W: DataWord>(
        &self,
        weights: &[W],
        bias: W,
        weight_perm: Option<&[usize]>,
        scratch: &mut TransportScratch,
    ) -> Result<EncodeTemplate, FlitizeError> {
        build_encode_template(
            weights,
            bias,
            self.config.ordering,
            self.config.values_per_flit,
            self.config.tiebreak,
            weight_perm,
            scratch,
        )
    }

    /// [`CodedTransport::encode_parts_cached`] off a pre-rendered
    /// [`EncodeTemplate`] — the per-task half of the template encode
    /// path: clone the static weight half, deal only the activation
    /// lanes, then run the link codec as usual. Bit-identical to
    /// [`CodedTransport::encode_parts_cached`] (and through it to
    /// [`CodedTransport::encode_task_reference`]) over the template's
    /// weights — pinned by `tests/transport_parity.rs`.
    ///
    /// # Errors
    ///
    /// Infallible today (geometry was validated when the template was
    /// built); the `Result` mirrors the untemplated encode entry points.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not pair up with the template's weights,
    /// the word type differs from the one the template was built for, or
    /// (debug only) the template's ordering/lane configuration is not
    /// this session's.
    pub fn encode_with_template<W: DataWord>(
        &self,
        template: &EncodeTemplate,
        inputs: &[W],
        scratch: &mut TransportScratch,
    ) -> Result<EncodedTask<W>, FlitizeError> {
        debug_assert_eq!(
            template.method(),
            self.config.ordering,
            "template was rendered for a different ordering"
        );
        debug_assert_eq!(
            template.values_per_flit(),
            self.config.values_per_flit,
            "template was rendered for a different lane count"
        );
        let (mut plain, pair_index) =
            render_images_with_template(template, inputs, self.config.tiebreak, scratch);
        self.stamp_frames::<W>(&mut plain);
        let wire = if self.config.codes_in_transport() {
            Some(self.config.codec.encode_stream(&plain))
        } else {
            None
        };
        Ok(EncodedTask {
            meta: TaskWireMeta {
                num_pairs: inputs.len(),
                pair_index,
            },
            index_overhead_bits: template.index_overhead_bits(),
            plain,
            wire,
            codec: self.config.codec,
            edc: self.config.edc,
            _word: std::marker::PhantomData,
        })
    }

    /// Encodes a PE's 32-bit MAC response into the wire image of a
    /// single-flit response packet, through the session's link codec (a
    /// one-flit stream, so every codec transmits the data bits verbatim;
    /// bus-invert still carries its invert line as an extra wire).
    #[must_use]
    pub fn encode_response<W: DataWord>(&self, bits: u64) -> PayloadBits {
        let mut image = PayloadBits::zero(self.config.data_width_bits::<W>());
        image.set_field(0, 32, bits);
        if self.config.edc != EdcKind::None {
            // Responses are payload flits too: they traverse the same
            // unreliable wires, so they carry the same check field.
            image = self
                .config
                .edc
                .stamp(&image, self.config.data_width_bits::<W>());
        }
        if self.config.codes_in_transport() {
            self.config
                .codec
                .encode_stream(std::slice::from_ref(&image))
                .pop()
                // btr-lint: allow(panic-in-hot-path, reason = "encode_stream is length-preserving by contract (pinned by the codec_properties tests); one input flit always yields one wire image")
                .expect("one flit in, one wire image out")
        } else {
            // Identity codec (hot path — one response per task), or
            // per-link scope where the links code the wire themselves.
            image
        }
    }

    /// The pre-pipeline encode path, preserved verbatim as a bit-exact
    /// oracle (the `btr_noc::legacy` idiom): slot-level [`OrderedTask`]
    /// materialization via [`order_task_with`], then the codec over the
    /// rendered images. [`CodedTransport::encode_task_cached`] must
    /// produce identical wire images, metadata and accounting — pinned by
    /// `tests/driver_parity.rs` and `tests/transport_parity.rs`.
    ///
    /// # Errors
    ///
    /// Returns [`FlitizeError`] for invalid geometry.
    pub fn encode_task_reference<W: DataWord>(
        &self,
        task: &NeuronTask<W>,
    ) -> Result<EncodedTask<W>, FlitizeError> {
        let ordered = order_task_with(
            task,
            self.config.ordering,
            self.config.values_per_flit,
            self.config.tiebreak,
        )?;
        let mut plain = ordered.payload_flits();
        self.stamp_frames::<W>(&mut plain);
        let wire = if self.config.codes_in_transport() {
            Some(self.config.codec.encode_stream(&plain))
        } else {
            None
        };
        Ok(EncodedTask {
            meta: TaskWireMeta {
                num_pairs: ordered.num_pairs(),
                pair_index: ordered.pair_index().map(<[u16]>::to_vec),
            },
            index_overhead_bits: ordered.index_overhead_bits(),
            plain,
            wire,
            codec: self.config.codec,
            edc: self.config.edc,
            _word: std::marker::PhantomData,
        })
    }

    /// Recovers the plain flit images from what the mesh delivered, per
    /// the session's codec scope. Per-packet scope runs the codec
    /// inverse; per-link scope receives images the links already decoded,
    /// possibly re-aligned onto the full link width with the side-channel
    /// wires zeroed (the NoC widens narrower payload images at
    /// injection). Returns `false` when `flits` already are the plain
    /// `frame_width` images (data + EDC field) and can be borrowed
    /// as-is; `true` when the plain images were written into `buf`
    /// (cleared first; capacity is reused across packets, keeping the
    /// receiver path allocation-free in steady state).
    fn plain_images_into(
        &self,
        flits: &[PayloadBits],
        frame_width: u32,
        buf: &mut Vec<PayloadBits>,
    ) -> Result<bool, CodecError> {
        if self.config.codes_in_transport() {
            buf.clear();
            buf.reserve(flits.len());
            let mut state = self.config.codec.seed_state(frame_width);
            for wire in flits {
                buf.push(state.decode_step(wire)?);
            }
            return Ok(true);
        }
        let extra = match self.config.scope {
            CodecScope::PerLink => self.config.codec.extra_wires(),
            CodecScope::PerPacket => 0, // identity codec
        };
        if extra > 0 && flits.iter().all(|f| f.width() == frame_width + extra) {
            // Link-aligned plain images: drop the side-channel wires the
            // mesh padded in — refusing images whose side channel is not
            // zero (those are coded wires, not plain images).
            buf.clear();
            buf.reserve(flits.len());
            for (i, flit) in flits.iter().enumerate() {
                if flit.field(frame_width, extra) != 0 {
                    return Err(CodecError::SideChannel { flit: i });
                }
                buf.push(flit.resized(frame_width));
            }
            return Ok(true);
        }
        for flit in flits {
            if flit.width() != frame_width {
                return Err(CodecError::WireWidth {
                    got: flit.width(),
                    want: frame_width,
                });
            }
        }
        Ok(false)
    }

    /// The pre-pipeline decode path, preserved verbatim as a bit-exact
    /// oracle: codec inverse, slot-level
    /// [`OrderedTask::from_payload_flits`] reconstruction, then
    /// [`OrderedTask::recover`]. Produces the identical pairing (same
    /// pair order) as [`TransportSession::decode_task`]'s direct path.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] under the same conditions as
    /// [`TransportSession::decode_task`].
    pub fn decode_task_reference<W: DataWord>(
        &self,
        meta: &TaskWireMeta,
        flits: &[PayloadBits],
    ) -> Result<RecoveredTask<W>, TransportError> {
        let frame_width = self.config.frame_width_bits::<W>();
        let mut buf = Vec::new();
        let decoded = self.plain_images_into(flits, frame_width, &mut buf)?;
        let plain: &[PayloadBits] = if decoded { &buf } else { flits };
        let ordered = OrderedTask::<W>::from_payload_flits(
            self.config.ordering,
            meta.num_pairs,
            self.config.values_per_flit,
            meta.pair_index.clone(),
            plain,
        )?;
        Ok(ordered.recover()?)
    }

    /// [`TransportSession::decode_task`] with reusable scratch buffers —
    /// the receiver's hot path, bit-identical to the plain decode.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TransportSession::decode_task`].
    pub fn decode_task_cached<W: DataWord>(
        &self,
        meta: &TaskWireMeta,
        flits: &[PayloadBits],
        scratch: &mut TransportScratch,
    ) -> Result<RecoveredTask<W>, TransportError> {
        let mut out = RecoveredTask {
            pairs: Vec::new(),
            bias: W::from_bits_u64(0),
        };
        self.decode_task_into(meta, flits, scratch, &mut out)?;
        Ok(out)
    }

    /// [`CodedTransport::decode_task_cached`] into a caller-owned
    /// [`RecoveredTask`] (pairs buffer reused across packets) — the
    /// fully allocation-free receiver path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TransportSession::decode_task`].
    pub fn decode_task_into<W: DataWord>(
        &self,
        meta: &TaskWireMeta,
        flits: &[PayloadBits],
        scratch: &mut TransportScratch,
        out: &mut RecoveredTask<W>,
    ) -> Result<(), TransportError> {
        let frame_width = self.config.frame_width_bits::<W>();
        // Field-disjoint scratch borrows: the plain-image buffer is
        // filled here, the assignment buffer inside the recovery.
        let decoded = self.plain_images_into(flits, frame_width, &mut scratch.plain_buf)?;
        let plain: &[PayloadBits] = if decoded { &scratch.plain_buf } else { flits };
        recover_from_images(
            self.config.ordering,
            meta,
            self.config.values_per_flit,
            plain,
            &mut scratch.assign,
            out,
        )
    }

    /// Decodes a delivered response packet's wire images back into the
    /// 32-bit MAC response (inverse of [`CodedTransport::encode_response`]).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Codec`] if the wire images do not match
    /// the session's link width, or [`TransportError::EmptyResponse`] if
    /// the packet carried no payload flits.
    pub fn decode_response<W: DataWord>(
        &self,
        wire: &[PayloadBits],
    ) -> Result<u64, TransportError> {
        let frame_width = self.config.frame_width_bits::<W>();
        let image = wire.first().ok_or(TransportError::EmptyResponse)?;
        if self.config.codes_in_transport() {
            // Responses are single-flit packets, so decoding the first
            // wire image against a fresh (per-packet) state is the whole
            // codec inverse.
            let mut state = self.config.codec.seed_state(frame_width);
            return Ok(state.decode_step(image)?.field(0, 32));
        }
        // Plain image (identity codec, or per-link scope where the links
        // already decoded the wire): read the 32-bit field in place —
        // hot path, one response per task, no allocation.
        let extra = match self.config.scope {
            CodecScope::PerLink => self.config.codec.extra_wires(),
            CodecScope::PerPacket => 0,
        };
        if extra > 0 && image.width() == frame_width + extra {
            if image.field(frame_width, extra) != 0 {
                return Err(CodecError::SideChannel { flit: 0 }.into());
            }
            return Ok(image.field(0, 32));
        }
        if image.width() != frame_width {
            return Err(CodecError::WireWidth {
                got: image.width(),
                want: frame_width,
            }
            .into());
        }
        Ok(image.field(0, 32))
    }

    /// Checks every delivered payload flit's EDC field against its data
    /// bits — the receiving NI's detection step, run *before* decode.
    /// Returns `Ok(true)` when all frames verify (trivially so without an
    /// EDC), `Ok(false)` when at least one frame fails — the NACK that
    /// triggers a retransmission.
    ///
    /// Per-packet coded scope decodes the wire stream against a fresh
    /// seed first (the check rides inside the coded frame); the other
    /// scopes verify the delivered frames directly, accepting
    /// link-aligned images whose upper wires the mesh padded in.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Codec`] when the images do not match the
    /// session's wire geometry at all (a harness bug, not a wire error).
    pub fn verify_delivered_frames<W: DataWord>(
        &self,
        flits: &[PayloadBits],
    ) -> Result<bool, TransportError> {
        let edc = self.config.edc;
        if edc == EdcKind::None {
            return Ok(true);
        }
        let data_width = self.config.data_width_bits::<W>();
        let frame_width = self.config.frame_width_bits::<W>();
        if self.config.codes_in_transport() {
            let mut state = self.config.codec.seed_state(frame_width);
            for wire in flits {
                let frame = state.decode_step(wire)?;
                if !edc.verify(&frame, data_width) {
                    return Ok(false);
                }
            }
            return Ok(true);
        }
        for flit in flits {
            if flit.width() < frame_width {
                return Err(CodecError::WireWidth {
                    got: flit.width(),
                    want: frame_width,
                }
                .into());
            }
            if !edc.verify(flit, data_width) {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl<W: DataWord> TransportSession<W> for CodedTransport {
    fn transport_config(&self) -> &TransportConfig {
        &self.config
    }

    fn encode_task(&self, task: &NeuronTask<W>) -> Result<EncodedTask<W>, FlitizeError> {
        self.encode_task_cached(task, None, &mut TransportScratch::default())
    }

    fn decode_task(
        &self,
        meta: &TaskWireMeta,
        flits: &[PayloadBits],
    ) -> Result<RecoveredTask<W>, TransportError> {
        self.decode_task_cached(meta, flits, &mut TransportScratch::default())
    }

    fn verify_delivered_frames(&self, flits: &[PayloadBits]) -> Result<bool, TransportError> {
        CodedTransport::verify_delivered_frames::<W>(self, flits)
    }
}

/// The receiver's hot decode path: re-types the occupied lanes straight
/// off the plain flit images, producing the identical pairing (same pair
/// *order*, so float MACs re-associate identically) as
/// [`OrderedTask::from_payload_flits`] + [`OrderedTask::recover`],
/// without materializing the slot-level task.
fn recover_from_images<W: DataWord>(
    method: OrderingMethod,
    meta: &TaskWireMeta,
    values_per_flit: usize,
    plain: &[PayloadBits],
    assign_scratch: &mut Vec<(usize, usize)>,
    out: &mut RecoveredTask<W>,
) -> Result<(), TransportError> {
    use crate::flitize::half_half_layout;
    use crate::ordering::round_robin_assignment_into;
    let n = meta.num_pairs;
    if values_per_flit < 2 || !values_per_flit.is_multiple_of(2) {
        return Err(FlitizeError::OddValuesPerFlit(values_per_flit).into());
    }
    if n == 0 || n > usize::from(u16::MAX) {
        return Err(FlitizeError::TooManyValues(n).into());
    }
    let layout = half_half_layout(n, values_per_flit);
    if plain.len() != layout.num_flits {
        return Err(FlitizeError::TooManyValues(plain.len()).into());
    }
    let half = values_per_flit / 2;
    let lane = |f: usize, s: usize| -> W {
        W::from_bits_u64(plain[f].field(s as u32 * W::WIDTH, W::WIDTH))
    };

    // Occupied-slot geometry is fully determined by (num_pairs, lanes):
    // the same assignment the sender used.
    let pairs = &mut out.pairs;
    pairs.clear();
    pairs.reserve(n);
    match method {
        OrderingMethod::Baseline => {
            for rank in 0..n {
                let (f, s) = (rank / half, rank % half);
                pairs.push((lane(f, s), lane(f, half + s)));
            }
        }
        OrderingMethod::Affiliated => {
            round_robin_assignment_into(&layout.weight_occupancy, assign_scratch);
            for &(f, s) in assign_scratch.iter().take(n) {
                pairs.push((lane(f, s), lane(f, half + s)));
            }
        }
        OrderingMethod::Separated => {
            let index = meta
                .pair_index
                .as_ref()
                .ok_or(RecoverError::MissingPairIndex)?;
            round_robin_assignment_into(&layout.weight_occupancy, assign_scratch);
            for (rank, &partner) in index.iter().enumerate() {
                let (inf, ins) = assign_scratch[rank];
                let (wf, ws) = assign_scratch[partner as usize];
                pairs.push((lane(inf, ins), lane(wf, half + ws)));
            }
        }
    }

    let (bf, bs) = layout.bias_position;
    out.bias = lane(bf, half + bs);
    Ok(())
}

/// A total-only [`TransitionRecorder`] for an *unencoded*
/// `values_per_flit`-lane link of word type `W` (no codec side-channel
/// wires; sessions with a codec use
/// [`TransportSession::link_recorder`], which covers the full wire
/// width).
#[must_use]
pub fn link_recorder<W: DataWord>(values_per_flit: usize) -> TransitionRecorder {
    TransitionRecorder::total_only(values_per_flit as u32 * W::WIDTH)
}

/// Streams flit images through a recorder, returning the transitions they
/// added (the link half of the transport lifecycle).
pub fn record_stream(recorder: &mut TransitionRecorder, flits: &[PayloadBits]) -> u64 {
    let before = recorder.total();
    for flit in flits {
        recorder.observe(flit);
    }
    recorder.total() - before
}

/// Row-major occupancy of one packet of `len` values over
/// `values_per_flit`-lane flits: `occupancy[f]` occupied slots in flit
/// `f`, padding in the tail flit. An empty packet still occupies one
/// (all-padding) flit, so baseline and ordered streams keep identical
/// flit counts.
///
/// # Panics
///
/// Panics if `values_per_flit == 0`.
#[must_use]
pub fn packet_occupancy(len: usize, values_per_flit: usize) -> Vec<usize> {
    assert!(values_per_flit > 0, "values_per_flit must be positive");
    let num_flits = len.div_ceil(values_per_flit).max(1);
    (0..num_flits)
        .map(|f| len.saturating_sub(f * values_per_flit).min(values_per_flit))
        .collect()
}

/// Occupancy of a window of packets: each packet keeps its own row-major
/// block (padding at each packet's tail flit), concatenated in order.
///
/// # Panics
///
/// Panics if `values_per_flit == 0`.
#[must_use]
pub fn window_occupancy(
    lens: impl IntoIterator<Item = usize>,
    values_per_flit: usize,
) -> Vec<usize> {
    let mut occupancy = Vec::new();
    for len in lens {
        occupancy.extend(packet_occupancy(len, values_per_flit));
    }
    occupancy
}

/// Row-major slot assignment over an occupancy: rank `r` goes to the
/// `r`-th occupied slot in flit order (the baseline layout, and the
/// [`crate::stream::Placement::RowMajor`] ordered layout).
#[must_use]
pub fn row_major_assignment(occupancy: &[usize]) -> Vec<(usize, usize)> {
    let mut assign = Vec::with_capacity(occupancy.iter().sum());
    for (f, &occ) in occupancy.iter().enumerate() {
        for s in 0..occ {
            assign.push((f, s));
        }
    }
    assign
}

/// Packs one window of packets with an arbitrary ordering rule: the
/// window's values are pooled, permuted by `order`, and dealt round-robin
/// into the occupied slots of the window's flits (padding stays in
/// place). This is the shared engine behind
/// [`crate::stream::build_stream_flits`] and the ordering-rule ablations.
///
/// # Panics
///
/// Panics if `values_per_flit == 0` or `order` returns a permutation of
/// the wrong length.
#[must_use]
pub fn pack_window_with_order<W: DataWord>(
    packets: &[Vec<W>],
    values_per_flit: usize,
    order: impl Fn(&[W]) -> Vec<usize>,
) -> Vec<PayloadBits> {
    let occupancy = window_occupancy(packets.iter().map(Vec::len), values_per_flit);
    let values: Vec<W> = packets.iter().flatten().copied().collect();
    let perm = order(&values);
    let assign = round_robin_assignment(&occupancy);
    pack_values(&values, &occupancy, &assign, &perm, values_per_flit)
}

/// Renders values into flit images of `values_per_flit` word lanes: rank
/// `r` of permutation `perm` lands in slot `assign[r]`; unassigned slots
/// stay zero (padding).
///
/// `perm[rank] = original index` and `assign[rank] = (flit, slot)` must
/// both cover exactly the values.
///
/// # Panics
///
/// Panics if `perm`/`assign` lengths differ from `values.len()`,
/// `values_per_flit == 0`, or the link would exceed [`MAX_WIDTH_BITS`].
#[must_use]
pub fn pack_values<W: DataWord>(
    values: &[W],
    occupancy: &[usize],
    assign: &[(usize, usize)],
    perm: &[usize],
    values_per_flit: usize,
) -> Vec<PayloadBits> {
    assert_eq!(
        perm.len(),
        values.len(),
        "permutation must cover the values"
    );
    assert_eq!(
        assign.len(),
        values.len(),
        "assignment must cover the values"
    );
    assert!(values_per_flit > 0, "values_per_flit must be positive");
    let link_width = values_per_flit as u32 * W::WIDTH;
    assert!(
        link_width <= MAX_WIDTH_BITS,
        "link width {link_width} exceeds maximum {MAX_WIDTH_BITS}"
    );
    let mut flits: Vec<PayloadBits> = (0..occupancy.len())
        .map(|_| PayloadBits::zero(link_width))
        .collect();
    for (rank, &orig) in perm.iter().enumerate() {
        let (f, s) = assign[rank];
        flits[f].set_field(s as u32 * W::WIDTH, W::WIDTH, values[orig].bits_u64());
    }
    flits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::descending_popcount_order;
    use btr_bits::word::Fx8Word;

    fn fx_task(n: usize) -> NeuronTask<Fx8Word> {
        let inputs: Vec<Fx8Word> = (0..n)
            .map(|i| Fx8Word::new((i as i8).wrapping_mul(7)))
            .collect();
        let weights: Vec<Fx8Word> = (0..n)
            .map(|i| Fx8Word::new((i as i8).wrapping_mul(13).wrapping_sub(5)))
            .collect();
        NeuronTask::new(inputs, weights, Fx8Word::new(42)).unwrap()
    }

    #[test]
    fn session_roundtrips_all_methods_tiebreaks_and_codecs() {
        for n in [1usize, 7, 25, 100] {
            let task = fx_task(n);
            for ordering in OrderingMethod::ALL {
                for tiebreak in [TieBreak::Stable, TieBreak::Value] {
                    for codec in CodecKind::ALL {
                        let session = CodedTransport::new(TransportConfig {
                            ordering,
                            tiebreak,
                            values_per_flit: 16,
                            codec,
                            scope: CodecScope::PerPacket,
                            edc: EdcKind::None,
                        });
                        let enc = session.encode_task(&task).unwrap();
                        let rec = session
                            .decode_task(&enc.wire_meta(), &enc.payload_flits())
                            .unwrap();
                        assert_eq!(
                            rec.mac_i64(),
                            task.mac_i64(),
                            "{ordering} {tiebreak:?} {codec} n={n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn reference_and_fast_paths_agree() {
        // The preserved pre-pipeline encode/decode and the direct hot
        // paths must be indistinguishable: same wire images, metadata,
        // accounting, and the same recovered pairing in the same order.
        for n in [1usize, 7, 25, 100] {
            let task = fx_task(n);
            for ordering in OrderingMethod::ALL {
                for codec in CodecKind::ALL {
                    let session =
                        CodedTransport::new(TransportConfig::new(ordering, 16).with_codec(codec));
                    let fast = TransportSession::<Fx8Word>::encode_task(&session, &task).unwrap();
                    let reference = session.encode_task_reference::<Fx8Word>(&task).unwrap();
                    assert_eq!(fast, reference, "{ordering} {codec} n={n}");
                    let rec_fast: RecoveredTask<Fx8Word> = session
                        .decode_task(&fast.wire_meta(), &fast.payload_flits())
                        .unwrap();
                    let rec_ref: RecoveredTask<Fx8Word> = session
                        .decode_task_reference(&reference.wire_meta(), &reference.payload_flits())
                        .unwrap();
                    assert_eq!(rec_fast.pairs, rec_ref.pairs, "{ordering} {codec} n={n}");
                    assert_eq!(rec_fast.bias, rec_ref.bias);
                }
            }
        }
    }

    #[test]
    fn codec_widens_the_wire_and_accounts_side_channel_bits() {
        let task = fx_task(25);
        let config = TransportConfig::new(OrderingMethod::Affiliated, 16);
        let plain = CodedTransport::new(config);
        let coded = CodedTransport::new(config.with_codec(CodecKind::BusInvert));
        let enc_plain = TransportSession::<Fx8Word>::encode_task(&plain, &task).unwrap();
        let enc_coded = TransportSession::<Fx8Word>::encode_task(&coded, &task).unwrap();
        // Same flit count, one extra invert-line wire per flit.
        assert_eq!(
            enc_plain.payload_flits().len(),
            enc_coded.payload_flits().len()
        );
        assert!(enc_plain.payload_flits().iter().all(|f| f.width() == 128));
        assert!(enc_coded.payload_flits().iter().all(|f| f.width() == 129));
        assert_eq!(config.data_width_bits::<Fx8Word>(), 128);
        assert_eq!(config.link_width_bits::<Fx8Word>(), 128);
        assert_eq!(
            config
                .with_codec(CodecKind::BusInvert)
                .link_width_bits::<Fx8Word>(),
            129
        );
        // The codec input is the ordered stream either way.
        assert_eq!(enc_plain.plain_flits(), enc_coded.plain_flits());
        assert_eq!(enc_plain.codec_overhead_bits(), 0);
        assert_eq!(
            enc_coded.codec_overhead_bits(),
            enc_coded.payload_flits().len() as u64
        );
        // Delta-XOR adds no wires and no side-channel bits.
        let xor = CodedTransport::new(config.with_codec(CodecKind::DeltaXor));
        let enc_xor = TransportSession::<Fx8Word>::encode_task(&xor, &task).unwrap();
        assert!(enc_xor.payload_flits().iter().all(|f| f.width() == 128));
        assert_eq!(enc_xor.codec_overhead_bits(), 0);
    }

    #[test]
    fn per_link_scope_defers_the_codec_to_the_wires() {
        let task = fx_task(25);
        let config = TransportConfig::new(OrderingMethod::Separated, 16);
        for codec in CodecKind::ALL {
            let per_packet = CodedTransport::new(config.with_codec(codec));
            let per_link =
                CodedTransport::new(config.with_codec(codec).with_scope(CodecScope::PerLink));
            let pp = TransportSession::<Fx8Word>::encode_task(&per_packet, &task).unwrap();
            let pl = TransportSession::<Fx8Word>::encode_task(&per_link, &task).unwrap();
            // Per-link sessions put the plain ordered images on the wire
            // (the links code them with their own persistent state)...
            assert_eq!(pl.payload_flits(), pl.plain_flits(), "{codec}");
            assert_eq!(pl.plain_flits(), pp.plain_flits(), "{codec}");
            // ...while the side-channel accounting is unchanged: the
            // invert line exists on the physical link in either scope.
            assert_eq!(pl.codec_overhead_bits(), pp.codec_overhead_bits());
            assert_eq!(pl.index_overhead_bits(), pp.index_overhead_bits());
            // The plain images decode directly...
            let rec: RecoveredTask<Fx8Word> = per_link
                .decode_task(&pl.wire_meta(), &pl.payload_flits())
                .unwrap();
            assert_eq!(rec.mac_i64(), task.mac_i64(), "{codec}");
            // ...and so do the same images re-aligned onto the full link
            // width with zeroed side-channel wires, which is how the
            // mesh delivers them.
            let link_width = config.with_codec(codec).link_width_bits::<Fx8Word>();
            let aligned: Vec<PayloadBits> = pl
                .payload_flits()
                .iter()
                .map(|f| f.resized(link_width))
                .collect();
            let rec2: RecoveredTask<Fx8Word> =
                per_link.decode_task(&pl.wire_meta(), &aligned).unwrap();
            assert_eq!(rec2.pairs, rec.pairs, "{codec}");
            // Responses likewise travel plain and decode at either width.
            let resp = per_link.encode_response::<Fx8Word>(0xabcd);
            assert_eq!(resp.width(), 128);
            let bits = per_link
                .decode_response::<Fx8Word>(std::slice::from_ref(&resp))
                .unwrap();
            assert_eq!(bits, 0xabcd);
            let bits = per_link
                .decode_response::<Fx8Word>(&[resp.resized(link_width)])
                .unwrap();
            assert_eq!(bits, 0xabcd, "{codec}");
        }
    }

    #[test]
    fn decode_rejects_codec_width_mismatch() {
        let task = fx_task(9);
        let plain = CodedTransport::new(TransportConfig::new(OrderingMethod::Baseline, 8));
        let coded = CodedTransport::new(
            TransportConfig::new(OrderingMethod::Baseline, 8).with_codec(CodecKind::BusInvert),
        );
        let enc = TransportSession::<Fx8Word>::encode_task(&plain, &task).unwrap();
        // Unencoded wire images (64-bit) into a bus-invert session (65-bit).
        let err = TransportSession::<Fx8Word>::decode_task(
            &coded,
            &enc.wire_meta(),
            &enc.payload_flits(),
        )
        .unwrap_err();
        assert!(matches!(err, TransportError::Codec(_)));
        assert!(err.to_string().contains("link decode failed"));
    }

    #[test]
    fn response_roundtrips_through_every_codec() {
        for codec in CodecKind::ALL {
            let session = CodedTransport::new(
                TransportConfig::new(OrderingMethod::Baseline, 16).with_codec(codec),
            );
            let wire = session.encode_response::<Fx8Word>(0xdead_beef);
            assert_eq!(wire.width(), 128 + codec.extra_wires());
            let bits = session
                .decode_response::<Fx8Word>(std::slice::from_ref(&wire))
                .unwrap();
            assert_eq!(bits, 0xdead_beef, "{codec}");
            // A response with no payload flits is an error, not a 0 MAC.
            let err = session.decode_response::<Fx8Word>(&[]).unwrap_err();
            assert_eq!(err, TransportError::EmptyResponse);
            assert!(err.to_string().contains("no payload flits"));
        }
    }

    #[test]
    fn wire_meta_carries_index_only_for_separated() {
        let task = fx_task(9);
        let enc = |m| {
            let s = CodedTransport::new(TransportConfig::new(m, 8));
            TransportSession::<Fx8Word>::encode_task(&s, &task).unwrap()
        };
        assert!(enc(OrderingMethod::Baseline)
            .wire_meta()
            .pair_index
            .is_none());
        assert!(enc(OrderingMethod::Affiliated)
            .wire_meta()
            .pair_index
            .is_none());
        let o2 = enc(OrderingMethod::Separated);
        assert_eq!(o2.wire_meta().pair_index.unwrap().len(), 9);
        assert_eq!(o2.index_overhead_bits(), 36);
    }

    #[test]
    fn decode_rejects_bad_geometry() {
        let session = CodedTransport::new(TransportConfig::new(OrderingMethod::Baseline, 8));
        let task = fx_task(9);
        let enc = TransportSession::<Fx8Word>::encode_task(&session, &task).unwrap();
        let flits = enc.payload_flits();
        let short = &flits[..1];
        let err = TransportSession::<Fx8Word>::decode_task(&session, &enc.wire_meta(), short)
            .unwrap_err();
        assert!(matches!(err, TransportError::Geometry(_)));
        assert!(err.to_string().contains("decode failed"));
    }

    #[test]
    fn recorder_matches_link_width() {
        let session = CodedTransport::new(TransportConfig::new(OrderingMethod::Separated, 16));
        let rec = TransportSession::<Fx8Word>::link_recorder(&session);
        assert_eq!(rec.width(), 128);
        let task = fx_task(25);
        let enc = TransportSession::<Fx8Word>::encode_task(&session, &task).unwrap();
        let mut rec = TransportSession::<Fx8Word>::link_recorder(&session);
        let added = record_stream(&mut rec, &enc.payload_flits());
        assert_eq!(added, rec.total());
        assert!(rec.flits() == 4);
    }

    #[test]
    fn occupancy_shapes() {
        assert_eq!(packet_occupancy(25, 8), vec![8, 8, 8, 1]);
        assert_eq!(packet_occupancy(0, 8), vec![0]);
        assert_eq!(packet_occupancy(8, 8), vec![8]);
        assert_eq!(window_occupancy([3, 0, 9], 4), vec![3, 0, 4, 4, 1]);
    }

    #[test]
    fn row_major_assignment_is_dense() {
        let assign = row_major_assignment(&[2, 0, 1]);
        assert_eq!(assign, vec![(0, 0), (0, 1), (2, 0)]);
    }

    #[test]
    fn pack_window_matches_manual_packing() {
        let packets: Vec<Vec<Fx8Word>> = vec![
            (0..5).map(|i| Fx8Word::new(i as i8 * 3)).collect(),
            (0..3).map(|i| Fx8Word::new(-(i as i8) - 1)).collect(),
        ];
        let flits = pack_window_with_order(&packets, 4, descending_popcount_order);
        // 5 values -> 2 flits, 3 values -> 1 flit.
        assert_eq!(flits.len(), 3);
        // Total popcount preserved (same multiset of values).
        let total: u32 = flits.iter().map(PayloadBits::popcount).sum();
        let expect: u32 = packets.iter().flatten().map(|w| w.popcount()).sum();
        assert_eq!(total, expect);
    }
}
