//! The shared transport pipeline: one implementation of the
//! `OrderedTask → packets → per-link TransitionRecorder` lifecycle.
//!
//! Three harnesses move ordered values over links: the "without NoC"
//! stream evaluation ([`crate::stream`]), raw NoC injection
//! (`btr_noc::session`), and the full accelerator driver
//! (`btr_accel::driver`). Historically each hand-rolled its own
//! flitization, ordering and recovery calls; this module is now the single
//! place that logic lives:
//!
//! * [`TransportSession`] — the MC/PE contract: encode a
//!   [`NeuronTask`] into wire images plus the [`TaskWireMeta`] a head
//!   flit (and, for O2, the index side channel) carries, and decode a
//!   delivered packet back into a [`RecoveredTask`];
//! * [`OrderedTransport`] — the paper's implementation of that contract
//!   (descending-popcount ordering per [`TransportConfig`]);
//! * the packing helpers ([`packet_occupancy`], [`window_occupancy`],
//!   [`row_major_assignment`], [`pack_values`],
//!   [`pack_window_with_order`]) — the one copy of the
//!   "occupancy → permutation → slot assignment → flit images" pipeline
//!   that both the packet path and the weight-stream path are built on;
//! * [`link_recorder`] / [`record_stream`] — the measurement end of the
//!   lifecycle: a per-link [`TransitionRecorder`] observing the encoded
//!   flits (Fig. 8).

use crate::flitize::{order_task_with, FlitizeError, OrderedTask, RecoverError};
use crate::ordering::{round_robin_assignment, OrderingMethod, TieBreak};
use crate::task::{NeuronTask, RecoveredTask};
use btr_bits::payload::{PayloadBits, MAX_WIDTH_BITS};
use btr_bits::transition::TransitionRecorder;
use btr_bits::word::DataWord;
use serde::{Deserialize, Serialize};

/// Configuration of a transport session: how values are ordered and how
/// many word lanes each flit carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportConfig {
    /// Data transmission ordering (O0/O1/O2).
    pub ordering: OrderingMethod,
    /// Popcount-tie handling in the ordering unit.
    pub tiebreak: TieBreak,
    /// Word lanes per flit (the paper uses 16: 8 inputs + 8 weights).
    pub values_per_flit: usize,
}

impl TransportConfig {
    /// A session with the paper's popcount-only comparator
    /// ([`TieBreak::Stable`]).
    #[must_use]
    pub fn new(ordering: OrderingMethod, values_per_flit: usize) -> Self {
        Self {
            ordering,
            tiebreak: TieBreak::Stable,
            values_per_flit,
        }
    }

    /// Link width in bits for word type `W` under this configuration.
    #[must_use]
    pub fn link_width_bits<W: DataWord>(&self) -> u32 {
        self.values_per_flit as u32 * W::WIDTH
    }
}

/// The metadata a packet carries out-of-band of its payload flits: the
/// extended head-flit fields plus, for separated-ordering, the
/// minimal-bit-width re-pairing index (Sec. IV-B).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskWireMeta {
    /// Number of (input, weight) pairs in the task.
    pub num_pairs: usize,
    /// O2 re-pairing index (`pair_index[input_rank] = weight_rank`).
    pub pair_index: Option<Vec<u16>>,
}

/// A task encoded for transmission: ordered flit images plus wire
/// metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedTask<W> {
    ordered: OrderedTask<W>,
}

impl<W: DataWord> EncodedTask<W> {
    /// The payload flit images in transmission order.
    #[must_use]
    pub fn payload_flits(&self) -> Vec<PayloadBits> {
        self.ordered.payload_flits()
    }

    /// The metadata the receiver needs to decode the packet.
    #[must_use]
    pub fn wire_meta(&self) -> TaskWireMeta {
        TaskWireMeta {
            num_pairs: self.ordered.num_pairs(),
            pair_index: self.ordered.pair_index().map(<[u16]>::to_vec),
        }
    }

    /// Side-channel overhead of the separated-ordering index in bits.
    #[must_use]
    pub fn index_overhead_bits(&self) -> u64 {
        self.ordered.index_overhead_bits()
    }

    /// The underlying ordered task (slot-level view).
    #[must_use]
    pub fn ordered(&self) -> &OrderedTask<W> {
        &self.ordered
    }
}

/// Errors from the decode half of a transport session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The flit images do not match the expected layout geometry.
    Geometry(FlitizeError),
    /// The slot structure decoded, but operand recovery failed.
    Recover(RecoverError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Geometry(e) => write!(f, "wire decode failed: {e}"),
            TransportError::Recover(e) => write!(f, "operand recovery failed: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<FlitizeError> for TransportError {
    fn from(e: FlitizeError) -> Self {
        TransportError::Geometry(e)
    }
}

impl From<RecoverError> for TransportError {
    fn from(e: RecoverError) -> Self {
        TransportError::Recover(e)
    }
}

/// The transport contract between a memory controller and a processing
/// element: `NeuronTask → OrderedTask → packets` on the sending side,
/// `packets → RecoveredTask` on the receiving side.
///
/// Implementations must round-trip: for any valid task,
/// `decode_task(encode_task(t).wire_meta(), encode_task(t).payload_flits())`
/// recovers a pairing with the same multiply-accumulate result.
pub trait TransportSession<W: DataWord> {
    /// The session configuration.
    fn transport_config(&self) -> &TransportConfig;

    /// Orders and flitizes a task for transmission.
    ///
    /// # Errors
    ///
    /// Returns [`FlitizeError`] for invalid geometry (odd lane count, link
    /// too wide, oversized task).
    fn encode_task(&self, task: &NeuronTask<W>) -> Result<EncodedTask<W>, FlitizeError>;

    /// Decodes delivered payload flits back into paired operands.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the flit images do not match the
    /// layout implied by `meta` or recovery fails.
    fn decode_task(
        &self,
        meta: &TaskWireMeta,
        flits: &[PayloadBits],
    ) -> Result<RecoveredTask<W>, TransportError>;

    /// A per-link transition recorder matching this session's link width —
    /// the measurement end of the transport lifecycle (Fig. 8).
    fn link_recorder(&self) -> TransitionRecorder {
        TransitionRecorder::total_only(self.transport_config().link_width_bits::<W>())
    }
}

/// The paper's transport: descending-popcount ordering at the MC,
/// slot-pairing (O0/O1) or index-lookup (O2) recovery at the PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderedTransport {
    config: TransportConfig,
}

impl OrderedTransport {
    /// Creates a session with the given configuration.
    #[must_use]
    pub fn new(config: TransportConfig) -> Self {
        Self { config }
    }
}

impl<W: DataWord> TransportSession<W> for OrderedTransport {
    fn transport_config(&self) -> &TransportConfig {
        &self.config
    }

    fn encode_task(&self, task: &NeuronTask<W>) -> Result<EncodedTask<W>, FlitizeError> {
        let ordered = order_task_with(
            task,
            self.config.ordering,
            self.config.values_per_flit,
            self.config.tiebreak,
        )?;
        Ok(EncodedTask { ordered })
    }

    fn decode_task(
        &self,
        meta: &TaskWireMeta,
        flits: &[PayloadBits],
    ) -> Result<RecoveredTask<W>, TransportError> {
        let ordered = OrderedTask::<W>::from_payload_flits(
            self.config.ordering,
            meta.num_pairs,
            self.config.values_per_flit,
            meta.pair_index.clone(),
            flits,
        )?;
        Ok(ordered.recover()?)
    }
}

/// A total-only [`TransitionRecorder`] for a `values_per_flit`-lane link
/// of word type `W`.
#[must_use]
pub fn link_recorder<W: DataWord>(values_per_flit: usize) -> TransitionRecorder {
    TransitionRecorder::total_only(values_per_flit as u32 * W::WIDTH)
}

/// Streams flit images through a recorder, returning the transitions they
/// added (the link half of the transport lifecycle).
pub fn record_stream(recorder: &mut TransitionRecorder, flits: &[PayloadBits]) -> u64 {
    let before = recorder.total();
    for flit in flits {
        recorder.observe(flit);
    }
    recorder.total() - before
}

/// Row-major occupancy of one packet of `len` values over
/// `values_per_flit`-lane flits: `occupancy[f]` occupied slots in flit
/// `f`, padding in the tail flit. An empty packet still occupies one
/// (all-padding) flit, so baseline and ordered streams keep identical
/// flit counts.
///
/// # Panics
///
/// Panics if `values_per_flit == 0`.
#[must_use]
pub fn packet_occupancy(len: usize, values_per_flit: usize) -> Vec<usize> {
    assert!(values_per_flit > 0, "values_per_flit must be positive");
    let num_flits = len.div_ceil(values_per_flit).max(1);
    (0..num_flits)
        .map(|f| len.saturating_sub(f * values_per_flit).min(values_per_flit))
        .collect()
}

/// Occupancy of a window of packets: each packet keeps its own row-major
/// block (padding at each packet's tail flit), concatenated in order.
///
/// # Panics
///
/// Panics if `values_per_flit == 0`.
#[must_use]
pub fn window_occupancy(
    lens: impl IntoIterator<Item = usize>,
    values_per_flit: usize,
) -> Vec<usize> {
    let mut occupancy = Vec::new();
    for len in lens {
        occupancy.extend(packet_occupancy(len, values_per_flit));
    }
    occupancy
}

/// Row-major slot assignment over an occupancy: rank `r` goes to the
/// `r`-th occupied slot in flit order (the baseline layout, and the
/// [`crate::stream::Placement::RowMajor`] ordered layout).
#[must_use]
pub fn row_major_assignment(occupancy: &[usize]) -> Vec<(usize, usize)> {
    let mut assign = Vec::with_capacity(occupancy.iter().sum());
    for (f, &occ) in occupancy.iter().enumerate() {
        for s in 0..occ {
            assign.push((f, s));
        }
    }
    assign
}

/// Packs one window of packets with an arbitrary ordering rule: the
/// window's values are pooled, permuted by `order`, and dealt round-robin
/// into the occupied slots of the window's flits (padding stays in
/// place). This is the shared engine behind
/// [`crate::stream::build_stream_flits`] and the ordering-rule ablations.
///
/// # Panics
///
/// Panics if `values_per_flit == 0` or `order` returns a permutation of
/// the wrong length.
#[must_use]
pub fn pack_window_with_order<W: DataWord>(
    packets: &[Vec<W>],
    values_per_flit: usize,
    order: impl Fn(&[W]) -> Vec<usize>,
) -> Vec<PayloadBits> {
    let occupancy = window_occupancy(packets.iter().map(Vec::len), values_per_flit);
    let values: Vec<W> = packets.iter().flatten().copied().collect();
    let perm = order(&values);
    let assign = round_robin_assignment(&occupancy);
    pack_values(&values, &occupancy, &assign, &perm, values_per_flit)
}

/// Renders values into flit images of `values_per_flit` word lanes: rank
/// `r` of permutation `perm` lands in slot `assign[r]`; unassigned slots
/// stay zero (padding).
///
/// `perm[rank] = original index` and `assign[rank] = (flit, slot)` must
/// both cover exactly the values.
///
/// # Panics
///
/// Panics if `perm`/`assign` lengths differ from `values.len()`,
/// `values_per_flit == 0`, or the link would exceed [`MAX_WIDTH_BITS`].
#[must_use]
pub fn pack_values<W: DataWord>(
    values: &[W],
    occupancy: &[usize],
    assign: &[(usize, usize)],
    perm: &[usize],
    values_per_flit: usize,
) -> Vec<PayloadBits> {
    assert_eq!(
        perm.len(),
        values.len(),
        "permutation must cover the values"
    );
    assert_eq!(
        assign.len(),
        values.len(),
        "assignment must cover the values"
    );
    assert!(values_per_flit > 0, "values_per_flit must be positive");
    let link_width = values_per_flit as u32 * W::WIDTH;
    assert!(
        link_width <= MAX_WIDTH_BITS,
        "link width {link_width} exceeds maximum {MAX_WIDTH_BITS}"
    );
    let mut flits: Vec<PayloadBits> = (0..occupancy.len())
        .map(|_| PayloadBits::zero(link_width))
        .collect();
    for (rank, &orig) in perm.iter().enumerate() {
        let (f, s) = assign[rank];
        flits[f].set_field(s as u32 * W::WIDTH, W::WIDTH, values[orig].bits_u64());
    }
    flits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::descending_popcount_order;
    use btr_bits::word::Fx8Word;

    fn fx_task(n: usize) -> NeuronTask<Fx8Word> {
        let inputs: Vec<Fx8Word> = (0..n)
            .map(|i| Fx8Word::new((i as i8).wrapping_mul(7)))
            .collect();
        let weights: Vec<Fx8Word> = (0..n)
            .map(|i| Fx8Word::new((i as i8).wrapping_mul(13).wrapping_sub(5)))
            .collect();
        NeuronTask::new(inputs, weights, Fx8Word::new(42)).unwrap()
    }

    #[test]
    fn session_roundtrips_all_methods_and_tiebreaks() {
        for n in [1usize, 7, 25, 100] {
            let task = fx_task(n);
            for ordering in OrderingMethod::ALL {
                for tiebreak in [TieBreak::Stable, TieBreak::Value] {
                    let session = OrderedTransport::new(TransportConfig {
                        ordering,
                        tiebreak,
                        values_per_flit: 16,
                    });
                    let enc = session.encode_task(&task).unwrap();
                    let rec = session
                        .decode_task(&enc.wire_meta(), &enc.payload_flits())
                        .unwrap();
                    assert_eq!(
                        rec.mac_i64(),
                        task.mac_i64(),
                        "{ordering} {tiebreak:?} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn wire_meta_carries_index_only_for_separated() {
        let task = fx_task(9);
        let enc = |m| {
            let s = OrderedTransport::new(TransportConfig::new(m, 8));
            TransportSession::<Fx8Word>::encode_task(&s, &task).unwrap()
        };
        assert!(enc(OrderingMethod::Baseline)
            .wire_meta()
            .pair_index
            .is_none());
        assert!(enc(OrderingMethod::Affiliated)
            .wire_meta()
            .pair_index
            .is_none());
        let o2 = enc(OrderingMethod::Separated);
        assert_eq!(o2.wire_meta().pair_index.unwrap().len(), 9);
        assert_eq!(o2.index_overhead_bits(), 36);
    }

    #[test]
    fn decode_rejects_bad_geometry() {
        let session = OrderedTransport::new(TransportConfig::new(OrderingMethod::Baseline, 8));
        let task = fx_task(9);
        let enc = TransportSession::<Fx8Word>::encode_task(&session, &task).unwrap();
        let flits = enc.payload_flits();
        let short = &flits[..1];
        let err = TransportSession::<Fx8Word>::decode_task(&session, &enc.wire_meta(), short)
            .unwrap_err();
        assert!(matches!(err, TransportError::Geometry(_)));
        assert!(err.to_string().contains("decode failed"));
    }

    #[test]
    fn recorder_matches_link_width() {
        let session = OrderedTransport::new(TransportConfig::new(OrderingMethod::Separated, 16));
        let rec = TransportSession::<Fx8Word>::link_recorder(&session);
        assert_eq!(rec.width(), 128);
        let task = fx_task(25);
        let enc = TransportSession::<Fx8Word>::encode_task(&session, &task).unwrap();
        let mut rec = TransportSession::<Fx8Word>::link_recorder(&session);
        let added = record_stream(&mut rec, &enc.payload_flits());
        assert_eq!(added, rec.total());
        assert!(rec.flits() == 4);
    }

    #[test]
    fn occupancy_shapes() {
        assert_eq!(packet_occupancy(25, 8), vec![8, 8, 8, 1]);
        assert_eq!(packet_occupancy(0, 8), vec![0]);
        assert_eq!(packet_occupancy(8, 8), vec![8]);
        assert_eq!(window_occupancy([3, 0, 9], 4), vec![3, 0, 4, 4, 1]);
    }

    #[test]
    fn row_major_assignment_is_dense() {
        let assign = row_major_assignment(&[2, 0, 1]);
        assert_eq!(assign, vec![(0, 0), (0, 1), (2, 0)]);
    }

    #[test]
    fn pack_window_matches_manual_packing() {
        let packets: Vec<Vec<Fx8Word>> = vec![
            (0..5).map(|i| Fx8Word::new(i as i8 * 3)).collect(),
            (0..3).map(|i| Fx8Word::new(-(i as i8) - 1)).collect(),
        ];
        let flits = pack_window_with_order(&packets, 4, descending_popcount_order);
        // 5 values -> 2 flits, 3 values -> 1 flit.
        assert_eq!(flits.len(), 3);
        // Total popcount preserved (same multiset of values).
        let total: u32 = flits.iter().map(PayloadBits::popcount).sum();
        let expect: u32 = packets.iter().flatten().map(|w| w.popcount()).sum();
        assert_eq!(total, expect);
    }
}
