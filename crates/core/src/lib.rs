//! # btr-core — `'1'`-bit-count data transmission ordering
//!
//! This crate implements the paper's primary contribution: reducing bit
//! transitions (BT) on NoC links by reordering the values carried in a
//! packet's flits according to their `'1'`-bit counts.
//!
//! * [`theory`] — the mathematical model of Sec. III: expected BT between
//!   two words as a function of their popcounts (Eq. 1–2), the total-BT
//!   objective over flits (Eq. 3), the pair-product objective `F = Σ xi·yi`
//!   (Eq. 4), and a brute-force oracle verifying that the descending
//!   interleaved ordering is globally optimal on small instances.
//! * [`ordering`] — the ordering rule itself: descending popcount sort plus
//!   round-robin placement across a packet's flits (Fig. 3), and the three
//!   evaluation configurations **O0** (baseline), **O1**
//!   (affiliated-ordering) and **O2** (separated-ordering).
//! * [`flitize`] — half-half flitization (Fig. 2): inputs in the left half
//!   of each flit, weights (then bias, then zero padding) in the right half.
//! * [`task`] — [`task::NeuronTask`], the unit of DNN work transmitted from
//!   a memory controller to a processing element, and its MAC semantics.
//! * [`unit`] — a behavioral model of the hardware ordering unit (Fig. 14):
//!   SWAR popcount followed by a sorting network, with compare-exchange and
//!   stage accounting for the hardware cost model in `btr-hw`.
//! * [`transport`] — the shared transport pipeline: the
//!   [`transport::TransportSession`] encode/decode contract consumed by
//!   the stream harness, the NoC injection layer and the accelerator
//!   driver, plus the one copy of the occupancy/packing helpers.
//! * [`stream`] — the "without NoC" evaluation harness behind Table I and
//!   Figs. 9–11: packet streams on a single link.
//! * [`encoding`] — bus-invert and delta-encoding baselines from the related
//!   work, used for ablation comparisons (not part of the paper's method).
//! * [`codec`] — those encodings packaged as pluggable backends: the
//!   stateless scheme ([`codec::CodecKind`]) plus the explicit per-link
//!   state object ([`codec::LinkCodecState`]), composed with the ordering
//!   stage by [`transport::CodedTransport`] (per-packet scope) or owned
//!   by the NoC links themselves (per-link scope,
//!   [`codec::CodecScope::PerLink`]) so sweeps can ablate
//!   `{ordering × codec × scope}`.
//! * [`edc`] — per-flit error-detecting codes ([`edc::EdcKind`]: parity or
//!   CRC-8) stamped on the plain image and carried on extra side-channel
//!   wires, the detection half of the unreliable-link retransmission
//!   protocol (recovery lives in the NoC's network interface).
//!
//! # Quickstart
//!
//! ```
//! use btr_bits::word::Fx8Word;
//! use btr_core::ordering::OrderingMethod;
//! use btr_core::task::NeuronTask;
//!
//! // A 3x3 convolution task: 9 inputs, 9 weights, 1 bias.
//! let inputs: Vec<Fx8Word> = (1..=9).map(Fx8Word::new).collect();
//! let weights: Vec<Fx8Word> = (-4..=4).map(Fx8Word::new).collect();
//! let task = NeuronTask::new(inputs, weights, Fx8Word::new(1)).unwrap();
//!
//! // Order it for transmission with 8 values per flit (4 inputs + 4 weights).
//! let ordered = btr_core::flitize::order_task(&task, OrderingMethod::Separated, 8).unwrap();
//!
//! // The receiver recovers the exact same multiply-accumulate result.
//! let recovered = ordered.recover().unwrap();
//! assert_eq!(recovered.mac_i64(), task.mac_i64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod edc;
pub mod encoding;
pub mod flitize;
pub mod ordering;
pub mod stream;
pub mod task;
pub mod theory;
pub mod transport;
pub mod unit;

pub use codec::{CodecKind, CodecScope, LinkCodecState, ResyncPolicy};
pub use edc::EdcKind;
pub use flitize::{order_task, EncodeTemplate, FlitRow, OrderedTask, RecoverError, Slot};
pub use ordering::OrderingMethod;
pub use task::NeuronTask;
pub use transport::{
    CodedTransport, EncodedTask, TaskWireMeta, TransportConfig, TransportError, TransportSession,
};
