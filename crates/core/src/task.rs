//! [`NeuronTask`] — the unit of DNN work shipped over the NoC.
//!
//! "A typical neuron calculation in NOC-DNA involves the inputs and weights"
//! (Sec. IV): one task carries the `k·k·C_in` input window, the matching
//! weights and a bias from a memory controller to a processing element,
//! which replies with the multiply-accumulate result. Fig. 2's example is a
//! LeNet 5×5 kernel: 25 inputs + 25 weights + 1 bias.

use btr_bits::word::{DataWord, F32Word, Fx8Word};
use serde::{Deserialize, Serialize};

/// Error returned when constructing an invalid [`NeuronTask`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The task has no operands.
    Empty,
    /// Inputs and weights have different lengths and cannot be paired.
    LengthMismatch {
        /// Number of inputs provided.
        inputs: usize,
        /// Number of weights provided.
        weights: usize,
    },
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Empty => write!(f, "neuron task must carry at least one operand pair"),
            TaskError::LengthMismatch { inputs, weights } => write!(
                f,
                "inputs ({inputs}) and weights ({weights}) must pair one-to-one"
            ),
        }
    }
}

impl std::error::Error for TaskError {}

/// One neuron computation: paired inputs and weights plus a bias.
///
/// The pairing `inputs[i] ↔ weights[i]` is the semantic content the NoC must
/// preserve; the ordering methods in [`crate::flitize`] are free to permute
/// transmission order precisely because the dot product is order-invariant
/// over *pairs* (Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuronTask<W> {
    inputs: Vec<W>,
    weights: Vec<W>,
    bias: W,
}

impl<W: DataWord> NeuronTask<W> {
    /// Creates a task from paired operands.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError`] if the slices are empty or their lengths differ.
    pub fn new(inputs: Vec<W>, weights: Vec<W>, bias: W) -> Result<Self, TaskError> {
        if inputs.len() != weights.len() {
            return Err(TaskError::LengthMismatch {
                inputs: inputs.len(),
                weights: weights.len(),
            });
        }
        if inputs.is_empty() {
            return Err(TaskError::Empty);
        }
        Ok(Self {
            inputs,
            weights,
            bias,
        })
    }

    /// Number of (input, weight) pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Always false: construction rejects empty tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The input operands in pairing order.
    #[must_use]
    pub fn inputs(&self) -> &[W] {
        &self.inputs
    }

    /// The weight operands in pairing order.
    #[must_use]
    pub fn weights(&self) -> &[W] {
        &self.weights
    }

    /// The bias operand.
    #[must_use]
    pub fn bias(&self) -> W {
        self.bias
    }

    /// Total number of values the task transmits (inputs + weights + bias).
    #[must_use]
    pub fn value_count(&self) -> usize {
        2 * self.inputs.len() + 1
    }
}

impl NeuronTask<F32Word> {
    /// The float-32 multiply-accumulate result: `Σ inputs[i]·weights[i] + bias`.
    ///
    /// Accumulates in `f64` so the reference result is insensitive to
    /// summation order; receivers that accumulate in a different order still
    /// match to within float tolerance.
    #[must_use]
    pub fn mac_f64(&self) -> f64 {
        let dot: f64 = self
            .inputs
            .iter()
            .zip(self.weights.iter())
            .map(|(i, w)| f64::from(i.value()) * f64::from(w.value()))
            .sum();
        dot + f64::from(self.bias.value())
    }
}

impl NeuronTask<Fx8Word> {
    /// The fixed-8 multiply-accumulate result in integer arithmetic:
    /// `Σ code(inputs[i])·code(weights[i]) + code(bias)`.
    ///
    /// Exact and order-independent — the property the integration tests use
    /// to show ordering never changes fixed-point inference outputs.
    #[must_use]
    pub fn mac_i64(&self) -> i64 {
        let dot: i64 = self
            .inputs
            .iter()
            .zip(self.weights.iter())
            .map(|(i, w)| i64::from(i.code()) * i64::from(w.code()))
            .sum();
        dot + i64::from(self.bias.code())
    }
}

/// A task recovered at the receiver from the transmitted flit layout:
/// re-paired operands plus the bias. Pair order may differ from the
/// original task's, but the multiset of pairs is identical.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredTask<W> {
    /// Re-paired (input, weight) operands.
    pub pairs: Vec<(W, W)>,
    /// The bias operand.
    pub bias: W,
}

impl RecoveredTask<F32Word> {
    /// Float-32 MAC over the recovered pairs (f64 accumulator).
    #[must_use]
    pub fn mac_f64(&self) -> f64 {
        let dot: f64 = self
            .pairs
            .iter()
            .map(|(i, w)| f64::from(i.value()) * f64::from(w.value()))
            .sum();
        dot + f64::from(self.bias.value())
    }
}

impl RecoveredTask<Fx8Word> {
    /// Exact integer MAC over the recovered pairs.
    #[must_use]
    pub fn mac_i64(&self) -> i64 {
        let dot: i64 = self
            .pairs
            .iter()
            .map(|(i, w)| i64::from(i.code()) * i64::from(w.code()))
            .sum();
        dot + i64::from(self.bias.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        let err = NeuronTask::new(vec![Fx8Word::new(1)], vec![], Fx8Word::new(0)).unwrap_err();
        assert!(matches!(
            err,
            TaskError::LengthMismatch {
                inputs: 1,
                weights: 0
            }
        ));
        let err = NeuronTask::<Fx8Word>::new(vec![], vec![], Fx8Word::new(0)).unwrap_err();
        assert_eq!(err, TaskError::Empty);
        assert!(err.to_string().contains("at least one"));
    }

    #[test]
    fn fx8_mac_is_exact() {
        let t = NeuronTask::new(
            vec![Fx8Word::new(3), Fx8Word::new(-2)],
            vec![Fx8Word::new(10), Fx8Word::new(5)],
            Fx8Word::new(7),
        )
        .unwrap();
        assert_eq!(t.mac_i64(), 3 * 10 + (-2) * 5 + 7);
        assert_eq!(t.len(), 2);
        assert_eq!(t.value_count(), 5);
    }

    #[test]
    fn f32_mac() {
        let t = NeuronTask::new(
            vec![F32Word::new(0.5), F32Word::new(2.0)],
            vec![F32Word::new(4.0), F32Word::new(-1.0)],
            F32Word::new(0.25),
        )
        .unwrap();
        assert!((t.mac_f64() - (0.5 * 4.0 - 2.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn recovered_mac_matches_any_pair_order() {
        let pairs = vec![
            (Fx8Word::new(3), Fx8Word::new(10)),
            (Fx8Word::new(-2), Fx8Word::new(5)),
        ];
        let mut rev = pairs.clone();
        rev.reverse();
        let a = RecoveredTask {
            pairs,
            bias: Fx8Word::new(7),
        };
        let b = RecoveredTask {
            pairs: rev,
            bias: Fx8Word::new(7),
        };
        assert_eq!(a.mac_i64(), b.mac_i64());
    }
}
