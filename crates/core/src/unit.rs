//! Behavioral model of the hardware ordering unit (Fig. 14).
//!
//! The paper's unit combines a SWAR pop-count stage with a bubble-sort
//! network; "the choice of sorting algorithms (Bubble Sort / Bitonic Sort /
//! Merge Sort) to achieve the ordering is not discussed" (Sec. III-B), so
//! this model supports several sorting networks and reports their
//! compare-exchange and stage counts for the area/latency ablation in
//! `btr-hw`.
//!
//! The model is *behavioral*: it performs the same (popcount, payload)
//! compare-exchange operations a hardware network would, counts them, and
//! produces the sorted value sequence. Tests assert the result's popcount
//! sequence is exactly the one [`crate::ordering::descending_popcount_order`]
//! produces (sorting networks are not stable, so tie-breaking may differ,
//! but the popcount sequence — the only thing BT depends on — matches).

use btr_bits::word::DataWord;
use serde::{Deserialize, Serialize};

/// Sorting network used by the ordering unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SorterKind {
    /// Odd-even transposition network (the hardware-friendly "bubble sort"
    /// of Fig. 14): `n` stages of alternating odd/even compare-exchanges.
    Bubble,
    /// Batcher bitonic network: `O(log² n)` stages, requires padding to a
    /// power of two (the model pads with popcount-(-1) sentinels).
    Bitonic,
    /// Batcher odd-even merge network ("merge sort" in hardware form).
    OddEvenMerge,
}

impl SorterKind {
    /// All supported networks.
    pub const ALL: [SorterKind; 3] = [
        SorterKind::Bubble,
        SorterKind::Bitonic,
        SorterKind::OddEvenMerge,
    ];

    /// Display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            SorterKind::Bubble => "bubble (odd-even transposition)",
            SorterKind::Bitonic => "bitonic",
            SorterKind::OddEvenMerge => "odd-even merge",
        }
    }
}

/// Cost report of one ordering operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitReport {
    /// Number of compare-exchange operations executed.
    pub compare_exchanges: u64,
    /// Number of network stages (one stage = one pipeline cycle; compare-
    /// exchanges within a stage are parallel in hardware).
    pub stages: u32,
    /// Popcount-tree stages that ran before sorting (`log2` of word width).
    pub popcount_stages: u32,
    /// Total cycles assuming one cycle per popcount stage and per sort
    /// stage — the latency the layer-level interval must hide (Sec. IV-C).
    pub cycles: u32,
}

/// Behavioral ordering unit: pop-count + sorting network.
///
/// One unit sits next to each memory controller ("near off-chip memory
/// placement", Sec. IV-C-2); `btr-accel` instantiates one per MC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderingUnit {
    sorter: SorterKind,
}

impl OrderingUnit {
    /// Creates a unit using the given sorting network.
    #[must_use]
    pub fn new(sorter: SorterKind) -> Self {
        Self { sorter }
    }

    /// The unit the paper synthesizes (bubble sort, Fig. 14).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(SorterKind::Bubble)
    }

    /// The sorting network in use.
    #[must_use]
    pub fn sorter(&self) -> SorterKind {
        self.sorter
    }

    /// Sorts `values` by descending popcount, returning the sorted sequence
    /// and the hardware cost report.
    ///
    /// Affiliated-ordering runs the unit once over the weights (inputs
    /// follow); separated-ordering runs it twice ("this unit can be used for
    /// separated-ordering with double time consumption", Sec. V-C).
    #[must_use]
    pub fn sort_descending<W: DataWord>(&self, values: &[W]) -> (Vec<W>, UnitReport) {
        // Popcount stage: one SWAR tree per lane, log2(width) levels.
        let popcount_stages = W::WIDTH.next_power_of_two().trailing_zeros();
        let mut keyed: Vec<(i64, W)> = values
            .iter()
            .map(|&w| (i64::from(w.popcount()), w))
            .collect();
        let (compare_exchanges, stages) = match self.sorter {
            SorterKind::Bubble => odd_even_transposition(&mut keyed),
            SorterKind::Bitonic => bitonic(&mut keyed),
            SorterKind::OddEvenMerge => odd_even_merge(&mut keyed),
        };
        let sorted = keyed.into_iter().map(|(_, w)| w).collect();
        let report = UnitReport {
            compare_exchanges,
            stages,
            popcount_stages,
            cycles: popcount_stages + stages,
        };
        (sorted, report)
    }
}

impl Default for OrderingUnit {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Compare-exchange: keeps the larger key first (descending order).
fn compare_exchange<W>(data: &mut [(i64, W)], i: usize, j: usize)
where
    W: Copy,
{
    if data[i].0 < data[j].0 {
        data.swap(i, j);
    }
}

/// Odd-even transposition sort: `n` alternating stages.
fn odd_even_transposition<W: Copy>(data: &mut [(i64, W)]) -> (u64, u32) {
    let n = data.len();
    if n < 2 {
        return (0, 0);
    }
    let mut ce = 0u64;
    for stage in 0..n {
        let start = stage % 2;
        let mut i = start;
        while i + 1 < n {
            compare_exchange(data, i, i + 1);
            ce += 1;
            i += 2;
        }
    }
    (ce, n as u32)
}

/// Batcher bitonic sorting network. Pads to a power of two with sentinels
/// of key −1 (they sink to the end and are removed).
fn bitonic<W: Copy>(data: &mut [(i64, W)]) -> (u64, u32) {
    let n = data.len();
    if n < 2 {
        return (0, 0);
    }
    let padded = n.next_power_of_two();
    let sentinel_payload = data[0].1;
    let mut buf: Vec<(i64, W)> = data.to_vec();
    buf.resize(padded, (-1, sentinel_payload));

    let mut ce = 0u64;
    let mut stages = 0u32;
    let mut k = 2;
    while k <= padded {
        let mut j = k / 2;
        while j >= 1 {
            stages += 1;
            for i in 0..padded {
                let partner = i ^ j;
                if partner > i {
                    // Descending overall: the "ascending" blocks of the
                    // classic network are flipped.
                    let descending = (i & k) == 0;
                    if descending {
                        if buf[i].0 < buf[partner].0 {
                            buf.swap(i, partner);
                        }
                    } else if buf[i].0 > buf[partner].0 {
                        buf.swap(i, partner);
                    }
                    ce += 1;
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    data.copy_from_slice(&buf[..n]);
    (ce, stages)
}

/// Batcher odd-even merge sorting network (recursive construction),
/// operating on a power-of-two padded buffer like [`bitonic`].
fn odd_even_merge<W: Copy>(data: &mut [(i64, W)]) -> (u64, u32) {
    let n = data.len();
    if n < 2 {
        return (0, 0);
    }
    let padded = n.next_power_of_two();
    let sentinel_payload = data[0].1;
    let mut buf: Vec<(i64, W)> = data.to_vec();
    buf.resize(padded, (-1, sentinel_payload));

    // Collect the network as (stage, i, j) compare pairs, then execute
    // stage by stage to count pipeline depth.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    build_oem(&mut pairs, 0, padded);

    // Assign each comparator the earliest stage after both its operands'
    // previous comparators (ASAP scheduling), the standard way to count a
    // network's depth.
    let mut ready = vec![0u32; padded];
    let mut ce = 0u64;
    let mut depth = 0u32;
    for &(i, j) in &pairs {
        let stage = ready[i].max(ready[j]);
        if buf[i].0 < buf[j].0 {
            buf.swap(i, j);
        }
        ce += 1;
        ready[i] = stage + 1;
        ready[j] = stage + 1;
        depth = depth.max(stage + 1);
    }
    data.copy_from_slice(&buf[..n]);
    (ce, depth)
}

/// Emits Batcher odd-even mergesort comparator pairs for `buf[lo..lo+n)`.
fn build_oem(pairs: &mut Vec<(usize, usize)>, lo: usize, n: usize) {
    if n <= 1 {
        return;
    }
    let m = n / 2;
    build_oem(pairs, lo, m);
    build_oem(pairs, lo + m, m);
    build_oem_merge(pairs, lo, n, 1);
}

fn build_oem_merge(pairs: &mut Vec<(usize, usize)>, lo: usize, n: usize, r: usize) {
    let m = r * 2;
    if m < n {
        build_oem_merge(pairs, lo, n, m);
        build_oem_merge(pairs, lo + r, n, m);
        let mut i = lo + r;
        while i + r < lo + n {
            pairs.push((i, i + r));
            i += m;
        }
    } else {
        pairs.push((lo, lo + r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::descending_popcount_order;
    use btr_bits::word::Fx8Word;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_words(n: usize, seed: u64) -> Vec<Fx8Word> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Fx8Word::new(rng.gen())).collect()
    }

    fn popcounts(words: &[Fx8Word]) -> Vec<u32> {
        words.iter().map(|w| w.popcount()).collect()
    }

    #[test]
    fn all_sorters_produce_descending_popcounts() {
        for kind in SorterKind::ALL {
            let unit = OrderingUnit::new(kind);
            for n in [0usize, 1, 2, 3, 7, 8, 16, 25, 33] {
                let words = random_words(n, 7 + n as u64);
                let (sorted, _) = unit.sort_descending(&words);
                assert_eq!(sorted.len(), n);
                let pcs = popcounts(&sorted);
                assert!(
                    pcs.windows(2).all(|w| w[0] >= w[1]),
                    "{kind:?} n={n}: {pcs:?}"
                );
            }
        }
    }

    #[test]
    fn sorters_match_reference_popcount_sequence() {
        for kind in SorterKind::ALL {
            let unit = OrderingUnit::new(kind);
            let words = random_words(25, 99);
            let (sorted, _) = unit.sort_descending(&words);
            let reference: Vec<u32> = descending_popcount_order(&words)
                .iter()
                .map(|&i| words[i].popcount())
                .collect();
            assert_eq!(popcounts(&sorted), reference, "{kind:?}");
        }
    }

    #[test]
    fn sorters_preserve_multiset() {
        for kind in SorterKind::ALL {
            let unit = OrderingUnit::new(kind);
            let words = random_words(16, 3);
            let (sorted, _) = unit.sort_descending(&words);
            let mut a: Vec<i8> = words.iter().map(|w| w.code()).collect();
            let mut b: Vec<i8> = sorted.iter().map(|w| w.code()).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{kind:?}");
        }
    }

    #[test]
    fn bubble_cost_model() {
        let unit = OrderingUnit::new(SorterKind::Bubble);
        let words = random_words(16, 1);
        let (_, report) = unit.sort_descending(&words);
        // Odd-even transposition on 16 lanes: 16 stages, 8+7 alternating
        // comparators -> 8*8 + 8*7 = 120 compare-exchanges.
        assert_eq!(report.stages, 16);
        assert_eq!(report.compare_exchanges, 120);
        assert_eq!(report.popcount_stages, 3); // 8-bit words
        assert_eq!(report.cycles, 19);
    }

    #[test]
    fn bitonic_is_shallower_than_bubble_for_16() {
        let words = random_words(16, 2);
        let (_, bubble) = OrderingUnit::new(SorterKind::Bubble).sort_descending(&words);
        let (_, bitonic) = OrderingUnit::new(SorterKind::Bitonic).sort_descending(&words);
        // log2(16) * (log2(16)+1) / 2 = 10 stages vs 16.
        assert_eq!(bitonic.stages, 10);
        assert!(bitonic.stages < bubble.stages);
    }

    #[test]
    fn oem_has_fewer_comparators_than_bitonic() {
        let words = random_words(32, 5);
        let (_, bit) = OrderingUnit::new(SorterKind::Bitonic).sort_descending(&words);
        let (_, oem) = OrderingUnit::new(SorterKind::OddEvenMerge).sort_descending(&words);
        assert!(oem.compare_exchanges < bit.compare_exchanges);
    }

    #[test]
    fn trivial_inputs_cost_nothing() {
        let unit = OrderingUnit::paper_default();
        let (s, r) = unit.sort_descending::<Fx8Word>(&[]);
        assert!(s.is_empty());
        assert_eq!(r.compare_exchanges, 0);
        assert_eq!(r.stages, 0);
        let one = [Fx8Word::new(5)];
        let (s, r) = unit.sort_descending(&one);
        assert_eq!(s.len(), 1);
        assert_eq!(r.stages, 0);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(OrderingUnit::default().sorter(), SorterKind::Bubble);
        assert!(SorterKind::Bubble.name().contains("bubble"));
    }
}
