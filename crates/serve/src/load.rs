//! The deterministic synthetic client.
//!
//! Load generation is separated from the service so benches, the CI
//! smoke job and the parity tests all drive the pool with the *same*
//! request stream: ids are sequential, inputs draw round-robin from a
//! caller-provided pool, and nothing depends on wall time — two runs
//! over the same pool enqueue bit-identical work.

use btr_dnn::tensor::Tensor;

/// One inference request: a dense id (also the slot of its output in
/// [`crate::ServeReport::outputs`]) and the input tensor.
#[derive(Debug, Clone)]
pub struct Request {
    /// Sequential id, `0..count`.
    pub id: u64,
    /// The input tensor to run.
    pub input: Tensor,
}

/// Generates `count` requests drawing inputs round-robin from `pool`:
/// distinct inputs until the pool wraps, ids `0..count`, deterministic.
///
/// # Panics
///
/// Panics if the pool is empty.
#[must_use]
pub fn synthetic_requests(pool: &[Tensor], count: usize) -> Vec<Request> {
    assert!(!pool.is_empty(), "input pool is empty");
    (0..count)
        .map(|i| Request {
            id: i as u64,
            input: pool[i % pool.len()].clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_dense_and_round_robin() {
        let pool = vec![
            Tensor::from_vec(&[2], vec![0.0, 1.0]).unwrap(),
            Tensor::from_vec(&[2], vec![2.0, 3.0]).unwrap(),
        ];
        let reqs = synthetic_requests(&pool, 5);
        assert_eq!(reqs.len(), 5);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(r.input.data(), pool[i % 2].data());
        }
    }
}
