//! # btr-serve — the multi-session inference service
//!
//! The scale-out layer over the batched pipelined driver: a pool of
//! independent accelerator sessions (one mesh + one
//! [`btr_accel::InferenceSession`] each) drains a bounded MPMC request
//! queue, coalescing up to `batch_size` queued requests into each
//! dispatch. The per-inference reproduction measures bit transitions per
//! inference; this crate measures them per *fleet* under sustained
//! concurrent load — aggregate inferences/sec, per-session and
//! fleet-wide transitions, codec/index overhead totals, and queue-depth
//! / latency histograms.
//!
//! Structure:
//!
//! * [`queue`] — the bounded MPMC queue with batch-coalescing pop and a
//!   bounded-wait flush (tail latency capped in dispatch-loop poll
//!   cycles, not an open-ended wall-clock timer).
//! * [`service`] — the session pool: worker threads, dispatch loop,
//!   aggregate [`ServeReport`].
//! * [`load`] — the deterministic synthetic client.
//! * [`metrics`] — log2-bucketed [`Histogram`]s.
//!
//! The `btr-serve` binary and the `bench_serve` harness (both in
//! `crates/experiments`) are thin front-ends over [`serve`]; the
//! serve-vs-sequential output parity is pinned by `tests/serve_parity.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod load;
pub mod metrics;
pub mod queue;
pub mod service;

pub use load::{synthetic_requests, Request};
pub use metrics::Histogram;
pub use queue::BoundedQueue;
pub use service::{serve, ServeConfig, ServeError, ServeReport, SessionReport};
