//! Log2-bucketed histograms for the service's aggregate report.
//!
//! Fixed 65 buckets (zero + one per power of two) make `record` a
//! leading-zero count, `merge` a vector add, and the whole struct small
//! enough to keep per-worker copies that merge once at shutdown — no
//! locks on the dispatch hot path.

/// A histogram of `u64` samples in logarithmic buckets: bucket 0 holds
/// zeros, bucket `k >= 1` holds values in `[2^(k-1), 2^k)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive `[lo, hi]` value range of bucket `index`.
    fn bucket_range(index: usize) -> (u64, u64) {
        if index == 0 {
            (0, 0)
        } else {
            (
                1 << (index - 1),
                ((1u128 << index) - 1).min(u64::MAX as u128) as u64,
            )
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one (per-worker locals merge
    /// into the fleet totals at shutdown).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `p`-quantile
    /// (`0.0 <= p <= 1.0`), clamped to the observed max — a log2-grained
    /// percentile, exact enough for tail-latency reporting.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_range(index).1.min(self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(lo, hi, count)` rows (the JSON shape).
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(index, &n)| {
                let (lo, hi) = Self::bucket_range(index);
                (lo, hi, n)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 3, 200] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 200);
        assert!((h.mean() - 41.0).abs() < 1e-9);
        // Buckets: 0 -> [0,0], two 1s -> [1,1], 3 -> [2,3], 200 -> [128,255].
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 0, 1), (1, 1, 2), (2, 3, 1), (128, 255, 1)]
        );
        // p50 of 5 samples is the 3rd: the [1,1] bucket.
        assert_eq!(h.percentile(0.5), 1);
        // The tail percentile clamps to the observed max.
        assert_eq!(h.percentile(1.0), 200);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_is_a_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(4);
        b.record(1000);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.nonzero_buckets().len(), 3);
    }

    #[test]
    fn extreme_values_stay_in_range() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(0.5), u64::MAX);
    }
}
