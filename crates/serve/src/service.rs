//! The session pool: worker threads draining the request queue through
//! reusable accelerator sessions, with aggregate reporting.
//!
//! One [`InferenceSession`] per worker — config validation and the
//! inline-vs-threaded encode resolution happen once at pool
//! construction, never per request. Each dispatch coalesces up to
//! `batch_size` queued requests (the batching window) into one
//! `session.run` call on that worker's own mesh, so the fleet runs
//! `sessions` independent meshes concurrently while the bounded queue
//! provides admission control.

use crate::load::Request;
use crate::metrics::Histogram;
use crate::queue::BoundedQueue;
use btr_accel::config::AccelConfig;
use btr_accel::driver::{AccelError, InferenceSession};
use btr_dnn::model::InferenceOp;
use btr_dnn::tensor::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration of one service run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The per-session accelerator configuration. `accel.batch_size` is
    /// the **batching window**: each dispatch coalesces up to that many
    /// queued requests into one traffic phase per layer.
    pub accel: AccelConfig,
    /// Independent accelerator sessions (one mesh each).
    pub sessions: usize,
    /// Bound of the shared request queue (admission control: producers
    /// block when the fleet falls behind).
    pub queue_capacity: usize,
    /// Bounded-wait flush: how many dispatch-loop poll cycles a worker
    /// waits for a window to fill before flushing short. The bound is an
    /// iteration count, so trickle-load tail latency is capped
    /// deterministically in poll cycles rather than by an open-ended
    /// wall-clock timer.
    pub flush_polls: u32,
}

impl ServeConfig {
    /// Validates the service shape (the accel config validates itself at
    /// session construction).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.sessions == 0 {
            return Err("service needs at least one session".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue capacity must be positive".into());
        }
        self.accel.validate()
    }
}

/// Errors from [`serve`].
#[derive(Debug)]
pub enum ServeError {
    /// Invalid service configuration.
    Config(String),
    /// A session failed an inference with a non-transport error; the
    /// run was aborted and queued requests were discarded. (Transport
    /// retry-budget exhaustion under fault injection does *not* abort —
    /// it lands in [`ServeReport::failed`] instead.)
    Session {
        /// Index of the failing session.
        session: usize,
        /// The underlying accelerator error.
        error: AccelError,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "invalid service config: {msg}"),
            ServeError::Session { session, error } => {
                write!(f, "session {session} failed: {error}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Per-session slice of the aggregate report.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Session index, `0..sessions`.
    pub session: usize,
    /// Dispatches (batched `session.run` calls) this session served.
    pub dispatches: u64,
    /// Inferences completed (sum of dispatch batch sizes).
    pub inferences: u64,
    /// Bit transitions accumulated on this session's mesh.
    pub transitions: u64,
    /// Simulated cycles across this session's dispatches.
    pub cycles: u64,
    /// O2 index side-channel bits.
    pub index_overhead_bits: u64,
    /// Link-codec side-channel bits.
    pub codec_overhead_bits: u64,
    /// Per-flit EDC check-field bits.
    pub edc_overhead_bits: u64,
    /// Payload flits the NIs re-sent after NACKed deliveries.
    pub retransmitted_flits: u64,
    /// Packets that retried at least once and were delivered clean.
    pub retried_packets: u64,
    /// Requests whose dispatch exhausted the retry budget. The failure
    /// is batch-granular: the driver cannot attribute a dead packet to
    /// one batch element, so the whole window it rode in counts here.
    pub failed: u64,
    /// Wall milliseconds spent inside `session.run`.
    pub busy_ms: u64,
    /// Requests coalesced per dispatch.
    pub batch_fill: Histogram,
    /// Packet retries observed per request: each completed request
    /// records the retried-packet count of the dispatch that served it
    /// (retries are measured at dispatch granularity, so window
    /// companions share one sample value).
    pub retries: Histogram,
}

impl SessionReport {
    fn new(session: usize) -> Self {
        Self {
            session,
            dispatches: 0,
            inferences: 0,
            transitions: 0,
            cycles: 0,
            index_overhead_bits: 0,
            codec_overhead_bits: 0,
            edc_overhead_bits: 0,
            retransmitted_flits: 0,
            retried_packets: 0,
            failed: 0,
            busy_ms: 0,
            batch_fill: Histogram::new(),
            retries: Histogram::new(),
        }
    }
}

/// Aggregate outcome of one service run.
#[derive(Debug)]
pub struct ServeReport {
    /// One output tensor per request, indexed by request id. A failed
    /// request holds the empty placeholder tensor (`shape == [0]`).
    pub outputs: Vec<Tensor>,
    /// Requests completed (`completed + failed` equals the request
    /// count on success).
    pub completed: u64,
    /// Requests whose dispatch exhausted the transport retry budget.
    /// Unreliable-link failures are expected under fault injection, so
    /// they land here instead of aborting the pool — the other requests
    /// keep flowing.
    pub failed: u64,
    /// Wall milliseconds from first enqueue to pool shutdown.
    pub wall_ms: u64,
    /// Aggregate throughput over the whole run.
    pub inferences_per_sec: f64,
    /// Fleet-wide bit transitions (sum over sessions).
    pub transitions: u64,
    /// Fleet-wide O2 index side-channel bits.
    pub index_overhead_bits: u64,
    /// Fleet-wide link-codec side-channel bits.
    pub codec_overhead_bits: u64,
    /// Fleet-wide per-flit EDC check-field bits.
    pub edc_overhead_bits: u64,
    /// Fleet-wide payload flits re-sent after NACKed deliveries.
    pub retransmitted_flits: u64,
    /// Fleet-wide packets that retried at least once and recovered.
    pub retried_packets: u64,
    /// Queue depth observed at each dispatch.
    pub queue_depth: Histogram,
    /// Per-request latency (enqueue to response), microseconds.
    pub latency_us: Histogram,
    /// Requests coalesced per dispatch, fleet-wide.
    pub batch_fill: Histogram,
    /// Packet retries per completed request, fleet-wide (dispatch
    /// granularity; see [`SessionReport::retries`]).
    pub retries: Histogram,
    /// Per-session breakdown, in session order.
    pub per_session: Vec<SessionReport>,
}

/// One queued request plus its admission timestamp (the latency clock).
struct Queued {
    request: Request,
    enqueued: Instant,
}

/// What one worker hands back at shutdown.
struct WorkerDone {
    report: SessionReport,
    latency: Histogram,
    depth: Histogram,
}

/// Runs `requests` through a pool of `config.sessions` accelerator
/// sessions and returns the aggregate report. Request ids must be dense
/// (`0..requests.len()`, as [`crate::synthetic_requests`] produces);
/// outputs come back indexed by id, so serve-vs-sequential parity is a
/// slice comparison (`tests/serve_parity.rs`).
///
/// # Errors
///
/// Returns [`ServeError::Config`] on an invalid configuration or
/// non-dense request ids, [`ServeError::Session`] when any session's
/// inference fails with a non-transport error (the run aborts; queued
/// requests are discarded). Transport retry-budget exhaustion under
/// fault injection is *not* an error: the affected window counts in
/// [`ServeReport::failed`] and the pool keeps serving.
pub fn serve(
    ops: &[InferenceOp],
    config: &ServeConfig,
    requests: Vec<Request>,
) -> Result<ServeReport, ServeError> {
    config.validate().map_err(ServeError::Config)?;
    let total = requests.len();
    let mut seen = vec![false; total];
    for r in &requests {
        let id = r.id as usize;
        if id >= total || seen[id] {
            return Err(ServeError::Config(format!(
                "request ids must be dense 0..{total}: id {} is out of range or duplicated",
                r.id
            )));
        }
        seen[id] = true;
    }

    let window = config.accel.batch_size;
    let queue: BoundedQueue<Queued> = BoundedQueue::new(config.queue_capacity);
    let slots: Mutex<Vec<Option<Tensor>>> = Mutex::new(vec![None; total]);
    let failed = AtomicBool::new(false);
    let failure: Mutex<Option<ServeError>> = Mutex::new(None);
    let done: Mutex<Vec<WorkerDone>> = Mutex::new(Vec::new());

    let start = Instant::now();
    std::thread::scope(|s| {
        let queue_ref = &queue;
        s.spawn(move || {
            for request in requests {
                let item = Queued {
                    request,
                    enqueued: Instant::now(),
                };
                if queue_ref.push(item).is_err() {
                    // Closed early: a session failed and aborted the run.
                    return;
                }
            }
            queue_ref.close();
        });
        for session in 0..config.sessions {
            let (queue, slots, failed, failure, done) = (&queue, &slots, &failed, &failure, &done);
            let accel = &config.accel;
            let flush_polls = config.flush_polls;
            s.spawn(move || {
                run_worker(
                    session,
                    ops,
                    accel,
                    window,
                    flush_polls,
                    queue,
                    slots,
                    failed,
                    failure,
                    done,
                );
            });
        }
    });
    let wall = start.elapsed();

    if let Some(error) = failure.into_inner().expect("failure slot poisoned") {
        return Err(error);
    }
    let outputs: Vec<Tensor> = slots
        .into_inner()
        .expect("output slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("every request slot filled (output or failure placeholder)"))
        .collect();

    let mut per_session: Vec<WorkerDone> = done.into_inner().expect("worker reports poisoned");
    per_session.sort_by_key(|d| d.report.session);
    let failed_total: u64 = per_session.iter().map(|d| d.report.failed).sum();
    let mut report = ServeReport {
        outputs,
        completed: total as u64 - failed_total,
        failed: failed_total,
        wall_ms: wall.as_millis() as u64,
        inferences_per_sec: if wall.as_secs_f64() > 0.0 {
            // Failed requests produced no inference; only completed
            // ones count toward throughput.
            (total as u64 - failed_total) as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        transitions: 0,
        index_overhead_bits: 0,
        codec_overhead_bits: 0,
        edc_overhead_bits: 0,
        retransmitted_flits: 0,
        retried_packets: 0,
        queue_depth: Histogram::new(),
        latency_us: Histogram::new(),
        batch_fill: Histogram::new(),
        retries: Histogram::new(),
        per_session: Vec::new(),
    };
    for worker in per_session {
        report.transitions += worker.report.transitions;
        report.index_overhead_bits += worker.report.index_overhead_bits;
        report.codec_overhead_bits += worker.report.codec_overhead_bits;
        report.edc_overhead_bits += worker.report.edc_overhead_bits;
        report.retransmitted_flits += worker.report.retransmitted_flits;
        report.retried_packets += worker.report.retried_packets;
        report.queue_depth.merge(&worker.depth);
        report.latency_us.merge(&worker.latency);
        report.batch_fill.merge(&worker.report.batch_fill);
        report.retries.merge(&worker.report.retries);
        report.per_session.push(worker.report);
    }
    Ok(report)
}

/// One pool worker: owns a session, drains coalesced batches until the
/// queue closes (or any session fails), then files its report.
///
/// Owning the session (rather than building one per dispatch) is what
/// lets the driver's per-layer encode caches pay off under load: the
/// weight permutations and pre-rendered weight flit templates are built
/// by the worker's first dispatch and reused verbatim by every later
/// request the worker serves — the weight side of an op never changes
/// within a service's lifetime.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    session_index: usize,
    ops: &[InferenceOp],
    accel: &AccelConfig,
    window: usize,
    flush_polls: u32,
    queue: &BoundedQueue<Queued>,
    slots: &Mutex<Vec<Option<Tensor>>>,
    failed: &AtomicBool,
    failure: &Mutex<Option<ServeError>>,
    done: &Mutex<Vec<WorkerDone>>,
) {
    let fail = |error: AccelError| {
        failed.store(true, Ordering::Release);
        let mut slot = failure.lock().expect("failure slot poisoned");
        if slot.is_none() {
            *slot = Some(ServeError::Session {
                session: session_index,
                error,
            });
        }
        drop(slot);
        queue.abort();
    };
    let session = match InferenceSession::new(ops, accel.clone()) {
        Ok(session) => session,
        Err(e) => {
            fail(e);
            return;
        }
    };
    let mut report = SessionReport::new(session_index);
    let mut latency = Histogram::new();
    let mut depth = Histogram::new();
    let mut busy = Duration::ZERO;
    let mut inputs: Vec<Tensor> = Vec::with_capacity(window);
    let mut meta: Vec<(u64, Instant)> = Vec::with_capacity(window);
    loop {
        if failed.load(Ordering::Acquire) {
            break;
        }
        let batch = queue.pop_batch(window, flush_polls);
        if batch.items.is_empty() {
            break;
        }
        depth.record(batch.depth as u64);
        // The worker owns the popped requests: move the tensors into the
        // dispatch buffer instead of deep-cloning them.
        inputs.clear();
        meta.clear();
        for q in batch.items {
            meta.push((q.request.id, q.enqueued));
            inputs.push(q.request.input);
        }
        let dispatched = Instant::now();
        match session.run(&inputs) {
            Ok(result) => {
                busy += dispatched.elapsed();
                {
                    let mut slots = slots.lock().expect("output slots poisoned");
                    for (&(id, _), output) in meta.iter().zip(result.outputs) {
                        slots[id as usize] = Some(output);
                    }
                }
                for &(_, enqueued) in &meta {
                    latency.record(enqueued.elapsed().as_micros() as u64);
                }
                report.dispatches += 1;
                report.inferences += meta.len() as u64;
                report.transitions += result.stats.total_transitions;
                report.cycles += result.total_cycles;
                report.index_overhead_bits += result.index_overhead_bits;
                report.codec_overhead_bits += result.codec_overhead_bits;
                report.edc_overhead_bits += result.edc_overhead_bits;
                report.retransmitted_flits += result.retransmitted_flits;
                report.retried_packets += result.retried_packets;
                report.batch_fill.record(meta.len() as u64);
                for _ in &meta {
                    report.retries.record(result.retried_packets);
                }
            }
            // A packet that exhausted its transport retry budget kills
            // only the window it rode in: the driver cannot attribute
            // the dead packet to one batch element, so every request in
            // the dispatch fails with a placeholder output and the pool
            // keeps draining. Each dispatch runs on a fresh mesh, so
            // the session itself stays healthy.
            Err(AccelError::Unrecoverable { .. }) => {
                report.dispatches += 1;
                report.failed += meta.len() as u64;
                let mut slots = slots.lock().expect("output slots poisoned");
                for &(id, _) in &meta {
                    slots[id as usize] = Some(Tensor::zeros(&[0]));
                }
            }
            Err(e) => {
                fail(e);
                break;
            }
        }
    }
    report.busy_ms = busy.as_millis() as u64;
    done.lock()
        .expect("worker reports poisoned")
        .push(WorkerDone {
            report,
            latency,
            depth,
        });
}
