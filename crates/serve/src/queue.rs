//! The bounded MPMC request queue feeding the session pool.
//!
//! Producers block while the queue is full (admission control — a slow
//! fleet pushes back on the client instead of buffering unboundedly);
//! consumers pop *batches*, coalescing up to a window of requests per
//! dispatch. A consumer that finds the queue short of a full window
//! waits a **bounded number of poll cycles** for stragglers before
//! flushing what it has: the flush bound is an iteration count of the
//! dispatch loop, not an open-ended wall-clock timer, so tail latency
//! under a trickle load is capped and deterministic in scheduler cycles.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// One poll cycle of the batch-coalescing wait.
pub const FLUSH_POLL: Duration = Duration::from_micros(200);

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer FIFO with batch-coalescing
/// pop. Close it to signal end-of-load: blocked producers fail fast and
/// consumers drain the remainder, then receive empty batches.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

/// What [`BoundedQueue::pop_batch`] hands a worker: the coalesced batch
/// plus the queue depth observed when the first item was claimed (the
/// sample behind the service's queue-depth histogram).
pub struct PoppedBatch<T> {
    /// Up to `max` items in FIFO order; empty once the queue is closed
    /// and drained (the worker-exit signal).
    pub items: Vec<T>,
    /// Queue depth at the moment the batch started forming.
    pub depth: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `cap` queued items.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(cap),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns the
    /// item back as `Err` if the queue was closed (the service aborts a
    /// failed run by closing early).
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.cap {
                break;
            }
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops a coalesced batch of up to `max` items: blocks until at
    /// least one item is available (or the queue is closed and drained —
    /// then the batch is empty), then waits at most `flush_polls` poll
    /// cycles of [`FLUSH_POLL`] each for the window to fill before
    /// flushing short.
    pub fn pop_batch(&self, max: usize, flush_polls: u32) -> PoppedBatch<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if !state.items.is_empty() {
                break;
            }
            if state.closed {
                return PoppedBatch {
                    items: Vec::new(),
                    depth: 0,
                };
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
        let depth = state.items.len();
        let mut items = Vec::with_capacity(max.min(depth));
        let mut polls_left = flush_polls;
        while items.len() < max {
            if let Some(item) = state.items.pop_front() {
                items.push(item);
                continue;
            }
            if state.closed || polls_left == 0 {
                break;
            }
            polls_left -= 1;
            // The pops above freed slots: wake blocked producers *before*
            // sleeping for stragglers, or a full-blocked producer and this
            // coalescing consumer would sleep on each other for the whole
            // flush budget whenever the capacity is below the window.
            self.not_full.notify_all();
            let (guard, _) = self
                .not_empty
                .wait_timeout(state, FLUSH_POLL)
                .expect("queue poisoned");
            state = guard;
        }
        drop(state);
        // A batch frees up to `max` slots; wake every blocked producer.
        self.not_full.notify_all();
        PoppedBatch { items, depth }
    }

    /// Closes the queue: producers fail fast, consumers drain what
    /// remains and then see empty batches.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Closes the queue **and discards** everything still queued — the
    /// failure path, where remaining requests must not keep producers or
    /// consumers alive.
    pub fn abort(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        state.items.clear();
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_batches_and_close_drain() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let b = q.pop_batch(3, 0);
        assert_eq!(b.items, vec![0, 1, 2]);
        assert_eq!(b.depth, 5);
        q.close();
        // Remaining items drain after close...
        assert_eq!(q.pop_batch(3, 0).items, vec![3, 4]);
        // ...then batches come back empty, and pushes fail fast.
        assert!(q.pop_batch(3, 0).items.is_empty());
        assert_eq!(q.push(9), Err(9));
    }

    #[test]
    fn short_flush_is_bounded() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        // One queued item, window of 4: the bounded flush gives up after
        // its poll budget instead of waiting for a full window.
        let b = q.pop_batch(4, 2);
        assert_eq!(b.items, vec![1]);
    }

    #[test]
    fn capacity_blocks_producers_until_consumed() {
        let q = BoundedQueue::new(2);
        let pushed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..6 {
                    q.push(i).unwrap();
                    pushed.fetch_add(1, Ordering::SeqCst);
                }
            });
            let mut got = Vec::new();
            while got.len() < 6 {
                got.extend(q.pop_batch(2, 1).items);
            }
            assert_eq!(got, (0..6).collect::<Vec<_>>());
        });
        assert_eq!(pushed.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn window_fills_past_capacity_while_coalescing() {
        // Capacity below the batch window: the coalescing pop must wake
        // the full-blocked producer after draining, so a SINGLE pop still
        // fills the whole window instead of both sides sleeping out the
        // flush budget and flushing short at the capacity.
        let q = BoundedQueue::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..6 {
                    q.push(i).unwrap();
                }
                q.close();
            });
            std::thread::sleep(Duration::from_millis(20));
            let b = q.pop_batch(6, 1000);
            assert_eq!(b.items, (0..6).collect::<Vec<_>>());
        });
    }

    #[test]
    fn abort_discards_queued_items() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.abort();
        assert!(q.pop_batch(4, 0).items.is_empty());
        assert!(q.is_empty());
    }
}
