//! Layer → neuron-task extraction.
//!
//! Each convolution output pixel (per output channel) and each linear
//! output neuron becomes one [`NeuronTask`]: `k·k·C_in` (or `in_features`)
//! paired inputs and weights plus a bias (Fig. 2). The extraction order is
//! `(ic, kh, kw)` row-major — the "natural" memory order that the baseline
//! (O0) transmits unmodified.

use btr_bits::word::{DataWord, F32Word, Fx8Word};
use btr_bits::Quantizer;
use btr_core::task::NeuronTask;
use btr_dnn::tensor::Tensor;

/// A task plus the flat index of the output element it produces.
#[derive(Debug, Clone)]
pub struct IndexedTask<W> {
    /// The neuron computation.
    pub task: NeuronTask<W>,
    /// Flat index into the layer's output tensor.
    pub out_index: usize,
}

/// Per-layer quantization scales used by the fixed-8 path.
#[derive(Debug, Clone, Copy)]
pub struct LayerQuantizers {
    /// Input (activation) quantizer.
    pub input: Quantizer,
    /// Weight quantizer.
    pub weight: Quantizer,
    /// Bias quantizer.
    pub bias: Quantizer,
}

impl LayerQuantizers {
    /// Derives per-tensor scales from the layer operands.
    ///
    /// # Panics
    ///
    /// Panics if any operand contains non-finite values.
    #[must_use]
    pub fn derive(input: &Tensor, weight: &Tensor, bias: &Tensor) -> Self {
        Self::derive_with(input, weight, bias, false)
    }

    /// [`LayerQuantizers::derive`] with an optional global Q0.7 weight
    /// scale (the sensitivity variant; weights beyond ±1 saturate).
    ///
    /// # Panics
    ///
    /// Panics if any operand contains non-finite values.
    #[must_use]
    pub fn derive_with(
        input: &Tensor,
        weight: &Tensor,
        bias: &Tensor,
        global_weights: bool,
    ) -> Self {
        let weight_q = if global_weights {
            Quantizer::new(1.0, 8).expect("unit scale is valid")
        } else {
            Quantizer::from_data(weight.data(), 8).expect("finite weights")
        };
        Self {
            input: Quantizer::from_data(input.data(), 8).expect("finite activations"),
            weight: weight_q,
            bias: Quantizer::from_data(bias.data(), 8).expect("finite biases"),
        }
    }

    /// Dequantizes a PE's integer MAC response into the float domain:
    /// the response is `Σ qi·qw + qb`; the bias code is subtracted, the
    /// integer dot product is rescaled by both operand scales, and the
    /// dequantized bias is added back.
    #[must_use]
    pub fn dequantize_response(&self, mac: i64, bias_code: i8) -> f32 {
        let dot = mac - i64::from(bias_code);
        let prod_scale = (self.input.scale() * self.weight.scale())
            / (self.input.q_max() as f32 * self.weight.q_max() as f32);
        dot as f32 * prod_scale + self.bias.dequantize_i32(i32::from(bias_code))
    }
}

/// Conv geometry needed to enumerate tasks.
#[derive(Debug, Clone, Copy)]
pub struct ConvGeometry {
    /// Output channels.
    pub out_channels: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub padding: usize,
    /// Output spatial height.
    pub out_h: usize,
    /// Output spatial width.
    pub out_w: usize,
}

impl ConvGeometry {
    /// Derives the geometry from operand shapes.
    #[must_use]
    pub fn from_shapes(input: &Tensor, weight: &Tensor, stride: usize, padding: usize) -> Self {
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let k = weight.shape()[2];
        Self {
            out_channels: weight.shape()[0],
            in_channels: weight.shape()[1],
            kernel: k,
            stride,
            padding,
            out_h: (h + 2 * padding - k) / stride + 1,
            out_w: (w + 2 * padding - k) / stride + 1,
        }
    }

    /// Number of tasks the layer generates.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.out_channels * self.out_h * self.out_w
    }

    /// Operand pairs per task.
    #[must_use]
    pub fn pairs_per_task(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Gathers the input window for conv output `(oy, ox)` in `(ic, kh, kw)`
/// order into `out` from a pre-mapped word tensor (`zero` outside the
/// input — the mapped image of `0.0` padding).
#[allow(clippy::too_many_arguments)]
fn gather_window<W: DataWord>(
    words: &[W],
    h: usize,
    w: usize,
    geo: &ConvGeometry,
    oy: usize,
    ox: usize,
    zero: W,
    out: &mut Vec<W>,
) {
    out.reserve(geo.pairs_per_task());
    for ic in 0..geo.in_channels {
        let channel = &words[ic * h * w..(ic + 1) * h * w];
        for kh in 0..geo.kernel {
            for kw in 0..geo.kernel {
                let iy = oy * geo.stride + kh;
                let ix = ox * geo.stride + kw;
                let word = match (iy.checked_sub(geo.padding), ix.checked_sub(geo.padding)) {
                    (Some(iy), Some(ix)) if iy < h && ix < w => channel[iy * w + ix],
                    _ => zero,
                };
                out.push(word);
            }
        }
    }
}

/// Flattens the weights of output channel `oc` in `(ic, kh, kw)` order.
fn conv_kernel<W: DataWord>(
    weight: &Tensor,
    geo: &ConvGeometry,
    oc: usize,
    to_word: &impl Fn(f32) -> W,
) -> Vec<W> {
    let mut out = Vec::with_capacity(geo.pairs_per_task());
    for ic in 0..geo.in_channels {
        for kh in 0..geo.kernel {
            for kw in 0..geo.kernel {
                out.push(to_word(weight.at4(oc, ic, kh, kw)));
            }
        }
    }
    out
}

/// The input half of a [`LayerTasks`] source: how a task's paired inputs
/// are materialized for a given batch element. Activations are mapped to
/// words **once per tensor** at construction — a conv input pixel sits in
/// up to `k²` overlapping windows, so mapping at window-extraction time
/// would quantize the same value `k²` times.
enum LayerInputs<W> {
    /// Conv windows are gathered lazily per task (deferred to the encode
    /// stage) from the pre-mapped word tensors.
    Conv {
        /// Per batch element: the input tensor as words, `(ic, iy, ix)`
        /// row-major.
        words: Vec<Vec<W>>,
        /// Spatial height/width of the input tensors.
        in_h: usize,
        in_w: usize,
        geo: ConvGeometry,
        /// The mapped image of `0.0` — what zero padding drives onto the
        /// wires, per batch element.
        zero_words: Vec<W>,
    },
    /// Linear layers reuse one word vector per batch element.
    Linear { words: Vec<Vec<W>> },
}

/// Random-access task source for one conv/linear layer over a batch of
/// inputs — the MC-side half of the driver's encode stage.
///
/// Global task id `j` enumerates `batch × tasks-per-input` tasks,
/// batch-major, in exactly the order [`conv_tasks`]/[`linear_tasks`]
/// produce for each input; `j % per_input` equals the task's flat output
/// index. Weight kernels and bias words are materialized **once per
/// layer** at construction (they are shared by every output pixel and
/// every batch element), so [`LayerTasks::build`] only extracts the
/// per-task inputs. `build` is `&self` and the source is `Sync`, so
/// encoder threads construct tasks concurrently off the cycle-loop
/// thread.
pub struct LayerTasks<W> {
    inputs: LayerInputs<W>,
    /// Weight words per group (conv: one per output channel; linear: one
    /// per output neuron).
    kernels: Vec<Vec<W>>,
    /// Bias word per group.
    bias_words: Vec<W>,
    per_input: usize,
    batch: usize,
}

impl<W: DataWord> LayerTasks<W> {
    /// Builds the source for a convolution layer. `input_mappers` holds
    /// one word mapper per batch element (fixed-8 activation scales are
    /// per-element); weights and biases use the shared mappers.
    pub fn conv<'a>(
        xs: &[Tensor],
        weight: &Tensor,
        bias: &Tensor,
        geo: ConvGeometry,
        input_mappers: Vec<Box<dyn Fn(f32) -> W + Send + Sync + 'a>>,
        to_weight: impl Fn(f32) -> W,
        to_bias: impl Fn(f32) -> W,
    ) -> Self {
        assert_eq!(
            xs.len(),
            input_mappers.len(),
            "one input mapper per batch element"
        );
        let kernels: Vec<Vec<W>> = (0..geo.out_channels)
            .map(|oc| conv_kernel(weight, &geo, oc, &to_weight))
            .collect();
        let bias_words: Vec<W> = bias.data().iter().map(|&b| to_bias(b)).collect();
        let words: Vec<Vec<W>> = xs
            .iter()
            .zip(&input_mappers)
            .map(|(x, m)| x.data().iter().map(|&v| m(v)).collect())
            .collect();
        let zero_words: Vec<W> = input_mappers.iter().map(|m| m(0.0)).collect();
        Self {
            per_input: geo.task_count(),
            batch: xs.len(),
            inputs: LayerInputs::Conv {
                words,
                in_h: xs[0].shape()[1],
                in_w: xs[0].shape()[2],
                geo,
                zero_words,
            },
            kernels,
            bias_words,
        }
    }

    /// Builds the source for a linear layer.
    pub fn linear<'a>(
        xs: &[Tensor],
        weight: &Tensor,
        bias: &Tensor,
        input_mappers: Vec<Box<dyn Fn(f32) -> W + Send + Sync + 'a>>,
        to_weight: impl Fn(f32) -> W,
        to_bias: impl Fn(f32) -> W,
    ) -> Self {
        assert_eq!(
            xs.len(),
            input_mappers.len(),
            "one input mapper per batch element"
        );
        let (out_f, in_f) = (weight.shape()[0], weight.shape()[1]);
        let words: Vec<Vec<W>> = xs
            .iter()
            .zip(&input_mappers)
            .map(|(x, m)| {
                assert_eq!(x.len(), in_f, "linear input length mismatch");
                x.data().iter().map(|&v| m(v)).collect()
            })
            .collect();
        let kernels: Vec<Vec<W>> = (0..out_f)
            .map(|o| {
                weight.data()[o * in_f..(o + 1) * in_f]
                    .iter()
                    .map(|&v| to_weight(v))
                    .collect()
            })
            .collect();
        let bias_words: Vec<W> = bias.data().iter().map(|&b| to_bias(b)).collect();
        Self {
            per_input: out_f,
            batch: xs.len(),
            inputs: LayerInputs::Linear { words },
            kernels,
            bias_words,
        }
    }

    /// Total tasks across the batch.
    #[must_use]
    pub fn total(&self) -> usize {
        self.batch * self.per_input
    }

    /// Tasks per batch element.
    #[must_use]
    pub fn per_input(&self) -> usize {
        self.per_input
    }

    /// Batch elements.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Operand pairs per task.
    #[must_use]
    pub fn pairs_per_task(&self) -> usize {
        self.kernels.first().map_or(0, Vec::len)
    }

    /// The weight group (shared-kernel id) of global task `j`: its weight
    /// vector is `group_weights(weight_group(j))` for every batch element,
    /// which is what lets the encode stage sort each kernel once per
    /// layer.
    #[must_use]
    pub fn weight_group(&self, j: usize) -> usize {
        let local = j % self.per_input;
        match &self.inputs {
            LayerInputs::Conv { geo, .. } => local / (geo.out_h * geo.out_w),
            LayerInputs::Linear { .. } => local,
        }
    }

    /// Number of distinct weight groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.kernels.len()
    }

    /// The shared weight words of a group.
    #[must_use]
    pub fn group_weights(&self, group: usize) -> &[W] {
        &self.kernels[group]
    }

    /// The bias word of a group (same across batch elements: bias scales
    /// derive from the bias tensor alone).
    #[must_use]
    pub fn bias_word(&self, group: usize) -> W {
        self.bias_words[group]
    }

    /// Materializes global task `j` (batch element `j / per_input`, local
    /// task `j % per_input`).
    #[must_use]
    pub fn build(&self, j: usize) -> NeuronTask<W> {
        let mut inputs = Vec::new();
        let (weights, bias) = self.operands_into(j, &mut inputs);
        NeuronTask::new(inputs, weights.to_vec(), bias)
            .expect("layer inputs and kernel have equal length")
    }

    /// The allocation-free view of global task `j`: writes the task's
    /// inputs into `input_buf` (cleared first, capacity reused) and
    /// returns the shared kernel slice plus the bias word. The encode
    /// stage feeds these straight to
    /// `CodedTransport::encode_parts_cached`, so per-task construction
    /// neither clones the kernel nor allocates an input vector.
    pub fn operands_into<'s>(&'s self, j: usize, input_buf: &mut Vec<W>) -> (&'s [W], W) {
        let (b, local) = (j / self.per_input, j % self.per_input);
        let group = self.weight_group(j);
        input_buf.clear();
        match &self.inputs {
            LayerInputs::Conv {
                words,
                in_h,
                in_w,
                geo,
                zero_words,
            } => {
                let pixel = local % (geo.out_h * geo.out_w);
                let (oy, ox) = (pixel / geo.out_w, pixel % geo.out_w);
                gather_window(
                    &words[b],
                    *in_h,
                    *in_w,
                    geo,
                    oy,
                    ox,
                    zero_words[b],
                    input_buf,
                );
            }
            LayerInputs::Linear { words } => input_buf.extend_from_slice(&words[b]),
        }
        (&self.kernels[group], self.bias_words[group])
    }
}

/// Builds every task of a convolution layer using the given word mappers.
///
/// `out_index` is the flat index into the `[out_c, out_h, out_w]` output
/// (equal to the task's position in the returned list). Thin eager
/// wrapper over [`LayerTasks`] for single-input callers and tests.
pub fn conv_tasks<'a, W: DataWord>(
    input: &'a Tensor,
    weight: &Tensor,
    bias: &Tensor,
    geo: &ConvGeometry,
    to_input: impl Fn(f32) -> W + Send + Sync + 'a,
    to_weight: impl Fn(f32) -> W,
    to_bias: impl Fn(f32) -> W,
) -> Vec<IndexedTask<W>> {
    let source = LayerTasks::conv(
        std::slice::from_ref(input),
        weight,
        bias,
        *geo,
        vec![Box::new(to_input)],
        to_weight,
        to_bias,
    );
    (0..source.total())
        .map(|j| IndexedTask {
            task: source.build(j),
            out_index: j,
        })
        .collect()
}

/// Builds every task of a linear layer.
pub fn linear_tasks<'a, W: DataWord>(
    input: &'a Tensor,
    weight: &Tensor,
    bias: &Tensor,
    to_input: impl Fn(f32) -> W + Send + Sync + 'a,
    to_weight: impl Fn(f32) -> W,
    to_bias: impl Fn(f32) -> W,
) -> Vec<IndexedTask<W>> {
    let source = LayerTasks::linear(
        std::slice::from_ref(input),
        weight,
        bias,
        vec![Box::new(to_input)],
        to_weight,
        to_bias,
    );
    (0..source.total())
        .map(|j| IndexedTask {
            task: source.build(j),
            out_index: j,
        })
        .collect()
}

/// Float-32 word mappers (identity encoding).
pub fn f32_mappers() -> (
    impl Fn(f32) -> F32Word,
    impl Fn(f32) -> F32Word,
    impl Fn(f32) -> F32Word,
) {
    (F32Word::new, F32Word::new, F32Word::new)
}

/// Fixed-8 word mappers from per-layer quantizers.
pub fn fx8_mappers(
    q: LayerQuantizers,
) -> (
    impl Fn(f32) -> Fx8Word,
    impl Fn(f32) -> Fx8Word,
    impl Fn(f32) -> Fx8Word,
) {
    (
        move |x| q.input.quantize_fx8(x),
        move |x| q.weight.quantize_fx8(x),
        move |x| q.bias.quantize_fx8(x),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_dnn::model::conv_forward;

    fn sample_conv() -> (Tensor, Tensor, Tensor, ConvGeometry) {
        let input = Tensor::from_vec(
            &[2, 4, 4],
            (0..32).map(|i| (i as f32 * 0.23).sin()).collect(),
        )
        .unwrap();
        let weight = Tensor::from_vec(
            &[3, 2, 3, 3],
            (0..54).map(|i| (i as f32 * 0.17).cos() * 0.3).collect(),
        )
        .unwrap();
        let bias = Tensor::from_vec(&[3], vec![0.1, -0.2, 0.3]).unwrap();
        let geo = ConvGeometry::from_shapes(&input, &weight, 1, 1);
        (input, weight, bias, geo)
    }

    #[test]
    fn geometry_matches_conv_forward() {
        let (input, weight, bias, geo) = sample_conv();
        let out = conv_forward(&input, &weight, &bias, 1, 1);
        assert_eq!(out.shape(), &[geo.out_channels, geo.out_h, geo.out_w]);
        assert_eq!(geo.task_count(), out.len());
        assert_eq!(geo.pairs_per_task(), 18);
    }

    #[test]
    fn f32_conv_tasks_reproduce_conv_forward() {
        let (input, weight, bias, geo) = sample_conv();
        let reference = conv_forward(&input, &weight, &bias, 1, 1);
        let tasks = conv_tasks(
            &input,
            &weight,
            &bias,
            &geo,
            F32Word::new,
            F32Word::new,
            F32Word::new,
        );
        assert_eq!(tasks.len(), geo.task_count());
        for t in &tasks {
            let got = t.task.mac_f64() as f32;
            let want = reference.data()[t.out_index];
            assert!(
                (got - want).abs() < 1e-4,
                "idx {}: {got} vs {want}",
                t.out_index
            );
        }
        // Every output index covered exactly once.
        let mut seen = vec![false; reference.len()];
        for t in &tasks {
            assert!(!seen[t.out_index]);
            seen[t.out_index] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f32_linear_tasks_reproduce_linear_forward() {
        let input = Tensor::from_vec(&[5], vec![1.0, -2.0, 0.5, 0.0, 3.0]).unwrap();
        let weight = Tensor::from_vec(
            &[2, 5],
            vec![0.1, 0.2, 0.3, 0.4, 0.5, -0.1, -0.2, -0.3, -0.4, -0.5],
        )
        .unwrap();
        let bias = Tensor::from_vec(&[2], vec![1.0, -1.0]).unwrap();
        let reference = btr_dnn::model::linear_forward(&input, &weight, &bias);
        let tasks = linear_tasks(
            &input,
            &weight,
            &bias,
            F32Word::new,
            F32Word::new,
            F32Word::new,
        );
        assert_eq!(tasks.len(), 2);
        for t in &tasks {
            assert!((t.task.mac_f64() as f32 - reference.data()[t.out_index]).abs() < 1e-5);
        }
    }

    #[test]
    fn fx8_dequantized_response_approximates_float() {
        let (input, weight, bias, geo) = sample_conv();
        let reference = conv_forward(&input, &weight, &bias, 1, 1);
        let q = LayerQuantizers::derive(&input, &weight, &bias);
        let (ti, tw, tb) = fx8_mappers(q);
        let tasks = conv_tasks(&input, &weight, &bias, &geo, ti, tw, tb);
        for t in &tasks {
            let mac = t.task.mac_i64();
            let got = q.dequantize_response(mac, t.task.bias().code());
            let want = reference.data()[t.out_index];
            // 8-bit quantization error over an 18-element dot product.
            assert!(
                (got - want).abs() < 0.12,
                "idx {}: {got} vs {want}",
                t.out_index
            );
        }
    }

    #[test]
    fn padding_produces_zero_words() {
        let (input, weight, bias, geo) = sample_conv();
        let tasks = conv_tasks(
            &input,
            &weight,
            &bias,
            &geo,
            F32Word::new,
            F32Word::new,
            F32Word::new,
        );
        // Corner task (0,0) with padding 1: the first window element is
        // out of bounds -> 0.0.
        let corner = &tasks[0];
        assert_eq!(corner.task.inputs()[0].value(), 0.0);
    }
}
