//! Layer → neuron-task extraction.
//!
//! Each convolution output pixel (per output channel) and each linear
//! output neuron becomes one [`NeuronTask`]: `k·k·C_in` (or `in_features`)
//! paired inputs and weights plus a bias (Fig. 2). The extraction order is
//! `(ic, kh, kw)` row-major — the "natural" memory order that the baseline
//! (O0) transmits unmodified.

use btr_bits::word::{DataWord, F32Word, Fx8Word};
use btr_bits::Quantizer;
use btr_core::task::NeuronTask;
use btr_dnn::tensor::Tensor;

/// A task plus the flat index of the output element it produces.
#[derive(Debug, Clone)]
pub struct IndexedTask<W> {
    /// The neuron computation.
    pub task: NeuronTask<W>,
    /// Flat index into the layer's output tensor.
    pub out_index: usize,
}

/// Per-layer quantization scales used by the fixed-8 path.
#[derive(Debug, Clone, Copy)]
pub struct LayerQuantizers {
    /// Input (activation) quantizer.
    pub input: Quantizer,
    /// Weight quantizer.
    pub weight: Quantizer,
    /// Bias quantizer.
    pub bias: Quantizer,
}

impl LayerQuantizers {
    /// Derives per-tensor scales from the layer operands.
    ///
    /// # Panics
    ///
    /// Panics if any operand contains non-finite values.
    #[must_use]
    pub fn derive(input: &Tensor, weight: &Tensor, bias: &Tensor) -> Self {
        Self::derive_with(input, weight, bias, false)
    }

    /// [`LayerQuantizers::derive`] with an optional global Q0.7 weight
    /// scale (the sensitivity variant; weights beyond ±1 saturate).
    ///
    /// # Panics
    ///
    /// Panics if any operand contains non-finite values.
    #[must_use]
    pub fn derive_with(
        input: &Tensor,
        weight: &Tensor,
        bias: &Tensor,
        global_weights: bool,
    ) -> Self {
        let weight_q = if global_weights {
            Quantizer::new(1.0, 8).expect("unit scale is valid")
        } else {
            Quantizer::from_data(weight.data(), 8).expect("finite weights")
        };
        Self {
            input: Quantizer::from_data(input.data(), 8).expect("finite activations"),
            weight: weight_q,
            bias: Quantizer::from_data(bias.data(), 8).expect("finite biases"),
        }
    }

    /// Dequantizes a PE's integer MAC response into the float domain:
    /// the response is `Σ qi·qw + qb`; the bias code is subtracted, the
    /// integer dot product is rescaled by both operand scales, and the
    /// dequantized bias is added back.
    #[must_use]
    pub fn dequantize_response(&self, mac: i64, bias_code: i8) -> f32 {
        let dot = mac - i64::from(bias_code);
        let prod_scale = (self.input.scale() * self.weight.scale())
            / (self.input.q_max() as f32 * self.weight.q_max() as f32);
        dot as f32 * prod_scale + self.bias.dequantize_i32(i32::from(bias_code))
    }
}

/// Conv geometry needed to enumerate tasks.
#[derive(Debug, Clone, Copy)]
pub struct ConvGeometry {
    /// Output channels.
    pub out_channels: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub padding: usize,
    /// Output spatial height.
    pub out_h: usize,
    /// Output spatial width.
    pub out_w: usize,
}

impl ConvGeometry {
    /// Derives the geometry from operand shapes.
    #[must_use]
    pub fn from_shapes(input: &Tensor, weight: &Tensor, stride: usize, padding: usize) -> Self {
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let k = weight.shape()[2];
        Self {
            out_channels: weight.shape()[0],
            in_channels: weight.shape()[1],
            kernel: k,
            stride,
            padding,
            out_h: (h + 2 * padding - k) / stride + 1,
            out_w: (w + 2 * padding - k) / stride + 1,
        }
    }

    /// Number of tasks the layer generates.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.out_channels * self.out_h * self.out_w
    }

    /// Operand pairs per task.
    #[must_use]
    pub fn pairs_per_task(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Extracts the input window for conv output `(oy, ox)` in `(ic, kh, kw)`
/// order, producing words via `to_word` (zero padding outside the input).
fn conv_window<W: DataWord>(
    input: &Tensor,
    geo: &ConvGeometry,
    oy: usize,
    ox: usize,
    to_word: &impl Fn(f32) -> W,
) -> Vec<W> {
    let (h, w) = (input.shape()[1], input.shape()[2]);
    let mut out = Vec::with_capacity(geo.pairs_per_task());
    for ic in 0..geo.in_channels {
        for kh in 0..geo.kernel {
            for kw in 0..geo.kernel {
                let iy = oy * geo.stride + kh;
                let ix = ox * geo.stride + kw;
                let value = match (iy.checked_sub(geo.padding), ix.checked_sub(geo.padding)) {
                    (Some(iy), Some(ix)) if iy < h && ix < w => input.at3(ic, iy, ix),
                    _ => 0.0,
                };
                out.push(to_word(value));
            }
        }
    }
    out
}

/// Flattens the weights of output channel `oc` in `(ic, kh, kw)` order.
fn conv_kernel<W: DataWord>(
    weight: &Tensor,
    geo: &ConvGeometry,
    oc: usize,
    to_word: &impl Fn(f32) -> W,
) -> Vec<W> {
    let mut out = Vec::with_capacity(geo.pairs_per_task());
    for ic in 0..geo.in_channels {
        for kh in 0..geo.kernel {
            for kw in 0..geo.kernel {
                out.push(to_word(weight.at4(oc, ic, kh, kw)));
            }
        }
    }
    out
}

/// Builds every task of a convolution layer using the given word mappers.
///
/// `out_index` is the flat index into the `[out_c, out_h, out_w]` output.
pub fn conv_tasks<W: DataWord>(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    geo: &ConvGeometry,
    to_input: impl Fn(f32) -> W,
    to_weight: impl Fn(f32) -> W,
    to_bias: impl Fn(f32) -> W,
) -> Vec<IndexedTask<W>> {
    let mut tasks = Vec::with_capacity(geo.task_count());
    for oc in 0..geo.out_channels {
        let weights = conv_kernel(weight, geo, oc, &to_weight);
        let bias_word = to_bias(bias.data()[oc]);
        for oy in 0..geo.out_h {
            for ox in 0..geo.out_w {
                let inputs = conv_window(input, geo, oy, ox, &to_input);
                let task = NeuronTask::new(inputs, weights.clone(), bias_word)
                    .expect("conv window and kernel have equal length");
                tasks.push(IndexedTask {
                    task,
                    out_index: (oc * geo.out_h + oy) * geo.out_w + ox,
                });
            }
        }
    }
    tasks
}

/// Builds every task of a linear layer.
pub fn linear_tasks<W: DataWord>(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    to_input: impl Fn(f32) -> W,
    to_weight: impl Fn(f32) -> W,
    to_bias: impl Fn(f32) -> W,
) -> Vec<IndexedTask<W>> {
    let (out_f, in_f) = (weight.shape()[0], weight.shape()[1]);
    assert_eq!(input.len(), in_f, "linear input length mismatch");
    let input_words: Vec<W> = input.data().iter().map(|&x| to_input(x)).collect();
    let mut tasks = Vec::with_capacity(out_f);
    for o in 0..out_f {
        let weights: Vec<W> = weight.data()[o * in_f..(o + 1) * in_f]
            .iter()
            .map(|&x| to_weight(x))
            .collect();
        let task = NeuronTask::new(input_words.clone(), weights, to_bias(bias.data()[o]))
            .expect("linear rows match the input length");
        tasks.push(IndexedTask { task, out_index: o });
    }
    tasks
}

/// Float-32 word mappers (identity encoding).
pub fn f32_mappers() -> (
    impl Fn(f32) -> F32Word,
    impl Fn(f32) -> F32Word,
    impl Fn(f32) -> F32Word,
) {
    (F32Word::new, F32Word::new, F32Word::new)
}

/// Fixed-8 word mappers from per-layer quantizers.
pub fn fx8_mappers(
    q: LayerQuantizers,
) -> (
    impl Fn(f32) -> Fx8Word,
    impl Fn(f32) -> Fx8Word,
    impl Fn(f32) -> Fx8Word,
) {
    (
        move |x| q.input.quantize_fx8(x),
        move |x| q.weight.quantize_fx8(x),
        move |x| q.bias.quantize_fx8(x),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_dnn::model::conv_forward;

    fn sample_conv() -> (Tensor, Tensor, Tensor, ConvGeometry) {
        let input = Tensor::from_vec(
            &[2, 4, 4],
            (0..32).map(|i| (i as f32 * 0.23).sin()).collect(),
        )
        .unwrap();
        let weight = Tensor::from_vec(
            &[3, 2, 3, 3],
            (0..54).map(|i| (i as f32 * 0.17).cos() * 0.3).collect(),
        )
        .unwrap();
        let bias = Tensor::from_vec(&[3], vec![0.1, -0.2, 0.3]).unwrap();
        let geo = ConvGeometry::from_shapes(&input, &weight, 1, 1);
        (input, weight, bias, geo)
    }

    #[test]
    fn geometry_matches_conv_forward() {
        let (input, weight, bias, geo) = sample_conv();
        let out = conv_forward(&input, &weight, &bias, 1, 1);
        assert_eq!(out.shape(), &[geo.out_channels, geo.out_h, geo.out_w]);
        assert_eq!(geo.task_count(), out.len());
        assert_eq!(geo.pairs_per_task(), 18);
    }

    #[test]
    fn f32_conv_tasks_reproduce_conv_forward() {
        let (input, weight, bias, geo) = sample_conv();
        let reference = conv_forward(&input, &weight, &bias, 1, 1);
        let tasks = conv_tasks(
            &input,
            &weight,
            &bias,
            &geo,
            F32Word::new,
            F32Word::new,
            F32Word::new,
        );
        assert_eq!(tasks.len(), geo.task_count());
        for t in &tasks {
            let got = t.task.mac_f64() as f32;
            let want = reference.data()[t.out_index];
            assert!(
                (got - want).abs() < 1e-4,
                "idx {}: {got} vs {want}",
                t.out_index
            );
        }
        // Every output index covered exactly once.
        let mut seen = vec![false; reference.len()];
        for t in &tasks {
            assert!(!seen[t.out_index]);
            seen[t.out_index] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f32_linear_tasks_reproduce_linear_forward() {
        let input = Tensor::from_vec(&[5], vec![1.0, -2.0, 0.5, 0.0, 3.0]).unwrap();
        let weight = Tensor::from_vec(
            &[2, 5],
            vec![0.1, 0.2, 0.3, 0.4, 0.5, -0.1, -0.2, -0.3, -0.4, -0.5],
        )
        .unwrap();
        let bias = Tensor::from_vec(&[2], vec![1.0, -1.0]).unwrap();
        let reference = btr_dnn::model::linear_forward(&input, &weight, &bias);
        let tasks = linear_tasks(
            &input,
            &weight,
            &bias,
            F32Word::new,
            F32Word::new,
            F32Word::new,
        );
        assert_eq!(tasks.len(), 2);
        for t in &tasks {
            assert!((t.task.mac_f64() as f32 - reference.data()[t.out_index]).abs() < 1e-5);
        }
    }

    #[test]
    fn fx8_dequantized_response_approximates_float() {
        let (input, weight, bias, geo) = sample_conv();
        let reference = conv_forward(&input, &weight, &bias, 1, 1);
        let q = LayerQuantizers::derive(&input, &weight, &bias);
        let (ti, tw, tb) = fx8_mappers(q);
        let tasks = conv_tasks(&input, &weight, &bias, &geo, ti, tw, tb);
        for t in &tasks {
            let mac = t.task.mac_i64();
            let got = q.dequantize_response(mac, t.task.bias().code());
            let want = reference.data()[t.out_index];
            // 8-bit quantization error over an 18-element dot product.
            assert!(
                (got - want).abs() < 0.12,
                "idx {}: {got} vs {want}",
                t.out_index
            );
        }
    }

    #[test]
    fn padding_produces_zero_words() {
        let (input, weight, bias, geo) = sample_conv();
        let tasks = conv_tasks(
            &input,
            &weight,
            &bias,
            &geo,
            F32Word::new,
            F32Word::new,
            F32Word::new,
        );
        // Corner task (0,0) with padding 1: the first window element is
        // out of bounds -> 0.0.
        let corner = &tasks[0];
        assert_eq!(corner.task.inputs()[0].value(), 0.0);
    }
}
