//! # btr-accel — NOC-DNA: the NoC-based DNN accelerator
//!
//! Ties the workspace together into the system the paper evaluates in
//! Sec. V-B (Fig. 7): a full DNN inference where every convolution /
//! fully-connected neuron computation is a **task packet** travelling from
//! a memory controller (MC) through the mesh to a processing element (PE),
//! which replies with the multiply-accumulate result.
//!
//! * MCs host the ordering units ("near off-chip memory placement",
//!   Sec. IV-C-2): tasks are flitized and ordered (O0/O1/O2) before
//!   injection;
//! * PEs decode operands **off the wire images**, recover the pairing
//!   (slot-aligned for O0/O1, index side channel for O2) and compute;
//! * pooling / activation / flatten run memory-side between layers,
//!   inside the layer-level interval that hides ordering latency
//!   (Sec. IV-C-3);
//! * one [`btr_noc::Simulator`] instance persists across layers, so the
//!   reported bit transitions cover the complete inference.
//!
//! # Example
//!
//! ```no_run
//! use btr_accel::config::AccelConfig;
//! use btr_accel::driver::run_inference;
//! use btr_bits::word::DataFormat;
//! use btr_core::OrderingMethod;
//! use btr_dnn::models::lenet;
//! use btr_dnn::tensor::Tensor;
//!
//! let config = AccelConfig::paper(4, 4, 2, DataFormat::Fixed8, OrderingMethod::Separated);
//! let ops = lenet::build(42).inference_ops();
//! let input = Tensor::zeros(&[1, 32, 32]);
//! let result = run_inference(&ops, &input, &config).unwrap();
//! println!("total BTs: {}", result.stats.total_transitions);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod driver;
pub mod report;
pub mod tasks;

pub use config::AccelConfig;
pub use driver::{run_inference, AccelError, EncodePlan, InferenceSession};
pub use report::{InferenceResult, LayerTrafficReport};
