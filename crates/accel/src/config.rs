//! Accelerator configuration.

use btr_bits::word::DataFormat;
use btr_core::codec::{CodecKind, CodecScope, ResyncPolicy};
use btr_core::edc::EdcKind;
use btr_core::ordering::TieBreak;
use btr_core::OrderingMethod;
use btr_noc::analytic::EngineMode;
use btr_noc::config::NocConfig;
use btr_noc::fault::{ErrorModel, FaultConfig};
use serde::{Deserialize, Serialize};

/// How the driver schedules MC-side encoding against the cycle loop.
///
/// Both modes are bit-exact with each other (pinned by
/// `tests/driver_parity.rs`): the injection sequence, per-link bit
/// transitions, cycle counts and recovered MACs are identical. They only
/// differ in wall-clock: `Pipelined` runs the ordering unit beside the
/// memory controller, as the hardware does (Sec. V, Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DriverMode {
    /// The pre-pipeline reference: encode each task inline in the
    /// prefetch loop — full per-task sort, fresh scratch, serialized
    /// with `sim.step()`. Kept legacy-faithful (like
    /// `btr_noc::legacy`) so the bench trajectory and the parity tests
    /// always have the original behavior to compare against.
    Synchronous,
    /// The staged pipeline: per-MC encoder threads pre-encode tasks into
    /// bounded ready-queues — weight permutations cached per kernel,
    /// scratch buffers reused — while the cycle loop steps the mesh and
    /// only pops finished packets. On a host without spare hardware
    /// threads the encoders run inline instead (same cached encode, no
    /// thread ping-pong); the wire traffic is identical either way.
    #[default]
    Pipelined,
}

impl DriverMode {
    /// Short label (`"sync"` / `"pipelined"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DriverMode::Synchronous => "sync",
            DriverMode::Pipelined => "pipelined",
        }
    }
}

impl std::fmt::Display for DriverMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for DriverMode {
    type Err = String;

    /// Parses `"sync"`/`"synchronous"` or `"pipelined"`/`"async"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sync" | "synchronous" => Ok(DriverMode::Synchronous),
            "pipelined" | "async" => Ok(DriverMode::Pipelined),
            other => Err(format!("unknown driver mode {other:?}; use sync|pipelined")),
        }
    }
}

/// Full configuration of a NOC-DNA run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccelConfig {
    /// The NoC (mesh size, MCs, link width, VCs).
    pub noc: NocConfig,
    /// Payload data format.
    pub format: DataFormat,
    /// Data transmission ordering (O0/O1/O2).
    pub ordering: OrderingMethod,
    /// Link-coding backend on every link (the NoC link width covers the
    /// codec's extra wires; see [`AccelConfig::with_codec`]).
    pub codec: CodecKind,
    /// Where the codec state lives: re-seeded per packet by the MC-side
    /// transport ([`CodecScope::PerPacket`], the bit-exact reference), or
    /// owned by each directed NoC link and persistent across packets,
    /// batches and layers ([`CodecScope::PerLink`]; see
    /// [`AccelConfig::with_codec_scope`], which keeps
    /// [`NocConfig::link_codec`] in sync).
    pub codec_scope: CodecScope,
    /// Per-flit error-detecting code stamped into every payload frame by
    /// the MC-side transport and checked by the receiving NI. Its check
    /// field rides on extra link wires beside the data, like the codec
    /// side channel (see [`AccelConfig::with_edc`], which re-derives the
    /// link width).
    pub edc: EdcKind,
    /// Popcount-tie handling in the ordering unit (`Stable` = the paper's
    /// popcount-only comparator; `Value` = wider comparator sensitivity
    /// variant, see EXPERIMENTS.md).
    pub tiebreak: TieBreak,
    /// Quantize fixed-8 weights with a global Q0.7 scale instead of
    /// per-tensor max-abs (sensitivity variant; activations stay
    /// per-tensor either way).
    pub global_fx8_weights: bool,
    /// Word lanes per flit (the paper uses 16: 8 inputs + 8 weights).
    pub values_per_flit: usize,
    /// Fixed PE pipeline latency before MACs start.
    pub pe_base_latency: u64,
    /// MAC lanes per PE cycle (task latency adds
    /// `ceil(pairs / pe_mac_lanes)` cycles).
    pub pe_mac_lanes: usize,
    /// Per-MC injection-queue cap in packets (models the prefetch buffer).
    pub mc_prefetch_packets: usize,
    /// Abort threshold per layer (simulation-stall guard).
    pub max_cycles_per_layer: u64,
    /// How MC-side encoding is scheduled against the cycle loop.
    pub driver: DriverMode,
    /// Which engine evaluates each layer's traffic phases:
    /// [`EngineMode::Cycle`] steps the full cycle-accurate mesh (the
    /// reference), [`EngineMode::Analytic`] replays the ordered coded
    /// stream directly (the paper's pure stream metric; serializes
    /// contended phases), [`EngineMode::Auto`] takes the analytic fast
    /// path only when the phase is provably contention-free and is
    /// always bit-identical to `Cycle` on BTs, codec states and outputs
    /// (see [`btr_noc::analytic`]).
    pub engine: EngineMode,
    /// Inputs per traffic phase: every conv/linear layer runs the whole
    /// batch's tasks as one phase, so weights are ordered once per kernel
    /// (not once per input) and the mesh stays full across inputs.
    pub batch_size: usize,
    /// Bounded depth of each MC's encoded-task ready-queue (pipelined
    /// driver only): how far an encoder may run ahead of injection.
    pub encode_queue_depth: usize,
    /// Encoder threads for the pipelined driver: `0` means auto — one
    /// per MC (the hardware shape — one ordering unit beside each
    /// memory controller) when the host has more than one hardware
    /// thread, inline encode otherwise. An explicit value always
    /// spawns that many threads, multiplexing several MCs' encode
    /// streams onto each when fewer than the MC count.
    pub encode_threads: usize,
    /// Force the pipelined encode stage to run inline (cached encode,
    /// no encoder threads) regardless of host parallelism. Set by
    /// callers that already saturate the cores — the parallel sweep
    /// runner fans one cell out per core, so per-cell encoder threads
    /// would only contend. Bit-exact either way.
    pub encode_inline: bool,
}

impl AccelConfig {
    /// The paper's configuration for a `width×height` mesh with `mc_count`
    /// memory controllers: 16 values per flit, hence a 512-bit link for
    /// float-32 or a 128-bit link for fixed-8 (Sec. V-B).
    #[must_use]
    pub fn paper(
        width: usize,
        height: usize,
        mc_count: usize,
        format: DataFormat,
        ordering: OrderingMethod,
    ) -> Self {
        let values_per_flit = 16;
        let link_width = values_per_flit as u32 * format.bits_per_value();
        Self {
            noc: NocConfig::paper_mesh(width, height, mc_count, link_width),
            format,
            ordering,
            codec: CodecKind::Unencoded,
            codec_scope: CodecScope::PerPacket,
            edc: EdcKind::None,
            tiebreak: TieBreak::Stable,
            global_fx8_weights: false,
            values_per_flit,
            pe_base_latency: 4,
            pe_mac_lanes: 16,
            mc_prefetch_packets: 16,
            max_cycles_per_layer: 50_000_000,
            driver: DriverMode::Pipelined,
            engine: EngineMode::Cycle,
            batch_size: 1,
            encode_queue_depth: 32,
            encode_threads: 0,
            encode_inline: false,
        }
    }

    /// The same configuration with a different link codec, the NoC link
    /// width re-derived to cover the codec's side-channel wires (one
    /// extra invert-line wire for bus-invert) beside any EDC check field,
    /// and the NoC's per-link codec kept in sync with the current scope.
    #[must_use]
    pub fn with_codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self.sync_wire_geometry();
        self
    }

    /// The same configuration with a different per-flit EDC, the NoC
    /// link width re-derived to carry the check field's extra wires (one
    /// for parity, eight for CRC-8) beside the data and any codec side
    /// channel, and any armed fault configuration's protected frame kept
    /// in sync.
    #[must_use]
    pub fn with_edc(mut self, edc: EdcKind) -> Self {
        self.edc = edc;
        self.sync_wire_geometry();
        self
    }

    /// Arms the unreliable-link model: wires draw errors from `errors`,
    /// the NI retransmits NACKed packets under `resync` with a
    /// `max_retries` budget. If no EDC is configured yet, CRC-8 is
    /// enabled (detection is mandatory beside a non-zero BER — see
    /// [`FaultConfig::validate`]) and the link width re-derived.
    #[must_use]
    pub fn with_fault(
        mut self,
        errors: ErrorModel,
        resync: ResyncPolicy,
        max_retries: u32,
    ) -> Self {
        if self.edc == EdcKind::None && !errors.ber.is_zero() {
            self.edc = EdcKind::Crc8;
        }
        let mut fault = FaultConfig::new(errors, 0);
        fault.resync = resync;
        fault.max_retries = max_retries;
        self.noc.fault = Some(fault);
        self.sync_wire_geometry();
        self
    }

    /// The same configuration with a different codec scope:
    /// [`CodecScope::PerLink`] moves the codec (and its state) onto the
    /// NoC links, where it persists across packets, batches and layers;
    /// [`CodecScope::PerPacket`] restores the transport-side per-packet
    /// codec. The link width is scope-independent — the side-channel
    /// wires exist on the physical link either way.
    #[must_use]
    pub fn with_codec_scope(mut self, scope: CodecScope) -> Self {
        self.codec_scope = scope;
        self.sync_link_codec();
        self
    }

    /// The [`NocConfig::link_codec`] implied by `(codec, codec_scope)`:
    /// links own state exactly when the scope is per-link and the codec
    /// is stateful. The one derivation both [`AccelConfig::with_codec`] /
    /// [`AccelConfig::with_codec_scope`] and [`AccelConfig::validate`]
    /// use, so they cannot drift.
    fn derived_link_codec(&self) -> Option<CodecKind> {
        match self.codec_scope {
            CodecScope::PerLink => Some(self.codec).filter(|c| c.is_stateful()),
            CodecScope::PerPacket => None,
        }
    }

    fn sync_link_codec(&mut self) {
        self.noc.link_codec = self.derived_link_codec();
    }

    /// Protected frame width: data lanes plus the EDC check field —
    /// everything below the codec side channel.
    fn frame_wires(&self) -> u32 {
        self.values_per_flit as u32 * self.format.bits_per_value() + self.edc.extra_wires()
    }

    /// Re-derives every geometry value downstream of `(format,
    /// values_per_flit, codec, codec_scope, edc)`: the physical link
    /// width, the NoC's per-link codec, and an armed fault config's
    /// protected-frame width and EDC kind.
    fn sync_wire_geometry(&mut self) {
        let frame = self.frame_wires();
        self.noc.link_width_bits = frame + self.codec.extra_wires();
        self.sync_link_codec();
        if let Some(fault) = &mut self.noc.fault {
            fault.edc = self.edc;
            fault.frame_wires = frame;
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        self.noc.validate()?;
        if self.values_per_flit < 2 || !self.values_per_flit.is_multiple_of(2) {
            return Err("values_per_flit must be even and >= 2".into());
        }
        let needed = self.frame_wires() + self.codec.extra_wires();
        if needed != self.noc.link_width_bits {
            return Err(format!(
                "link width {} does not match {} x {} + {} EDC wires + {} codec wires = \
                 {needed} bits",
                self.noc.link_width_bits,
                self.values_per_flit,
                self.format.bits_per_value(),
                self.edc.extra_wires(),
                self.codec.extra_wires()
            ));
        }
        if let Some(fault) = &self.noc.fault {
            if fault.edc != self.edc {
                return Err(format!(
                    "fault config carries EDC {} but the accelerator stamps {} (use with_edc)",
                    fault.edc, self.edc
                ));
            }
            if fault.frame_wires != self.frame_wires() {
                return Err(format!(
                    "fault frame of {} wire(s) does not match the {}-wire data + EDC frame",
                    fault.frame_wires,
                    self.frame_wires()
                ));
            }
            if fault.injects_errors() && self.engine == EngineMode::Analytic {
                return Err(
                    "the analytic engine cannot model error-injected wires; use engine \
                     cycle (or auto, which resolves to cycle under faults)"
                        .into(),
                );
            }
        } else if self.edc != EdcKind::None {
            return Err(format!(
                "EDC {} is stamped but no fault config consumes it (use with_fault, or \
                 with_fault at ber 0 to measure pure EDC overhead)",
                self.edc
            ));
        }
        if self.noc.link_codec != self.derived_link_codec() {
            return Err(format!(
                "noc.link_codec {:?} does not match codec {} at {} scope (use with_codec_scope)",
                self.noc.link_codec, self.codec, self.codec_scope
            ));
        }
        if self.noc.mc_nodes.is_empty() {
            return Err("accelerator needs at least one memory controller".into());
        }
        if self.noc.pe_nodes().is_empty() {
            return Err("accelerator needs at least one processing element".into());
        }
        if self.pe_mac_lanes == 0 {
            return Err("pe_mac_lanes must be positive".into());
        }
        if self.mc_prefetch_packets == 0 {
            return Err("mc_prefetch_packets must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.encode_queue_depth == 0 {
            return Err("encode_queue_depth must be positive".into());
        }
        Ok(())
    }

    /// Encoder threads the pipelined driver spawns for `mc_count` memory
    /// controllers: one per MC unless `encode_threads` caps it lower.
    #[must_use]
    pub fn encoder_threads_for(&self, mc_count: usize) -> usize {
        if self.encode_threads == 0 {
            mc_count
        } else {
            self.encode_threads.clamp(1, mc_count)
        }
    }

    /// PE compute latency for a task of `pairs` operand pairs.
    #[must_use]
    pub fn pe_latency(&self, pairs: usize) -> u64 {
        self.pe_base_latency + pairs.div_ceil(self.pe_mac_lanes) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_valid() {
        for (w, h, mc) in [(4, 4, 2), (8, 8, 4), (8, 8, 8)] {
            for format in [DataFormat::Float32, DataFormat::Fixed8] {
                for ordering in OrderingMethod::ALL {
                    let c = AccelConfig::paper(w, h, mc, format, ordering);
                    assert!(c.validate().is_ok(), "{w}x{h} MC{mc} {format} {ordering}");
                }
            }
        }
    }

    #[test]
    fn link_widths_match_paper() {
        let f32c = AccelConfig::paper(4, 4, 2, DataFormat::Float32, OrderingMethod::Baseline);
        assert_eq!(f32c.noc.link_width_bits, 512);
        let fx8c = AccelConfig::paper(4, 4, 2, DataFormat::Fixed8, OrderingMethod::Baseline);
        assert_eq!(fx8c.noc.link_width_bits, 128);
    }

    #[test]
    fn with_codec_rederives_the_link_width() {
        for format in [DataFormat::Float32, DataFormat::Fixed8] {
            let base = AccelConfig::paper(4, 4, 2, format, OrderingMethod::Separated);
            for codec in CodecKind::ALL {
                let c = base.clone().with_codec(codec);
                assert!(c.validate().is_ok(), "{format} {codec}");
                assert_eq!(
                    c.noc.link_width_bits,
                    16 * format.bits_per_value() + codec.extra_wires()
                );
            }
        }
        // A codec mismatch without the width bump is caught.
        let mut c = AccelConfig::paper(4, 4, 2, DataFormat::Fixed8, OrderingMethod::Baseline);
        c.codec = CodecKind::BusInvert;
        assert!(c.validate().unwrap_err().contains("codec wires"));
    }

    #[test]
    fn validation_catches_mismatched_link() {
        let mut c = AccelConfig::paper(4, 4, 2, DataFormat::Float32, OrderingMethod::Baseline);
        c.noc.link_width_bits = 128;
        assert!(c.validate().unwrap_err().contains("does not match"));
    }

    #[test]
    fn validation_requires_mcs() {
        let mut c = AccelConfig::paper(4, 4, 2, DataFormat::Fixed8, OrderingMethod::Baseline);
        c.noc.mc_nodes.clear();
        assert!(c.validate().is_err());
    }

    #[test]
    fn pe_latency_model() {
        let c = AccelConfig::paper(4, 4, 2, DataFormat::Fixed8, OrderingMethod::Baseline);
        assert_eq!(c.pe_latency(25), 4 + 2); // ceil(25/16) = 2
        assert_eq!(c.pe_latency(400), 4 + 25);
        assert_eq!(c.pe_latency(1), 5);
    }
}
