//! The inference driver: runs a lowered DNN over the NoC, layer by layer.
//!
//! Conv / linear layers generate task packets (MC → PE) and response
//! packets (PE → MC); everything else executes memory-side on the
//! assembled activations. One simulator instance persists across layers so
//! link recorders accumulate the complete inference's bit transitions —
//! the quantity Figs. 12–13 report.
//!
//! # The staged pipeline
//!
//! The paper's ordering unit sits *beside* the memory controller precisely
//! so that sorting and flitizing never stall the link (Sec. V, Fig. 14).
//! The driver models the same overlap in software: with
//! [`DriverMode::Pipelined`] each MC gets an encoder running on its own
//! thread — building tasks from the layer operands, sorting (with the
//! weight permutation cached per kernel, so a layer's weights are ordered
//! once, not once per output pixel or batch element), flitizing and
//! link-coding into a bounded ready-queue — while the cycle loop steps the
//! mesh and only pops finished packets. Encoding for packets the prefetch
//! buffers have not yet requested proceeds concurrently with simulation;
//! layer *L+1* still waits on layer *L*'s outputs (its activations are a
//! data dependency), so the overlap window is the thousands of tasks
//! within each layer.
//!
//! Both driver modes inject the identical packet sequence, so they are
//! bit-exact with each other — same per-link bit transitions, cycle
//! counts, recovered MACs and overhead accounting (pinned by
//! `tests/driver_parity.rs`). Batching ([`AccelConfig::batch_size`]) runs
//! N inputs through each layer as one traffic phase on the same mesh.

use crate::config::{AccelConfig, DriverMode};
use crate::report::{BatchInferenceResult, InferenceResult, LayerTrafficReport};
use crate::tasks::{ConvGeometry, LayerQuantizers, LayerTasks};
use btr_bits::word::{DataFormat, DataWord, F32Word, Fx8Word};
use btr_core::flitize::{EncodeTemplate, FlitizeError};
use btr_core::ordering::{OrderingMethod, TieBreak};
use btr_core::task::RecoveredTask;
use btr_core::transport::{
    CodedTransport, EncodedTask, TaskWireMeta, TransportConfig, TransportScratch,
};
use btr_dnn::model::InferenceOp;
use btr_dnn::tensor::Tensor;
use btr_noc::analytic::{routes_contention_free, routes_link_disjoint, EngineMode};
use btr_noc::session::{SendError, TaskPort};
use btr_noc::sim::{DeliveredPacket, InjectError, Simulator};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Errors from [`run_inference`].
#[derive(Debug)]
pub enum AccelError {
    /// Invalid configuration.
    Config(String),
    /// Flitization failed (geometry).
    Flitize(FlitizeError),
    /// Packet injection failed.
    Inject(InjectError),
    /// Wire-level decode or recovery failed at a PE.
    Decode(String),
    /// A layer did not drain within the configured cycle budget.
    Stall {
        /// Op index of the stalled layer.
        layer: usize,
        /// Cycles spent in the layer before giving up.
        cycles: u64,
    },
    /// The fixed-16 extension format is not wired into the accelerator.
    UnsupportedFormat(DataFormat),
    /// A pipelined encoder thread died (panicked) mid-layer.
    EncoderDied,
    /// A packet kept failing its EDC check until the NI's retry budget
    /// ran out (unreliable-link model).
    Unrecoverable {
        /// Op index of the layer the packet belonged to.
        layer: usize,
        /// Retransmissions spent before giving up.
        retries: u32,
    },
}

impl std::fmt::Display for AccelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccelError::Config(msg) => write!(f, "invalid accelerator config: {msg}"),
            AccelError::Flitize(e) => write!(f, "flitization failed: {e}"),
            AccelError::Inject(e) => write!(f, "injection failed: {e}"),
            AccelError::Decode(msg) => write!(f, "receiver decode failed: {msg}"),
            AccelError::Stall { layer, cycles } => {
                write!(f, "layer {layer} stalled after {cycles} cycles")
            }
            AccelError::UnsupportedFormat(fmt) => {
                write!(f, "format {fmt} is not supported by the accelerator")
            }
            AccelError::EncoderDied => {
                write!(f, "a pipelined encoder thread panicked mid-layer")
            }
            AccelError::Unrecoverable { layer, retries } => {
                write!(
                    f,
                    "layer {layer}: a packet failed its EDC check after {retries} \
                     retransmission(s); retry budget exhausted"
                )
            }
        }
    }
}

impl std::error::Error for AccelError {}

impl From<FlitizeError> for AccelError {
    fn from(e: FlitizeError) -> Self {
        AccelError::Flitize(e)
    }
}

impl From<InjectError> for AccelError {
    fn from(e: InjectError) -> Self {
        AccelError::Inject(e)
    }
}

impl From<SendError> for AccelError {
    fn from(e: SendError) -> Self {
        match e {
            SendError::Encode(e) => AccelError::Flitize(e),
            SendError::Inject(e) => AccelError::Inject(e),
        }
    }
}

/// Words the accelerator can compute on: defines how a PE encodes its MAC
/// result into the 32-bit response image. `Send + Sync` because the
/// pipelined driver encodes tasks of type `W` on the per-MC encoder
/// threads.
pub trait AccelWord: DataWord + Send + Sync {
    /// Encodes the recovered task's MAC result (32-bit field, LSB-first).
    fn response_bits(rec: &RecoveredTask<Self>) -> u64;
}

impl AccelWord for F32Word {
    fn response_bits(rec: &RecoveredTask<Self>) -> u64 {
        u64::from((rec.mac_f64() as f32).to_bits())
    }
}

impl AccelWord for Fx8Word {
    fn response_bits(rec: &RecoveredTask<Self>) -> u64 {
        let mac = rec.mac_i64();
        debug_assert!(
            i64::from(mac as i32) == mac,
            "integer MAC overflowed the 32-bit response field"
        );
        u64::from(mac as i32 as u32)
    }
}

/// Whether this host has more than one hardware thread — the condition
/// under which pipelined encoder threads are an overlap instead of a
/// context-switch tax. Probed once per process: long-lived serving
/// sessions must not re-probe per request, and the decision must not
/// flip mid-stream if the OS changes the process's CPU affinity.
fn host_parallel() -> bool {
    static HOST_PARALLEL: OnceLock<bool> = OnceLock::new();
    *HOST_PARALLEL
        .get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get) > 1)
}

/// How a session schedules MC-side encoding, resolved **once** from an
/// [`AccelConfig`] at session construction (not per inference call, and
/// not per layer): the host-parallelism probe behind the
/// inline-vs-threaded choice runs once per process, so a long-lived
/// server session answers every request with the same schedule.
///
/// All three plans are bit-exact with each other (`tests/driver_parity.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodePlan {
    /// [`DriverMode::Synchronous`]: uncached slot-level encode,
    /// serialized with the cycle loop — the legacy-faithful reference.
    Reference,
    /// Pipelined cached encode running inline in the cycle loop (forced
    /// by `encode_inline`, or the auto fallback on single-hart hosts).
    Inline,
    /// Pipelined encode on this many per-MC encoder threads.
    Threads(usize),
}

impl EncodePlan {
    /// Resolves the schedule a session built from `config` will use for
    /// every inference it serves.
    #[must_use]
    pub fn resolve(config: &AccelConfig) -> Self {
        match config.driver {
            DriverMode::Synchronous => EncodePlan::Reference,
            DriverMode::Pipelined
                if config.encode_inline || (config.encode_threads == 0 && !host_parallel()) =>
            {
                EncodePlan::Inline
            }
            DriverMode::Pipelined => {
                EncodePlan::Threads(config.encoder_threads_for(config.noc.mc_nodes.len()))
            }
        }
    }
}

/// A reusable inference session: one validated [`AccelConfig`] plus the
/// encode schedule resolved once at construction, serving any number of
/// [`run`](InferenceSession::run) calls over the same lowered ops.
///
/// This is the building block of the multi-session service
/// (`btr_serve`): each pool worker owns one session and answers every
/// dispatched batch through it — config validation and the
/// inline-vs-threaded probe happen at pool construction, never on the
/// request hot path. Each `run` call simulates on a fresh mesh, so the
/// reported stats cover exactly that call's traffic.
pub struct InferenceSession<'a> {
    ops: &'a [InferenceOp],
    config: AccelConfig,
    plan: EncodePlan,
    /// One encode cache per op: the weight permutations and pre-rendered
    /// weight flit templates of each conv/linear layer's kernel groups.
    /// Weights never change within a session, so templates built lazily
    /// by the first dispatch are shared across the batch dimension,
    /// across encoder threads, and across every subsequent
    /// [`run`](InferenceSession::run) call.
    caches: Vec<LayerEncodeCache>,
}

/// Per-layer encode cache: the lazily computed descending weight order
/// and pre-rendered [`EncodeTemplate`] of every kernel group — the
/// "weight-side work happens once per session, not once per task"
/// amortization. Computing an entry twice under a race is harmless: the
/// build is deterministic, so every thread derives the identical value.
#[derive(Debug, Default)]
struct LayerEncodeCache {
    wperms: Vec<OnceLock<Vec<usize>>>,
    templates: Vec<OnceLock<Result<EncodeTemplate, FlitizeError>>>,
}

impl LayerEncodeCache {
    fn with_groups(groups: usize) -> Self {
        Self {
            wperms: (0..groups).map(|_| OnceLock::new()).collect(),
            templates: (0..groups).map(|_| OnceLock::new()).collect(),
        }
    }

    /// One cache per op, sized by the op's kernel-group count (conv: one
    /// group per output channel; linear: one per output neuron).
    fn for_ops(ops: &[InferenceOp]) -> Vec<LayerEncodeCache> {
        ops.iter()
            .map(|op| match op {
                InferenceOp::Conv { weight, .. } | InferenceOp::Linear { weight, .. } => {
                    LayerEncodeCache::with_groups(weight.shape()[0])
                }
                _ => LayerEncodeCache::default(),
            })
            .collect()
    }
}

impl<'a> InferenceSession<'a> {
    /// Validates `config` once and resolves the encode schedule.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Config`] when the configuration is
    /// internally inconsistent.
    pub fn new(ops: &'a [InferenceOp], config: AccelConfig) -> Result<Self, AccelError> {
        config.validate().map_err(AccelError::Config)?;
        let plan = EncodePlan::resolve(&config);
        let caches = LayerEncodeCache::for_ops(ops);
        Ok(Self {
            ops,
            config,
            plan,
            caches,
        })
    }

    /// The session's configuration.
    #[must_use]
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// The encode schedule resolved at construction.
    #[must_use]
    pub fn plan(&self) -> EncodePlan {
        self.plan
    }

    /// Runs one dispatch of `1..=config.batch_size` inputs as a batched
    /// inference (the batching window coalesces *up to* `batch_size`
    /// requests, so a bounded-wait flush may dispatch fewer).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError`] on an empty or oversized batch, mismatched
    /// input shapes, flitization failure, a stalled layer, or a decode
    /// failure.
    pub fn run(&self, inputs: &[Tensor]) -> Result<BatchInferenceResult, AccelError> {
        if inputs.is_empty() || inputs.len() > self.config.batch_size {
            return Err(AccelError::Config(format!(
                "a session dispatch takes 1..={} inputs (got {})",
                self.config.batch_size,
                inputs.len()
            )));
        }
        run_batch_resolved(self.ops, inputs, &self.config, self.plan, &self.caches)
    }
}

/// Runs a complete single-input inference over the NoC.
///
/// Requires `config.batch_size == 1`; use [`run_inference_batch`] to run
/// several inputs as one traffic phase per layer.
///
/// # Errors
///
/// Returns [`AccelError`] on invalid configuration, flitization failure,
/// a stalled layer, or a receiver-side decode failure.
pub fn run_inference(
    ops: &[InferenceOp],
    input: &Tensor,
    config: &AccelConfig,
) -> Result<InferenceResult, AccelError> {
    if config.batch_size != 1 {
        return Err(AccelError::Config(format!(
            "run_inference requires batch_size 1 (got {}); use run_inference_batch",
            config.batch_size
        )));
    }
    Ok(run_inference_batch(ops, std::slice::from_ref(input), config)?.into_single())
}

/// Runs a batch of inputs through the network, each conv/linear layer
/// transmitting the whole batch's tasks as **one traffic phase**: weight
/// kernels are materialized and sorted once per layer instead of once per
/// input, and the mesh stays busy across inputs instead of draining at
/// every per-input layer boundary.
///
/// `inputs.len()` must equal `config.batch_size`. With `batch_size == 1`
/// this is exactly the single-input driver (pinned by
/// `tests/driver_parity.rs`), and each batched output is bit-identical to
/// the output of a sequential single-input run: every task's MAC depends
/// only on its own operands, never on how the batch's packets interleave
/// in the mesh.
///
/// # Errors
///
/// Returns [`AccelError`] on invalid configuration or batch size,
/// flitization failure, a stalled layer, or a decode failure.
pub fn run_inference_batch(
    ops: &[InferenceOp],
    inputs: &[Tensor],
    config: &AccelConfig,
) -> Result<BatchInferenceResult, AccelError> {
    if inputs.len() != config.batch_size {
        return Err(AccelError::Config(format!(
            "batch_size {} does not match the {} inputs provided",
            config.batch_size,
            inputs.len()
        )));
    }
    InferenceSession::new(ops, config.clone())?.run(inputs)
}

/// The per-call body shared by [`InferenceSession::run`] (and through it
/// every one-shot entry point): `config` is already validated and `plan`
/// already resolved.
fn run_batch_resolved(
    ops: &[InferenceOp],
    inputs: &[Tensor],
    config: &AccelConfig,
    plan: EncodePlan,
    caches: &[LayerEncodeCache],
) -> Result<BatchInferenceResult, AccelError> {
    // Layer geometry and window indexing derive from element 0; a
    // mismatched tensor would read the wrong pixels silently.
    if let Some(bad) = inputs.iter().find(|x| x.shape() != inputs[0].shape()) {
        return Err(AccelError::Config(format!(
            "batch inputs must share one shape: got {:?} and {:?}",
            inputs[0].shape(),
            bad.shape()
        )));
    }
    let mut sim = Simulator::new(config.noc.clone());
    let mut xs: Vec<Tensor> = inputs.to_vec();
    let mut per_layer = Vec::new();
    let mut overhead = WireOverhead::default();

    for (op_index, op) in ops.iter().enumerate() {
        match op {
            InferenceOp::Conv {
                weight,
                bias,
                stride,
                padding,
            } => {
                let geo = ConvGeometry::from_shapes(&xs[0], weight, *stride, *padding);
                let out_shape = [geo.out_channels, geo.out_h, geo.out_w];
                let values = match config.format {
                    DataFormat::Float32 => {
                        let source = LayerTasks::conv(
                            &xs,
                            weight,
                            bias,
                            geo,
                            f32_input_mappers(xs.len()),
                            F32Word::new,
                            F32Word::new,
                        );
                        run_noc_layer_f32(
                            op_index,
                            "conv",
                            &source,
                            config,
                            &mut sim,
                            &mut per_layer,
                            &mut overhead,
                            plan,
                            &caches[op_index],
                        )?
                    }
                    DataFormat::Fixed8 => {
                        let qs = layer_quantizers(&xs, weight, bias, config);
                        let q0 = qs[0];
                        let source = LayerTasks::conv(
                            &xs,
                            weight,
                            bias,
                            geo,
                            fx8_input_mappers(&qs),
                            move |w| q0.weight.quantize_fx8(w),
                            move |b| q0.bias.quantize_fx8(b),
                        );
                        run_noc_layer_fx8(
                            op_index,
                            "conv",
                            &source,
                            &qs,
                            config,
                            &mut sim,
                            &mut per_layer,
                            &mut overhead,
                            plan,
                            &caches[op_index],
                        )?
                    }
                    other => return Err(AccelError::UnsupportedFormat(other)),
                };
                xs = tensors_from(values, &out_shape);
            }
            InferenceOp::Linear { weight, bias } => {
                let out_shape = [weight.shape()[0]];
                let values = match config.format {
                    DataFormat::Float32 => {
                        let source = LayerTasks::linear(
                            &xs,
                            weight,
                            bias,
                            f32_input_mappers(xs.len()),
                            F32Word::new,
                            F32Word::new,
                        );
                        run_noc_layer_f32(
                            op_index,
                            "linear",
                            &source,
                            config,
                            &mut sim,
                            &mut per_layer,
                            &mut overhead,
                            plan,
                            &caches[op_index],
                        )?
                    }
                    DataFormat::Fixed8 => {
                        let qs = layer_quantizers(&xs, weight, bias, config);
                        let q0 = qs[0];
                        let source = LayerTasks::linear(
                            &xs,
                            weight,
                            bias,
                            fx8_input_mappers(&qs),
                            move |w| q0.weight.quantize_fx8(w),
                            move |b| q0.bias.quantize_fx8(b),
                        );
                        run_noc_layer_fx8(
                            op_index,
                            "linear",
                            &source,
                            &qs,
                            config,
                            &mut sim,
                            &mut per_layer,
                            &mut overhead,
                            plan,
                            &caches[op_index],
                        )?
                    }
                    other => return Err(AccelError::UnsupportedFormat(other)),
                };
                xs = tensors_from(values, &out_shape);
            }
            // Memory-side ops run between layers (the layer-level interval).
            other => xs = xs.iter().map(|x| other.execute(x)).collect(),
        }
    }

    Ok(BatchInferenceResult {
        outputs: xs,
        stats: sim.stats(),
        total_cycles: sim.cycle(),
        per_layer,
        index_overhead_bits: overhead.index_bits,
        codec_overhead_bits: overhead.codec_bits,
        edc_overhead_bits: overhead.edc_bits,
        retransmitted_flits: overhead.retransmitted_flits,
        retried_packets: overhead.retried_packets,
    })
}

/// One float-32 input mapper per batch element (the identity encoding).
fn f32_input_mappers<'a>(batch: usize) -> Vec<Box<dyn Fn(f32) -> F32Word + Send + Sync + 'a>> {
    (0..batch)
        .map(|_| Box::new(F32Word::new) as Box<dyn Fn(f32) -> F32Word + Send + Sync + 'a>)
        .collect()
}

/// One fixed-8 activation mapper per batch element (activation scales are
/// per-element; weight/bias scales are shared).
fn fx8_input_mappers<'a>(
    qs: &[LayerQuantizers],
) -> Vec<Box<dyn Fn(f32) -> Fx8Word + Send + Sync + 'a>> {
    qs.iter()
        .map(|&q| {
            Box::new(move |x| q.input.quantize_fx8(x))
                as Box<dyn Fn(f32) -> Fx8Word + Send + Sync + 'a>
        })
        .collect()
}

/// Per-batch-element quantizers for one fixed-8 layer: activation scales
/// derive from each element's own tensor, weight/bias scales from the
/// shared parameters.
fn layer_quantizers(
    xs: &[Tensor],
    weight: &Tensor,
    bias: &Tensor,
    config: &AccelConfig,
) -> Vec<LayerQuantizers> {
    xs.iter()
        .map(|x| LayerQuantizers::derive_with(x, weight, bias, config.global_fx8_weights))
        .collect()
}

/// Reassembles per-element value vectors into output tensors.
fn tensors_from(values: Vec<Vec<f32>>, shape: &[usize]) -> Vec<Tensor> {
    values
        .into_iter()
        .map(|v| Tensor::from_vec(shape, v).expect("task count matches shape"))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_noc_layer_f32(
    op_index: usize,
    op_name: &'static str,
    source: &LayerTasks<F32Word>,
    config: &AccelConfig,
    sim: &mut Simulator,
    per_layer: &mut Vec<LayerTrafficReport>,
    overhead: &mut WireOverhead,
    plan: EncodePlan,
    cache: &LayerEncodeCache,
) -> Result<Vec<Vec<f32>>, AccelError> {
    let responses = run_layer(
        op_index, op_name, source, config, sim, per_layer, overhead, plan, cache,
    )?;
    Ok(responses
        .chunks(source.per_input())
        .map(|chunk| {
            chunk
                .iter()
                .map(|&bits| f32::from_bits(bits as u32))
                .collect()
        })
        .collect())
}

#[allow(clippy::too_many_arguments)]
fn run_noc_layer_fx8(
    op_index: usize,
    op_name: &'static str,
    source: &LayerTasks<Fx8Word>,
    qs: &[LayerQuantizers],
    config: &AccelConfig,
    sim: &mut Simulator,
    per_layer: &mut Vec<LayerTrafficReport>,
    overhead: &mut WireOverhead,
    plan: EncodePlan,
    cache: &LayerEncodeCache,
) -> Result<Vec<Vec<f32>>, AccelError> {
    let responses = run_layer(
        op_index, op_name, source, config, sim, per_layer, overhead, plan, cache,
    )?;
    // The bias code separates the integer dot product from the bias
    // during dequantization; it is per weight group, shared across the
    // batch.
    Ok(responses
        .chunks(source.per_input())
        .enumerate()
        .map(|(b, chunk)| {
            chunk
                .iter()
                .enumerate()
                .map(|(local, &bits)| {
                    let mac = i64::from(bits as u32 as i32);
                    let bias_code = source.bias_word(source.weight_group(local)).code();
                    qs[b].dequantize_response(mac, bias_code)
                })
                .collect()
        })
        .collect())
}

/// Partitions the PEs into one balanced region per MC, each PE joining the
/// nearest non-full MC (Manhattan distance, greedy in node order).
///
/// Each MC serves only its own region, so the average hop count per flit
/// scales with routers-per-MC — the effect behind Fig. 12's observation
/// that the 8×8 mesh with 4 MCs accumulates the most BTs.
fn partition_pes_by_mc(config: &btr_noc::config::NocConfig) -> Vec<Vec<usize>> {
    let mcs = &config.mc_nodes;
    let pes = config.pe_nodes();
    let cap = pes.len().div_ceil(mcs.len());
    let mut regions: Vec<Vec<usize>> = vec![Vec::new(); mcs.len()];
    // Assign PEs in order of how constrained they are (largest distance to
    // their nearest MC first), so central nodes don't fill a far MC early.
    let mut order: Vec<usize> = pes;
    order.sort_by_key(|&pe| {
        std::cmp::Reverse(
            mcs.iter()
                .map(|&mc| btr_noc::routing::hop_count(config, mc, pe))
                .min()
                .unwrap_or(0),
        )
    });
    for pe in order {
        let best = mcs
            .iter()
            .enumerate()
            .filter(|(mi, _)| regions[*mi].len() < cap)
            .min_by_key(|(_, &mc)| btr_noc::routing::hop_count(config, mc, pe))
            .map(|(mi, _)| mi)
            .expect("capacity covers all PEs");
        regions[best].push(pe);
    }
    // Deterministic order within each region.
    for region in &mut regions {
        region.sort_unstable();
    }
    regions
}

/// Side-channel bits accumulated across an inference, out-of-band of the
/// data wires: the O2 re-pairing index, the link codec's invert lines and
/// the EDC check fields — plus the recovery protocol's retry accounting.
#[derive(Debug, Default, Clone, Copy)]
struct WireOverhead {
    index_bits: u64,
    codec_bits: u64,
    edc_bits: u64,
    retransmitted_flits: u64,
    retried_packets: u64,
}

/// The MC-side encode stage: task construction + ordering + flitization +
/// link coding, with the weight permutation cached per kernel group. One
/// instance per layer, shared (`&self`) by every encoder thread and by
/// the synchronous feed.
struct EncodeStage<'a, W: AccelWord> {
    source: &'a LayerTasks<W>,
    session: CodedTransport,
    ordering: OrderingMethod,
    tiebreak: TieBreak,
    /// The session-lifetime weight-side cache for this layer: descending
    /// weight orders and pre-rendered weight flit templates per kernel
    /// group, shared by every encoder thread and across dispatches.
    cache: &'a LayerEncodeCache,
}

impl<'a, W: AccelWord> EncodeStage<'a, W> {
    fn new(source: &'a LayerTasks<W>, config: &AccelConfig, cache: &'a LayerEncodeCache) -> Self {
        debug_assert_eq!(
            cache.templates.len(),
            source.group_count(),
            "layer cache sized for a different kernel-group count"
        );
        Self {
            source,
            session: CodedTransport::new(TransportConfig {
                ordering: config.ordering,
                tiebreak: config.tiebreak,
                values_per_flit: config.values_per_flit,
                codec: config.codec,
                scope: config.codec_scope,
                edc: config.edc,
            }),
            ordering: config.ordering,
            tiebreak: config.tiebreak,
            cache,
        }
    }

    /// Builds and encodes global task `j` the pre-pipeline way: eager
    /// slot-level materialization, full per-task sort, fresh scratch —
    /// the [`DriverMode::Synchronous`] reference the bench trajectory
    /// measures the pipeline against. Deliberately bypasses the template
    /// cache so it stays an independent oracle for the fast path.
    fn encode_reference(&self, j: usize) -> Result<EncodedTask<W>, FlitizeError> {
        self.session.encode_task_reference(&self.source.build(j))
    }

    /// The group's cached descending weight order, computed on first use.
    fn wperm(&self, group: usize) -> &[usize] {
        self.cache.wperms[group].get_or_init(|| {
            self.tiebreak
                .descending_order(self.source.group_weights(group))
        })
    }

    /// The group's cached encode template: ordered weight fields, bias
    /// and O2 index overhead pre-rendered into flit images, built on the
    /// first task that touches the group and reused for every later task
    /// in the batch — and in later dispatches of the same session.
    fn template(&self, group: usize) -> Result<&EncodeTemplate, FlitizeError> {
        self.cache.templates[group]
            .get_or_init(|| {
                let wperm = match self.ordering {
                    OrderingMethod::Baseline => None,
                    OrderingMethod::Affiliated | OrderingMethod::Separated => {
                        Some(self.wperm(group))
                    }
                };
                self.session.weight_template(
                    self.source.group_weights(group),
                    self.source.bias_word(group),
                    wperm,
                    &mut TransportScratch::default(),
                )
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Builds and encodes global task `j` — bit-identical to the plain
    /// `encode_task` path, but through the pre-rendered weight template:
    /// only the activation lanes (and for O2 the input sort + pair index)
    /// are dealt per task (`input_buf` is the reused per-thread window
    /// buffer).
    fn encode(
        &self,
        j: usize,
        scratch: &mut TransportScratch,
        input_buf: &mut Vec<W>,
    ) -> Result<EncodedTask<W>, FlitizeError> {
        let (_weights, _bias) = self.source.operands_into(j, input_buf);
        let template = self.template(self.source.weight_group(j))?;
        self.session
            .encode_with_template(template, input_buf, scratch)
    }
}

/// A bounded MPSC hand-off between one MC's encoder and the cycle loop.
/// Encode errors travel through the queue as values so the consumer
/// surfaces them in injection order.
struct ReadyQueue<W> {
    state: Mutex<VecDeque<Result<EncodedTask<W>, FlitizeError>>>,
    avail: Condvar,
    space: Condvar,
    cap: usize,
}

impl<W: DataWord> ReadyQueue<W> {
    fn new(cap: usize) -> Self {
        Self {
            state: Mutex::new(VecDeque::with_capacity(cap)),
            avail: Condvar::new(),
            space: Condvar::new(),
            cap,
        }
    }

    /// Blocking push; returns `false` if the consumer aborted while this
    /// producer was waiting for space.
    fn push(&self, item: Result<EncodedTask<W>, FlitizeError>, abort: &AtomicBool) -> bool {
        let mut q = self.state.lock().expect("ready-queue poisoned");
        while q.len() >= self.cap {
            if abort.load(AtomicOrdering::Acquire) {
                return false;
            }
            // Timed wait so an abort set after the check still wakes us.
            let (guard, _) = self
                .space
                .wait_timeout(q, Duration::from_millis(1))
                .expect("ready-queue poisoned");
            q = guard;
        }
        q.push_back(item);
        drop(q);
        self.avail.notify_one();
        true
    }

    /// Non-blocking push for encoder threads multiplexing several MCs.
    fn try_push(
        &self,
        item: Result<EncodedTask<W>, FlitizeError>,
    ) -> Result<(), Result<EncodedTask<W>, FlitizeError>> {
        let mut q = self.state.lock().expect("ready-queue poisoned");
        if q.len() >= self.cap {
            return Err(item);
        }
        q.push_back(item);
        drop(q);
        self.avail.notify_one();
        Ok(())
    }

    /// Blocking pop (consumer side): the consumer pops exactly as many
    /// items as the MC has tasks, so a live producer always eventually
    /// delivers. `producer_died` is the escape for the one case where
    /// it cannot — an encoder thread panicking mid-layer — turning a
    /// would-be permanent hang into `None` (the panic itself then
    /// propagates when the scope joins the dead thread).
    fn pop(&self, producer_died: &AtomicBool) -> Option<Result<EncodedTask<W>, FlitizeError>> {
        let mut q = self.state.lock().expect("ready-queue poisoned");
        loop {
            if let Some(item) = q.pop_front() {
                drop(q);
                self.space.notify_one();
                return Some(item);
            }
            if producer_died.load(AtomicOrdering::Acquire) {
                return None;
            }
            // Timed wait so a death flag set after the check still
            // wakes us.
            let (guard, _) = self
                .avail
                .wait_timeout(q, Duration::from_millis(1))
                .expect("ready-queue poisoned");
            q = guard;
        }
    }
}

/// Encoder-thread body: encodes its MCs' tasks in per-MC order into the
/// ready-queues until done, an encode error, or a consumer abort.
fn encoder_loop<W: AccelWord>(
    stage: &EncodeStage<'_, W>,
    queues: &[ReadyQueue<W>],
    per_mc_tasks: &[Vec<usize>],
    owned: &[usize],
    abort: &AtomicBool,
) {
    let mut scratch = TransportScratch::default();
    let mut input_buf: Vec<W> = Vec::new();
    if let [mi] = *owned {
        // One MC per thread (the default): simple blocking pushes.
        for &j in &per_mc_tasks[mi] {
            if abort.load(AtomicOrdering::Acquire) {
                return;
            }
            let item = stage.encode(j, &mut scratch, &mut input_buf);
            let failed = item.is_err();
            if !queues[mi].push(item, abort) || failed {
                return;
            }
        }
        return;
    }
    // Multiplexed: round-robin over the owned MCs with one stash slot
    // each, never blocking on a single full queue (a blocked push here
    // could starve a sibling MC the consumer is waiting on).
    let mut cursors = vec![0usize; owned.len()];
    let mut stash: Vec<Option<Result<EncodedTask<W>, FlitizeError>>> =
        (0..owned.len()).map(|_| None).collect();
    loop {
        if abort.load(AtomicOrdering::Acquire) {
            return;
        }
        let mut progressed = false;
        let mut done = true;
        for (k, &mi) in owned.iter().enumerate() {
            if let Some(item) = stash[k].take() {
                match queues[mi].try_push(item) {
                    Ok(()) => progressed = true,
                    Err(item) => {
                        stash[k] = Some(item);
                        done = false;
                        continue;
                    }
                }
            }
            if cursors[k] < per_mc_tasks[mi].len() {
                done = false;
                let j = per_mc_tasks[mi][cursors[k]];
                cursors[k] += 1;
                let item = stage.encode(j, &mut scratch, &mut input_buf);
                let failed = item.is_err();
                if let Err(item) = queues[mi].try_push(item) {
                    stash[k] = Some(item);
                }
                if failed {
                    // Stop this MC's stream; the consumer aborts on pop.
                    cursors[k] = per_mc_tasks[mi].len();
                }
                progressed = true;
            }
        }
        if done {
            return;
        }
        if !progressed {
            std::thread::park_timeout(Duration::from_micros(100));
        }
    }
}

/// Where the cycle loop gets its next wire-ready packet from.
enum TaskFeed<'a, W: AccelWord> {
    /// Uncached inline encode, serialized with the simulation — the
    /// legacy-faithful [`DriverMode::Synchronous`] reference.
    Reference { stage: &'a EncodeStage<'a, W> },
    /// Cached inline encode: the pipelined encode stage without threads,
    /// used when the host has no spare hardware threads to overlap on.
    /// The scratch is boxed: it is one allocation per layer and keeps
    /// the feed enum pointer-sized next to the queue variant.
    Inline {
        stage: &'a EncodeStage<'a, W>,
        scratch: Box<TransportScratch>,
        input_buf: Vec<W>,
    },
    /// Pop from the per-MC encoder ready-queues.
    Queues {
        queues: &'a [ReadyQueue<W>],
        producer_died: &'a AtomicBool,
    },
}

impl<W: AccelWord> TaskFeed<'_, W> {
    fn next(&mut self, mi: usize, j: usize) -> Result<EncodedTask<W>, AccelError> {
        match self {
            TaskFeed::Reference { stage } => Ok(stage.encode_reference(j)?),
            TaskFeed::Inline {
                stage,
                scratch,
                input_buf,
            } => Ok(stage.encode(j, scratch, input_buf)?),
            TaskFeed::Queues {
                queues,
                producer_died,
            } => match queues[mi].pop(producer_died) {
                Some(item) => Ok(item?),
                None => Err(AccelError::EncoderDied),
            },
        }
    }

    /// True in the legacy-faithful reference mode, which also decodes
    /// deliveries through the preserved slot-level path.
    fn is_reference(&self) -> bool {
        matches!(self, TaskFeed::Reference { .. })
    }
}

/// Accounting the cycle loop hands back to [`run_layer`].
struct LayerRun {
    responses: Vec<u64>,
    request_flits: u64,
    index_bits: u64,
    codec_bits: u64,
    edc_bits: u64,
}

/// Which engine [`run_layer`] resolved for one layer's traffic phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LayerEngine {
    /// Step the mesh cycle by cycle ([`cycle_loop`]).
    Cycle,
    /// Replay the ordered coded streams directly ([`analytic_loop`]).
    /// `verified` records that the layer's combined route set was proven
    /// contention-free, making the replay bit-exact with the cycle
    /// engine (and arming the debug-build cycle oracle).
    Analytic { verified: bool },
    /// Split engine ([`hybrid_loop`]): the request phase — the bulk of a
    /// layer's flits — replays analytically, the response phase steps
    /// the mesh through the real cycle engine on the closed-form
    /// response schedule. Resolved only when that split is provably
    /// invisible (see [`LayerEngine::resolve`]), so it is bit-identical
    /// to [`cycle_loop`] on per-link BTs, codec-lane states, overheads
    /// and delivered payloads.
    Hybrid,
}

impl LayerEngine {
    /// Resolves the engine for one layer from the configured mode and
    /// the layer's static task→destination assignment.
    ///
    /// `Auto` first classifies the **combined** request *and* response
    /// route set: in the cycle engine responses inject while later
    /// requests are still in flight, so the analytic engine's clean
    /// two-phase split is provably invisible when no two packets of the
    /// whole layer — MC→PE or PE→MC — share a directed router-output
    /// link across sources ([`routes_contention_free`], which admits
    /// same-source FIFO-trailing sharing).
    ///
    /// Failing that, it tries the **hybrid split**: if the request route
    /// set alone is contention-free *and* touches no directed link any
    /// response route touches ([`routes_link_disjoint`]), then requests
    /// and responses cannot interact anywhere in the mesh — no shared
    /// output port, and (since an input port is fed by exactly one
    /// directed link) no shared input port — so the fully overlapped
    /// cycle engine factors exactly into "requests as if alone" ×
    /// "responses injected at their compute-ready cycles". The request
    /// phase replays analytically (bulk lane kernels), the converging
    /// response phase runs the true cycle engine on the same relative
    /// inject schedule, and every link's flit order is the overlapped
    /// run's. This is the case that matters in practice: DNN response
    /// traffic from many PEs converges on each MC's ejection link, which
    /// no per-link order rule can serialize, while the heavyweight
    /// request fan-out from each MC is naturally single-source per link.
    ///
    /// Error-injected wires (`ber > 0`) are categorically ineligible:
    /// the analytic replay models a perfect stream, so `Auto` resolves
    /// them to the cycle engine regardless of the route set.
    fn resolve(config: &AccelConfig, dests: &[(usize, usize)]) -> Self {
        match config.engine {
            EngineMode::Cycle => LayerEngine::Cycle,
            EngineMode::Analytic => LayerEngine::Analytic { verified: false },
            EngineMode::Auto => {
                if config.noc.injects_errors() {
                    return LayerEngine::Cycle;
                }
                if routes_contention_free(
                    &config.noc,
                    dests.iter().flat_map(|&(pe, mc)| [(mc, pe), (pe, mc)]),
                ) {
                    LayerEngine::Analytic { verified: true }
                } else if routes_contention_free(
                    &config.noc,
                    dests.iter().map(|&(pe, mc)| (mc, pe)),
                ) && routes_link_disjoint(
                    &config.noc,
                    dests.iter().map(|&(pe, mc)| (mc, pe)),
                    dests.iter().map(|&(pe, mc)| (pe, mc)),
                ) {
                    LayerEngine::Hybrid
                } else {
                    LayerEngine::Cycle
                }
            }
        }
    }

    /// True when the layer's request phase — the bulk of its flits —
    /// rides the analytic stream replay (fully, or as the hybrid split's
    /// first half).
    fn is_analytic(self) -> bool {
        matches!(self, LayerEngine::Analytic { .. } | LayerEngine::Hybrid)
    }
}

/// Runs one layer's traffic through the resolved engine. Both engines
/// consume the same feed in the same per-MC order and hand back the same
/// accounting; [`LayerEngine::resolve`] decides which one a layer gets.
#[allow(clippy::too_many_arguments)]
fn drive_layer<W: AccelWord>(
    engine: LayerEngine,
    op_index: usize,
    config: &AccelConfig,
    sim: &mut Simulator,
    port: &TaskPort<CodedTransport>,
    dests: &[(usize, usize)],
    per_mc_tasks: &[Vec<usize>],
    feed: &mut TaskFeed<'_, W>,
) -> Result<LayerRun, AccelError> {
    match engine {
        LayerEngine::Cycle => cycle_loop(op_index, config, sim, port, dests, per_mc_tasks, feed),
        LayerEngine::Analytic { verified } => analytic_loop(
            op_index,
            config,
            sim,
            port,
            dests,
            per_mc_tasks,
            feed,
            verified,
        ),
        LayerEngine::Hybrid => hybrid_loop(op_index, config, sim, port, dests, per_mc_tasks, feed),
    }
}

/// Runs the NI acceptance check on one delivery, mapping the typed
/// protocol outcomes into the driver's error space. `Ok(true)` means the
/// delivery verified clean and should be processed; `Ok(false)` means it
/// was NACKed and its retained original is already re-injected — skip it
/// and keep stepping the mesh.
fn accept_delivery<W: AccelWord>(
    port: &TaskPort<CodedTransport>,
    sim: &mut Simulator,
    d: &DeliveredPacket,
    layer: usize,
) -> Result<bool, AccelError> {
    use btr_core::transport::TransportError;
    match port.accept::<W>(sim, d) {
        Ok(Some(_retries)) => Ok(true),
        Ok(None) => Ok(false),
        Err(TransportError::Unrecoverable { retries }) => {
            Err(AccelError::Unrecoverable { layer, retries })
        }
        Err(e) => Err(AccelError::Decode(e.to_string())),
    }
}

/// Runs one conv/linear layer's batch of traffic to completion. Returns
/// the 32-bit response images indexed by global task id (batch-major,
/// then flat output index).
#[allow(clippy::too_many_arguments)]
fn run_layer<W: AccelWord>(
    op_index: usize,
    op_name: &'static str,
    source: &LayerTasks<W>,
    config: &AccelConfig,
    sim: &mut Simulator,
    per_layer: &mut Vec<LayerTrafficReport>,
    overhead: &mut WireOverhead,
    plan: EncodePlan,
    cache: &LayerEncodeCache,
) -> Result<Vec<u64>, AccelError> {
    let mcs = &config.noc.mc_nodes;
    let regions = partition_pes_by_mc(&config.noc);
    let total = source.total();

    // Static assignment: task j -> MC round-robin, then round-robin over
    // that MC's own PE region. O0/O1/O2 runs, both driver modes and every
    // batch element use identical assignments, so BT comparisons are
    // apples-to-apples.
    let dests: Vec<(usize, usize)> = (0..total)
        .map(|j| {
            let mi = j % mcs.len();
            let region = &regions[mi];
            (region[(j / mcs.len()) % region.len()], mcs[mi])
        })
        .collect();
    let mut per_mc_tasks: Vec<Vec<usize>> = vec![Vec::new(); mcs.len()];
    for j in 0..total {
        per_mc_tasks[j % mcs.len()].push(j);
    }

    // The MC-side ordering unit, the link codec and PE-side recovery all
    // live in the shared transport session; the NoC port binds it to the
    // simulator, so both the request and response paths ride the coded
    // wire.
    let stage = EncodeStage::new(source, config, cache);
    // Arm the NI recovery protocol whenever a fault config exists — even
    // at ber = 0, so the EDC verify stays on the receive path and
    // zero-BER equivalence is measured, not assumed.
    let port = match &config.noc.fault {
        Some(fault) => TaskPort::with_recovery(stage.session, fault),
        None => TaskPort::new(stage.session),
    };

    let start_cycle = sim.cycle();
    let transitions_before = sim.stats().total_transitions;
    let engine = LayerEngine::resolve(config, &dests);

    // The schedule was resolved once at session construction
    // ([`EncodePlan::resolve`]); per-layer code never re-probes the host.
    let run = match plan {
        EncodePlan::Reference => {
            let mut feed = TaskFeed::Reference { stage: &stage };
            drive_layer(
                engine,
                op_index,
                config,
                sim,
                &port,
                &dests,
                &per_mc_tasks,
                &mut feed,
            )
        }
        EncodePlan::Inline => {
            let mut feed = TaskFeed::Inline {
                stage: &stage,
                scratch: Box::default(),
                input_buf: Vec::new(),
            };
            drive_layer(
                engine,
                op_index,
                config,
                sim,
                &port,
                &dests,
                &per_mc_tasks,
                &mut feed,
            )
        }
        EncodePlan::Threads(threads) => {
            let queues: Vec<ReadyQueue<W>> = (0..mcs.len())
                .map(|_| ReadyQueue::new(config.encode_queue_depth))
                .collect();
            let abort = AtomicBool::new(false);
            let producer_died = AtomicBool::new(false);
            // The schedule is resolved (and clamped) in exactly one
            // place: EncodePlan::resolve.
            debug_assert!(threads >= 1 && threads <= mcs.len());
            let owned_sets: Vec<Vec<usize>> = (0..threads)
                .map(|t| (0..mcs.len()).filter(|mi| mi % threads == t).collect())
                .collect();
            rayon::scope(|s| {
                for owned in &owned_sets {
                    let (stage, queues, per_mc_tasks, abort, producer_died) =
                        (&stage, &queues, &per_mc_tasks, &abort, &producer_died);
                    s.spawn(move |_| {
                        // Flag a panicking encoder so the cycle loop's
                        // pops stop waiting for it; the panic itself
                        // resurfaces when the scope joins this thread.
                        struct DeathFlag<'f>(&'f AtomicBool);
                        impl Drop for DeathFlag<'_> {
                            fn drop(&mut self) {
                                if std::thread::panicking() {
                                    self.0.store(true, AtomicOrdering::Release);
                                }
                            }
                        }
                        let _flag = DeathFlag(producer_died);
                        encoder_loop(stage, queues, per_mc_tasks, owned, abort);
                    });
                }
                let mut feed = TaskFeed::Queues {
                    queues: &queues,
                    producer_died: &producer_died,
                };
                let run = drive_layer(
                    engine,
                    op_index,
                    config,
                    sim,
                    &port,
                    &dests,
                    &per_mc_tasks,
                    &mut feed,
                );
                // Release any producer still waiting for queue space
                // (error paths leave tasks unconsumed) before the scope
                // joins the encoder threads.
                abort.store(true, AtomicOrdering::Release);
                run
            })
        }
    }?;

    let transitions_after = sim.stats().total_transitions;
    per_layer.push(LayerTrafficReport {
        op_index,
        op_name,
        request_packets: total as u64,
        request_flits: run.request_flits,
        cycles: sim.cycle() - start_cycle,
        transitions: transitions_after - transitions_before,
        pairs_per_task: source.pairs_per_task(),
        analytic: engine.is_analytic(),
    });
    overhead.index_bits += run.index_bits;
    overhead.codec_bits += run.codec_bits;
    overhead.edc_bits += run.edc_bits;
    let fault_stats = port.take_fault_stats();
    debug_assert_eq!(fault_stats.failed_packets, 0, "failures surface as errors");
    overhead.retransmitted_flits += fault_stats.retransmitted_flits;
    overhead.retried_packets += fault_stats.recovered_packets;
    Ok(run.responses)
}

/// The per-cycle half of a layer: keep the MC prefetch buffers topped up
/// from the feed, step the mesh, decode deliveries, inject PE responses.
/// Allocation-free per cycle: deliveries drain into one reused buffer and
/// the synchronous feed encodes through reused scratch.
#[allow(clippy::too_many_arguments)]
fn cycle_loop<W: AccelWord>(
    op_index: usize,
    config: &AccelConfig,
    sim: &mut Simulator,
    port: &TaskPort<CodedTransport>,
    dests: &[(usize, usize)],
    per_mc_tasks: &[Vec<usize>],
    feed: &mut TaskFeed<'_, W>,
) -> Result<LayerRun, AccelError> {
    let mcs = &config.noc.mc_nodes;
    let total = dests.len();
    let mut cursors = vec![0usize; mcs.len()];
    let mut wires: Vec<Option<TaskWireMeta>> = vec![None; total];
    let mut responses: Vec<Option<u64>> = vec![None; total];
    let mut remaining = total;
    // (ready_cycle, tag, response_bits) min-heap for PE compute latency.
    let mut compute_queue: BinaryHeap<Reverse<(u64, usize, u64)>> = BinaryHeap::new();
    let mut delivered: Vec<DeliveredPacket> = Vec::new();
    let mut decode_scratch = TransportScratch::default();
    // Reused across packets: the fully allocation-free receiver path.
    let mut recovered = RecoveredTask::<W> {
        pairs: Vec::new(),
        bias: W::from_bits_u64(0),
    };

    let start_cycle = sim.cycle();
    let mut run = LayerRun {
        responses: Vec::new(),
        request_flits: 0,
        index_bits: 0,
        codec_bits: 0,
        edc_bits: 0,
    };

    while remaining > 0 {
        // MC-side: keep each prefetch buffer topped up with ordered
        // packets from the feed.
        for (mi, &mc) in mcs.iter().enumerate() {
            while sim.pending_at(mc) < config.mc_prefetch_packets {
                let Some(&j) = per_mc_tasks[mi].get(cursors[mi]) else {
                    break;
                };
                cursors[mi] += 1;
                let encoded = feed.next(mi, j)?;
                let (pe, mc_node) = dests[j];
                let sent = port.send_encoded(sim, mc_node, pe, encoded, j as u64)?;
                run.index_bits += sent.index_overhead_bits;
                run.codec_bits += sent.codec_overhead_bits;
                run.edc_bits += sent.edc_overhead_bits;
                run.request_flits += sent.flit_count as u64;
                wires[j] = Some(sent.meta);
            }
        }

        sim.step();

        // Deliveries: requests at PEs, responses at MCs — each one runs
        // the NI acceptance check first; a NACKed delivery is skipped
        // here and arrives again after its retransmission.
        sim.drain_all_delivered_into(&mut delivered);
        for d in &delivered {
            if !accept_delivery::<W>(port, sim, d, op_index)? {
                continue;
            }
            let j = d.tag as usize;
            if config.noc.is_mc(d.dst) {
                // Response arrived back at its MC: decode off the coded
                // wire through the same session.
                let bits = port
                    .session()
                    .decode_response::<W>(&d.payload_flits)
                    .map_err(|e| AccelError::Decode(e.to_string()))?;
                debug_assert!(responses[j].is_none(), "duplicate response for task {j}");
                responses[j] = Some(bits);
                remaining -= 1;
            } else {
                // Request arrived at a PE: decode off the wires, recover
                // pairing, schedule the MAC result.
                let wire = wires[j].as_ref().expect("request was sent before delivery");
                if feed.is_reference() {
                    recovered = port
                        .session()
                        .decode_task_reference::<W>(wire, &d.payload_flits)
                        .map_err(|e| AccelError::Decode(e.to_string()))?;
                } else {
                    port.session()
                        .decode_task_into::<W>(
                            wire,
                            &d.payload_flits,
                            &mut decode_scratch,
                            &mut recovered,
                        )
                        .map_err(|e| AccelError::Decode(e.to_string()))?;
                }
                let bits = W::response_bits(&recovered);
                let ready = sim.cycle() + config.pe_latency(wire.num_pairs);
                compute_queue.push(Reverse((ready, j, bits)));
            }
        }

        // PE-side: inject finished responses.
        while let Some(&Reverse((ready, j, bits))) = compute_queue.peek() {
            if ready > sim.cycle() {
                break;
            }
            compute_queue.pop();
            let image = port.session().encode_response::<W>(bits);
            run.codec_bits += u64::from(config.codec.extra_wires());
            run.edc_bits += u64::from(config.edc.extra_wires());
            let (pe, mc_node) = dests[j];
            port.send_flits(sim, pe, mc_node, vec![image], j as u64)?;
        }

        if sim.cycle() - start_cycle > config.max_cycles_per_layer {
            return Err(AccelError::Stall {
                layer: op_index,
                cycles: sim.cycle() - start_cycle,
            });
        }
    }

    run.responses = responses
        .into_iter()
        .map(|bits| bits.expect("all responses collected"))
        .collect();
    Ok(run)
}

/// One computed response staged for injection: `(task index, response
/// bits, compute-ready cycle)`.
type StagedResponse = (usize, u64, u64);

/// The request half of [`analytic_loop`] and [`hybrid_loop`]: every
/// request is encoded and queued (same per-MC feed order as the cycle
/// loop's prefetch top-up), replayed via
/// [`Simulator::replay_queued_analytic`] — straight XOR+popcount passes
/// over the ordered coded stream, per link, through the bulk codec-lane
/// kernels on per-link-coded wires — then decoded and computed at the
/// PEs. Returns the staged responses as `(task, response bits,
/// compute-ready cycle)` sorted by `(ready, task)` — the exact order the
/// cycle engine's compute heap would pop them, which is each PE's FIFO
/// response-injection order.
#[allow(clippy::too_many_arguments)]
fn replay_request_phase<W: AccelWord>(
    op_index: usize,
    config: &AccelConfig,
    sim: &mut Simulator,
    port: &TaskPort<CodedTransport>,
    dests: &[(usize, usize)],
    per_mc_tasks: &[Vec<usize>],
    feed: &mut TaskFeed<'_, W>,
    verified: bool,
) -> Result<(Vec<StagedResponse>, LayerRun), AccelError> {
    let total = dests.len();
    let mut wires: Vec<Option<TaskWireMeta>> = vec![None; total];
    let mut run = LayerRun {
        responses: Vec::new(),
        request_flits: 0,
        index_bits: 0,
        codec_bits: 0,
        edc_bits: 0,
    };

    // Request phase: queue every task packet at its MC, then replay.
    for (mi, tasks) in per_mc_tasks.iter().enumerate() {
        for &j in tasks {
            let encoded = feed.next(mi, j)?;
            let (pe, mc_node) = dests[j];
            let sent = port.send_encoded(sim, mc_node, pe, encoded, j as u64)?;
            run.index_bits += sent.index_overhead_bits;
            run.codec_bits += sent.codec_overhead_bits;
            run.edc_bits += sent.edc_overhead_bits;
            run.request_flits += sent.flit_count as u64;
            wires[j] = Some(sent.meta);
        }
    }
    sim.replay_queued_analytic(verified);

    // PE side: decode each delivered request off the wires, recover the
    // pairing, compute the MAC (the same reused-scratch receiver path as
    // the cycle loop).
    let mut delivered: Vec<DeliveredPacket> = Vec::new();
    sim.drain_all_delivered_into(&mut delivered);
    debug_assert_eq!(delivered.len(), total, "every request delivered");
    let mut decode_scratch = TransportScratch::default();
    let mut recovered = RecoveredTask::<W> {
        pairs: Vec::new(),
        bias: W::from_bits_u64(0),
    };
    let mut staged: Vec<(usize, u64, u64)> = Vec::with_capacity(total);
    for d in &delivered {
        // The wires are perfect here (error injection forces the cycle
        // engine), so acceptance always passes — but it must run, so the
        // EDC verify and replay-buffer release stay on this path too.
        let accepted = accept_delivery::<W>(port, sim, d, op_index)?;
        debug_assert!(accepted, "analytic wires are perfect");
        let j = d.tag as usize;
        let wire = wires[j].as_ref().expect("request was sent before delivery");
        if feed.is_reference() {
            recovered = port
                .session()
                .decode_task_reference::<W>(wire, &d.payload_flits)
                .map_err(|e| AccelError::Decode(e.to_string()))?;
        } else {
            port.session()
                .decode_task_into::<W>(wire, &d.payload_flits, &mut decode_scratch, &mut recovered)
                .map_err(|e| AccelError::Decode(e.to_string()))?;
        }
        let bits = W::response_bits(&recovered);
        staged.push((j, bits, d.arrival_cycle + config.pe_latency(wire.num_pairs)));
    }
    // Completion order — ready cycle, then task id: exactly the order
    // the cycle engine's compute min-heap pops, so each PE's responses
    // inject in its true FIFO order even when a PE holds several tasks
    // (closed-form arrivals are exact on stall-free request phases, and
    // relative order is all the response phase needs).
    staged.sort_unstable_by_key(|&(j, _, ready)| (ready, j));
    Ok((staged, run))
}

/// The split engine behind [`LayerEngine::Hybrid`]: the request phase —
/// the weight/activation fan-out carrying the bulk of a layer's flits —
/// replays analytically, then the response phase steps the mesh through
/// the **real cycle engine**, injecting each PE's response at its
/// closed-form compute-ready cycle (shifted by a constant, which cannot
/// change any link's flit order: the cycle engine's dynamics depend only
/// on relative inject times).
///
/// Bit-exactness with the fully overlapped [`cycle_loop`] rests on the
/// split condition [`LayerEngine::resolve`] proved: request routes are
/// contention-free (so the replay *is* the request phase's true per-link
/// order and the closed-form ready cycles are exact) and request and
/// response routes are link-disjoint (so neither phase can stall, delay
/// or reorder the other anywhere in the mesh, and the phase split is
/// invisible on every link). Converging response traffic — many PEs
/// funnelling into each MC's ejection link, which no per-link order rule
/// can serialize — is handled by the one engine that resolves it
/// faithfully: the cycle engine itself. Timing fields are the one
/// deviation: the layer's cycle count composes the request makespan and
/// the response phase instead of their overlap.
#[allow(clippy::too_many_arguments)]
fn hybrid_loop<W: AccelWord>(
    op_index: usize,
    config: &AccelConfig,
    sim: &mut Simulator,
    port: &TaskPort<CodedTransport>,
    dests: &[(usize, usize)],
    per_mc_tasks: &[Vec<usize>],
    feed: &mut TaskFeed<'_, W>,
) -> Result<LayerRun, AccelError> {
    let total = dests.len();
    let (staged, mut run) =
        replay_request_phase(op_index, config, sim, port, dests, per_mc_tasks, feed, true)?;

    // Response phase: drive the cycle engine on the closed-form schedule.
    // `base` anchors the first response at the current clock; offsets
    // between responses are preserved exactly.
    let base = sim.cycle();
    let ready0 = staged.first().map_or(0, |&(.., ready)| ready);
    let mut responses: Vec<Option<u64>> = vec![None; total];
    let mut remaining = total;
    let mut delivered: Vec<DeliveredPacket> = Vec::new();
    let mut idx = 0;
    let start_cycle = sim.cycle();
    while remaining > 0 {
        while let Some(&(j, bits, ready)) = staged.get(idx) {
            if base + (ready - ready0) > sim.cycle() {
                break;
            }
            let image = port.session().encode_response::<W>(bits);
            run.codec_bits += u64::from(config.codec.extra_wires());
            run.edc_bits += u64::from(config.edc.extra_wires());
            let (pe, mc_node) = dests[j];
            port.send_flits(sim, pe, mc_node, vec![image], j as u64)?;
            idx += 1;
        }
        sim.step();
        sim.drain_all_delivered_into(&mut delivered);
        for d in &delivered {
            let accepted = accept_delivery::<W>(port, sim, d, op_index)?;
            debug_assert!(accepted, "hybrid wires are perfect");
            let j = d.tag as usize;
            debug_assert!(config.noc.is_mc(d.dst), "responses terminate at MCs");
            let bits = port
                .session()
                .decode_response::<W>(&d.payload_flits)
                .map_err(|e| AccelError::Decode(e.to_string()))?;
            debug_assert!(responses[j].is_none(), "duplicate response for task {j}");
            responses[j] = Some(bits);
            remaining -= 1;
        }
        if sim.cycle() - start_cycle > config.max_cycles_per_layer {
            return Err(AccelError::Stall {
                layer: op_index,
                cycles: sim.cycle() - start_cycle,
            });
        }
    }
    run.responses = responses
        .into_iter()
        .map(|bits| bits.expect("all responses collected"))
        .collect();
    Ok(run)
}

/// The analytic counterpart of [`cycle_loop`]: one layer as two stream
/// replays instead of per-cycle mesh stepping. Every request is encoded
/// and queued (same per-MC feed order as the cycle loop's prefetch
/// top-up), replayed via [`Simulator::replay_queued_analytic`] — straight
/// XOR+popcount passes over the ordered coded stream, per link — then
/// decoded and computed at the PEs; the clock jumps over the closed-form
/// PE compute interval; finally every response is queued in completion
/// order and replayed the same way.
///
/// With `verified` (the layer's combined route set was proven
/// contention-free) the result is bit-exact with [`cycle_loop`] on
/// per-link BTs, codec-lane states, payloads and recovered MACs, and
/// debug builds run the cycle engine as an oracle inside each replay.
/// Without it (forced [`EngineMode::Analytic`]) shared links record the
/// serialized per-packet stream — the paper's pure stream metric — and
/// cycle counts are closed-form estimates.
#[allow(clippy::too_many_arguments)]
fn analytic_loop<W: AccelWord>(
    op_index: usize,
    config: &AccelConfig,
    sim: &mut Simulator,
    port: &TaskPort<CodedTransport>,
    dests: &[(usize, usize)],
    per_mc_tasks: &[Vec<usize>],
    feed: &mut TaskFeed<'_, W>,
    verified: bool,
) -> Result<LayerRun, AccelError> {
    let total = dests.len();
    let (staged, mut run) = replay_request_phase(
        op_index,
        config,
        sim,
        port,
        dests,
        per_mc_tasks,
        feed,
        verified,
    )?;

    // Response phase: jump the clock over the PE compute interval the
    // cycle engine would idle through, queue every response, replay.
    sim.advance_cycle_to(staged.iter().map(|&(.., ready)| ready).max().unwrap_or(0));
    for &(j, bits, _) in &staged {
        let image = port.session().encode_response::<W>(bits);
        run.codec_bits += u64::from(config.codec.extra_wires());
        run.edc_bits += u64::from(config.edc.extra_wires());
        let (pe, mc_node) = dests[j];
        port.send_flits(sim, pe, mc_node, vec![image], j as u64)?;
    }
    sim.replay_queued_analytic(verified);

    // MC side: decode every response off the coded wire.
    let mut delivered: Vec<DeliveredPacket> = Vec::new();
    sim.drain_all_delivered_into(&mut delivered);
    debug_assert_eq!(delivered.len(), total, "every response delivered");
    let mut responses: Vec<Option<u64>> = vec![None; total];
    for d in &delivered {
        let accepted = accept_delivery::<W>(port, sim, d, op_index)?;
        debug_assert!(accepted, "analytic wires are perfect");
        let j = d.tag as usize;
        debug_assert!(config.noc.is_mc(d.dst), "responses terminate at MCs");
        let bits = port
            .session()
            .decode_response::<W>(&d.payload_flits)
            .map_err(|e| AccelError::Decode(e.to_string()))?;
        debug_assert!(responses[j].is_none(), "duplicate response for task {j}");
        responses[j] = Some(bits);
    }
    run.responses = responses
        .into_iter()
        .map(|bits| bits.expect("all responses collected"))
        .collect();
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_core::OrderingMethod;
    use btr_dnn::layer::{ActKind, Activation, Conv2d, Flatten, Linear, MaxPool2d};
    use btr_dnn::model::{Layer, Sequential};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A small conv net that still exercises conv, pool, activation,
    /// flatten and linear over the NoC.
    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 3, 3, 1, 1, &mut rng)),
            Layer::Activation(Activation::new(ActKind::ReLU)),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(3 * 4 * 4, 5, &mut rng)),
        ])
    }

    fn tiny_input(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(
            &[1, 8, 8],
            (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap()
    }

    fn config(format: DataFormat, ordering: OrderingMethod) -> AccelConfig {
        AccelConfig::paper(4, 4, 2, format, ordering)
    }

    #[test]
    fn f32_inference_matches_reference() {
        let model = tiny_model(1);
        let ops = model.inference_ops();
        let input = tiny_input(2);
        let reference = model.infer(&input);
        for ordering in OrderingMethod::ALL {
            let result =
                run_inference(&ops, &input, &config(DataFormat::Float32, ordering)).unwrap();
            assert_eq!(result.output.shape(), reference.shape());
            for (got, want) in result.output.data().iter().zip(reference.data().iter()) {
                assert!(
                    (got - want).abs() < 1e-3 * (1.0 + want.abs()),
                    "{ordering}: {got} vs {want}"
                );
            }
            assert!(result.stats.packets_delivered > 0);
            assert!(result.total_cycles > 0);
        }
    }

    #[test]
    fn fx8_outputs_are_identical_across_orderings() {
        // Integer MACs make fixed-8 results bit-exact regardless of
        // transmission order — the paper's "values' integrity" claim.
        let model = tiny_model(3);
        let ops = model.inference_ops();
        let input = tiny_input(4);
        let baseline = run_inference(
            &ops,
            &input,
            &config(DataFormat::Fixed8, OrderingMethod::Baseline),
        )
        .unwrap();
        for ordering in [OrderingMethod::Affiliated, OrderingMethod::Separated] {
            let result =
                run_inference(&ops, &input, &config(DataFormat::Fixed8, ordering)).unwrap();
            assert_eq!(
                result.output.data(),
                baseline.output.data(),
                "{ordering} changed fixed-8 outputs"
            );
        }
    }

    #[test]
    fn ordering_reduces_transitions_on_tiny_model() {
        let model = tiny_model(5);
        let ops = model.inference_ops();
        let input = tiny_input(6);
        let mut totals = Vec::new();
        for ordering in OrderingMethod::ALL {
            let result =
                run_inference(&ops, &input, &config(DataFormat::Fixed8, ordering)).unwrap();
            totals.push(result.stats.total_transitions);
        }
        let (o0, o1, o2) = (totals[0], totals[1], totals[2]);
        assert!(o1 < o0, "affiliated {o1} must beat baseline {o0}");
        assert!(o2 < o0, "separated {o2} must beat baseline {o0}");
        assert!(
            o2 <= o1,
            "separated {o2} should be at least as good as affiliated {o1}"
        );
    }

    #[test]
    fn coded_links_are_lossless_for_fx8_inference() {
        // Fixed-8 outputs are bit-exact across codecs: the PEs and MCs
        // recover every operand and response off the coded wires.
        use btr_core::codec::CodecKind;
        let model = tiny_model(31);
        let ops = model.inference_ops();
        let input = tiny_input(32);
        let plain = run_inference(
            &ops,
            &input,
            &config(DataFormat::Fixed8, OrderingMethod::Separated),
        )
        .unwrap();
        for codec in [CodecKind::BusInvert, CodecKind::DeltaXor] {
            let c = config(DataFormat::Fixed8, OrderingMethod::Separated).with_codec(codec);
            let r = run_inference(&ops, &input, &c).unwrap();
            assert_eq!(
                r.output.data(),
                plain.output.data(),
                "{codec} changed fixed-8 outputs"
            );
            // Same packets and flit counts; only the wire images (and for
            // bus-invert the link width) differ.
            assert_eq!(r.total_request_packets(), plain.total_request_packets());
            assert_eq!(r.total_request_flits(), plain.total_request_flits());
            assert_ne!(
                r.stats.total_transitions, plain.stats.total_transitions,
                "{codec} should change the wire BTs"
            );
        }
    }

    #[test]
    fn coded_links_preserve_f32_inference() {
        use btr_core::codec::CodecKind;
        let model = tiny_model(33);
        let ops = model.inference_ops();
        let input = tiny_input(34);
        let reference = model.infer(&input);
        for codec in CodecKind::ALL {
            let c = config(DataFormat::Float32, OrderingMethod::Affiliated).with_codec(codec);
            let result = run_inference(&ops, &input, &c).unwrap();
            for (got, want) in result.output.data().iter().zip(reference.data().iter()) {
                assert!(
                    (got - want).abs() < 1e-3 * (1.0 + want.abs()),
                    "{codec}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn codec_overhead_is_accounted() {
        use btr_core::codec::CodecKind;
        let model = tiny_model(35);
        let ops = model.inference_ops();
        let input = tiny_input(36);
        let run = |codec| {
            run_inference(
                &ops,
                &input,
                &config(DataFormat::Fixed8, OrderingMethod::Separated).with_codec(codec),
            )
            .unwrap()
        };
        let plain = run(CodecKind::Unencoded);
        let xor = run(CodecKind::DeltaXor);
        let bi = run(CodecKind::BusInvert);
        assert_eq!(plain.codec_overhead_bits, 0);
        assert_eq!(xor.codec_overhead_bits, 0);
        // One invert-line bit per payload flit (requests) + one per
        // response packet.
        let payload_flits = bi.total_request_flits() - bi.total_request_packets();
        assert_eq!(
            bi.codec_overhead_bits,
            payload_flits + bi.total_request_packets()
        );
        // The index side channel is codec-independent.
        assert_eq!(bi.index_overhead_bits, plain.index_overhead_bits);
    }

    #[test]
    fn traffic_identical_across_orderings() {
        // Same packets, flits and assignments; only intra-packet order
        // differs.
        let model = tiny_model(7);
        let ops = model.inference_ops();
        let input = tiny_input(8);
        let mut packet_counts = Vec::new();
        let mut flit_counts = Vec::new();
        for ordering in OrderingMethod::ALL {
            let r = run_inference(&ops, &input, &config(DataFormat::Fixed8, ordering)).unwrap();
            packet_counts.push(r.total_request_packets());
            flit_counts.push(r.total_request_flits());
        }
        assert!(packet_counts.windows(2).all(|w| w[0] == w[1]));
        assert!(flit_counts.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn separated_reports_index_overhead() {
        let model = tiny_model(9);
        let ops = model.inference_ops();
        let input = tiny_input(10);
        let o1 = run_inference(
            &ops,
            &input,
            &config(DataFormat::Fixed8, OrderingMethod::Affiliated),
        )
        .unwrap();
        let o2 = run_inference(
            &ops,
            &input,
            &config(DataFormat::Fixed8, OrderingMethod::Separated),
        )
        .unwrap();
        assert_eq!(o1.index_overhead_bits, 0);
        assert!(o2.index_overhead_bits > 0);
    }

    #[test]
    fn per_layer_reports_cover_noc_ops() {
        let model = tiny_model(11);
        let ops = model.inference_ops();
        let input = tiny_input(12);
        let r = run_inference(
            &ops,
            &input,
            &config(DataFormat::Float32, OrderingMethod::Baseline),
        )
        .unwrap();
        assert_eq!(r.per_layer.len(), 2); // conv + linear
        assert_eq!(r.per_layer[0].op_name, "conv");
        assert_eq!(r.per_layer[1].op_name, "linear");
        // conv on 8x8 with pad 1: 3 channels * 64 pixels = 192 tasks.
        assert_eq!(r.per_layer[0].request_packets, 192);
        assert_eq!(r.per_layer[1].request_packets, 5);
        assert!(r.per_layer.iter().all(|l| l.transitions > 0));
    }

    #[test]
    fn rejects_fixed16() {
        let model = tiny_model(13);
        let ops = model.inference_ops();
        let input = tiny_input(14);
        let mut c = config(DataFormat::Fixed8, OrderingMethod::Baseline);
        c.format = DataFormat::Fixed16;
        c.noc.link_width_bits = 256;
        let err = run_inference(&ops, &input, &c).unwrap_err();
        assert!(matches!(
            err,
            AccelError::UnsupportedFormat(DataFormat::Fixed16)
        ));
    }

    #[test]
    fn sensitivity_options_increase_fx8_reduction() {
        // Value tiebreak + global fixed-8 weights should push the fixed-8
        // separated-ordering reduction beyond the strictly-as-described
        // configuration (see EXPERIMENTS.md).
        let model = tiny_model(21);
        let ops = model.inference_ops();
        let input = tiny_input(22);
        let reduction = |tiebreak, global| -> f64 {
            let mut totals = Vec::new();
            for ordering in [OrderingMethod::Baseline, OrderingMethod::Separated] {
                let mut c = config(DataFormat::Fixed8, ordering);
                c.tiebreak = tiebreak;
                c.global_fx8_weights = global;
                totals.push(
                    run_inference(&ops, &input, &c)
                        .unwrap()
                        .stats
                        .total_transitions,
                );
            }
            1.0 - totals[1] as f64 / totals[0] as f64
        };
        let plain = reduction(btr_core::ordering::TieBreak::Stable, false);
        let boosted = reduction(btr_core::ordering::TieBreak::Value, true);
        assert!(
            boosted > plain,
            "sensitivity options should help: {boosted} vs {plain}"
        );
    }

    #[test]
    fn pe_partition_is_balanced_and_local() {
        use btr_noc::config::NocConfig;
        use btr_noc::routing::hop_count;
        for (w, h, mc) in [(4usize, 4usize, 2usize), (8, 8, 4), (8, 8, 8)] {
            let config = NocConfig::paper_mesh(w, h, mc, 128);
            let regions = partition_pes_by_mc(&config);
            assert_eq!(regions.len(), mc);
            let total: usize = regions.iter().map(Vec::len).sum();
            assert_eq!(total, config.pe_nodes().len());
            let cap = total.div_ceil(mc);
            for region in &regions {
                assert!(region.len() <= cap);
                assert!(!region.is_empty());
            }
            // No PE appears twice.
            let mut all: Vec<usize> = regions.iter().flatten().copied().collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), total);
            // Fewer MCs (bigger regions) means longer average distance.
            if mc == 4 {
                let c8 = NocConfig::paper_mesh(8, 8, 8, 128);
                let r8 = partition_pes_by_mc(&c8);
                let avg = |cfg: &NocConfig, regs: &[Vec<usize>]| -> f64 {
                    let mut sum = 0usize;
                    let mut n = 0usize;
                    for (mi, region) in regs.iter().enumerate() {
                        for &pe in region {
                            sum += hop_count(cfg, cfg.mc_nodes[mi], pe);
                            n += 1;
                        }
                    }
                    sum as f64 / n as f64
                };
                assert!(avg(&config, &regions) > avg(&c8, &r8));
            }
        }
    }

    #[test]
    fn encode_plan_resolves_once_from_config() {
        let base = config(DataFormat::Fixed8, OrderingMethod::Separated);
        // Synchronous is always the reference schedule.
        let mut c = base.clone();
        c.driver = DriverMode::Synchronous;
        assert_eq!(EncodePlan::resolve(&c), EncodePlan::Reference);
        // Forced inline beats every other knob.
        let mut c = base.clone();
        c.encode_inline = true;
        c.encode_threads = 2;
        assert_eq!(EncodePlan::resolve(&c), EncodePlan::Inline);
        // An explicit thread count always spawns threads (clamped to the
        // MC count), regardless of host parallelism.
        let mut c = base.clone();
        c.encode_threads = 1;
        assert_eq!(EncodePlan::resolve(&c), EncodePlan::Threads(1));
        c.encode_threads = 64;
        assert_eq!(EncodePlan::resolve(&c), EncodePlan::Threads(2));
        // Auto resolves from the process-wide host probe: inline on a
        // single-hart host, one thread per MC otherwise — and the session
        // pins whichever it was.
        let auto = EncodePlan::resolve(&base);
        assert!(matches!(auto, EncodePlan::Inline | EncodePlan::Threads(2)));
        let session = InferenceSession::new(&[], base).unwrap();
        assert_eq!(session.plan(), auto);
    }

    #[test]
    fn session_serves_repeated_and_partial_batches() {
        let model = tiny_model(61);
        let ops = model.inference_ops();
        let inputs: Vec<Tensor> = (0..3).map(|i| tiny_input(70 + i)).collect();
        let mut c = config(DataFormat::Fixed8, OrderingMethod::Separated);
        c.batch_size = 4; // the coalescing window, not an exact size
        let session = InferenceSession::new(&ops, c.clone()).unwrap();
        // A partial window dispatch works; each call simulates on a
        // fresh mesh, so repeated calls are bit-identical.
        let a = session.run(&inputs).unwrap();
        let b = session.run(&inputs).unwrap();
        assert_eq!(a.outputs.len(), 3);
        for (x, y) in a.outputs.iter().zip(b.outputs.iter()) {
            assert_eq!(x.data(), y.data());
        }
        assert_eq!(a.stats.total_transitions, b.stats.total_transitions);
        assert_eq!(a.total_cycles, b.total_cycles);
        // ... and matches the one-shot entry point at the exact size.
        let mut exact = c.clone();
        exact.batch_size = 3;
        let oneshot = run_inference_batch(&ops, &inputs, &exact).unwrap();
        for (x, y) in a.outputs.iter().zip(oneshot.outputs.iter()) {
            assert_eq!(x.data(), y.data());
        }
        // Empty and oversized dispatches are rejected.
        assert!(session.run(&[]).is_err());
        let five: Vec<Tensor> = (0..5).map(|i| tiny_input(80 + i)).collect();
        let err = session.run(&five).unwrap_err();
        assert!(err.to_string().contains("1..=4"), "{err}");
    }

    #[test]
    fn engine_modes_agree_on_outputs_and_auto_matches_cycle_bts() {
        use btr_core::codec::CodecKind;
        let model = tiny_model(41);
        let ops = model.inference_ops();
        let input = tiny_input(42);
        let mut base =
            config(DataFormat::Fixed8, OrderingMethod::Separated).with_codec(CodecKind::BusInvert);
        base.engine = EngineMode::Cycle;
        let cycle = run_inference(&ops, &input, &base).unwrap();
        assert_eq!(cycle.analytic_phase_fraction(), 0.0);
        for engine in [EngineMode::Analytic, EngineMode::Auto] {
            let mut c = base.clone();
            c.engine = engine;
            let r = run_inference(&ops, &input, &c).unwrap();
            // Fixed-8 MACs are bit-exact regardless of engine: payload
            // delivery is lossless on both paths.
            assert_eq!(r.output.data(), cycle.output.data(), "{engine}");
            assert_eq!(r.total_request_packets(), cycle.total_request_packets());
            assert_eq!(r.total_request_flits(), cycle.total_request_flits());
            assert_eq!(r.index_overhead_bits, cycle.index_overhead_bits);
            assert_eq!(r.codec_overhead_bits, cycle.codec_overhead_bits);
            match engine {
                // Forced replay evaluates every layer analytically.
                EngineMode::Analytic => assert_eq!(r.analytic_phase_fraction(), 1.0),
                // Auto falls back wherever eligibility can't be proven
                // and must stay BT-identical to the cycle engine.
                EngineMode::Auto => {
                    assert_eq!(
                        r.stats.total_transitions, cycle.stats.total_transitions,
                        "auto must be bit-identical to cycle"
                    );
                    assert_eq!(r.stats.per_link, cycle.stats.per_link);
                    assert_eq!(r.stats.flit_hops, cycle.stats.flit_hops);
                }
                EngineMode::Cycle => unreachable!(),
            }
        }
    }

    #[test]
    fn fault_armed_zero_ber_is_bit_identical() {
        use btr_core::codec::ResyncPolicy;
        use btr_noc::fault::ErrorModel;
        let model = tiny_model(51);
        let ops = model.inference_ops();
        let input = tiny_input(52);
        let base = config(DataFormat::Fixed8, OrderingMethod::Separated);
        let plain = run_inference(&ops, &input, &base).unwrap();
        // Arming the full recovery machinery (packet retention, NI
        // acceptance, recovery counters) over perfect wires with no EDC
        // leaves the run bit-identical: same geometry, wires and clock.
        let armed = base
            .clone()
            .with_fault(ErrorModel::perfect(9), ResyncPolicy::ReseedOnRetry, 8);
        armed.validate().unwrap();
        let r = run_inference(&ops, &input, &armed).unwrap();
        assert_eq!(r.output.data(), plain.output.data());
        assert_eq!(r.stats.total_transitions, plain.stats.total_transitions);
        assert_eq!(r.stats.per_link, plain.stats.per_link);
        assert_eq!(r.total_cycles, plain.total_cycles);
        assert_eq!(r.retransmitted_flits, 0);
        assert_eq!(r.retried_packets, 0);
        assert_eq!(r.edc_overhead_bits, 0);
        // CRC-8 at ber 0: outputs unchanged, the check field's wires are
        // accounted, and nothing retries.
        let checked = base
            .clone()
            .with_edc(btr_core::edc::EdcKind::Crc8)
            .with_fault(ErrorModel::perfect(9), ResyncPolicy::ReseedOnRetry, 8);
        checked.validate().unwrap();
        let r = run_inference(&ops, &input, &checked).unwrap();
        assert_eq!(r.output.data(), plain.output.data());
        assert!(r.edc_overhead_bits > 0);
        // Eight check bits per payload flit: request payload flits
        // (flits minus one head per packet) plus one single-flit
        // response per packet.
        let payload_flits =
            (r.total_request_flits() - r.total_request_packets()) + r.total_request_packets();
        assert_eq!(r.edc_overhead_bits, payload_flits * 8);
        assert_eq!(r.retransmitted_flits, 0);
    }

    #[test]
    fn unreliable_links_recover_bit_exact_outputs() {
        use btr_core::codec::ResyncPolicy;
        use btr_noc::fault::{BitErrorRate, ErrorModel, FaultMode};
        let model = tiny_model(53);
        let ops = model.inference_ops();
        let input = tiny_input(54);
        let base = config(DataFormat::Fixed8, OrderingMethod::Separated);
        let plain = run_inference(&ops, &input, &base).unwrap();
        let mut faulty = base.clone().with_fault(
            ErrorModel {
                ber: BitErrorRate::from_f64(1e-5),
                seed: 7,
                mode: FaultMode::PerFlit,
            },
            ResyncPolicy::ReseedOnRetry,
            32,
        );
        // Auto must classify every error-injected phase ineligible for
        // the analytic fast path.
        faulty.engine = EngineMode::Auto;
        faulty.validate().unwrap();
        let r = run_inference(&ops, &input, &faulty).unwrap();
        assert_eq!(
            r.output.data(),
            plain.output.data(),
            "retransmission recovers every corrupted packet bit-exactly"
        );
        assert!(r.retransmitted_flits > 0, "this seed corrupts packets");
        assert!(r.retried_packets > 0);
        assert_eq!(
            r.analytic_phase_fraction(),
            0.0,
            "faults force the cycle engine"
        );
        // Forcing the analytic engine beside error injection is rejected
        // at validation time.
        let mut forced = faulty.clone();
        forced.engine = EngineMode::Analytic;
        assert!(forced.validate().unwrap_err().contains("analytic"));
    }

    #[test]
    fn stall_guard_fires() {
        let model = tiny_model(15);
        let ops = model.inference_ops();
        let input = tiny_input(16);
        let mut c = config(DataFormat::Fixed8, OrderingMethod::Baseline);
        c.max_cycles_per_layer = 2;
        let err = run_inference(&ops, &input, &c).unwrap_err();
        assert!(matches!(err, AccelError::Stall { layer: 0, .. }));
    }
}
