//! The inference driver: runs a lowered DNN over the NoC, layer by layer.
//!
//! Conv / linear layers generate task packets (MC → PE) and response
//! packets (PE → MC); everything else executes memory-side on the
//! assembled activations. One simulator instance persists across layers so
//! link recorders accumulate the complete inference's bit transitions —
//! the quantity Figs. 12–13 report.

use crate::config::AccelConfig;
use crate::report::{InferenceResult, LayerTrafficReport};
use crate::tasks::{
    conv_tasks, f32_mappers, fx8_mappers, linear_tasks, ConvGeometry, IndexedTask, LayerQuantizers,
};
use btr_bits::word::{DataFormat, DataWord, F32Word, Fx8Word};
use btr_core::flitize::FlitizeError;
use btr_core::task::RecoveredTask;
use btr_core::transport::{CodedTransport, TaskWireMeta, TransportConfig};
use btr_dnn::model::InferenceOp;
use btr_dnn::tensor::Tensor;
use btr_noc::packet::Packet;
use btr_noc::session::{SendError, TaskPort};
use btr_noc::sim::{InjectError, Simulator};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Errors from [`run_inference`].
#[derive(Debug)]
pub enum AccelError {
    /// Invalid configuration.
    Config(String),
    /// Flitization failed (geometry).
    Flitize(FlitizeError),
    /// Packet injection failed.
    Inject(InjectError),
    /// Wire-level decode or recovery failed at a PE.
    Decode(String),
    /// A layer did not drain within the configured cycle budget.
    Stall {
        /// Op index of the stalled layer.
        layer: usize,
        /// Cycles spent in the layer before giving up.
        cycles: u64,
    },
    /// The fixed-16 extension format is not wired into the accelerator.
    UnsupportedFormat(DataFormat),
}

impl std::fmt::Display for AccelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccelError::Config(msg) => write!(f, "invalid accelerator config: {msg}"),
            AccelError::Flitize(e) => write!(f, "flitization failed: {e}"),
            AccelError::Inject(e) => write!(f, "injection failed: {e}"),
            AccelError::Decode(msg) => write!(f, "receiver decode failed: {msg}"),
            AccelError::Stall { layer, cycles } => {
                write!(f, "layer {layer} stalled after {cycles} cycles")
            }
            AccelError::UnsupportedFormat(fmt) => {
                write!(f, "format {fmt} is not supported by the accelerator")
            }
        }
    }
}

impl std::error::Error for AccelError {}

impl From<FlitizeError> for AccelError {
    fn from(e: FlitizeError) -> Self {
        AccelError::Flitize(e)
    }
}

impl From<InjectError> for AccelError {
    fn from(e: InjectError) -> Self {
        AccelError::Inject(e)
    }
}

impl From<SendError> for AccelError {
    fn from(e: SendError) -> Self {
        match e {
            SendError::Encode(e) => AccelError::Flitize(e),
            SendError::Inject(e) => AccelError::Inject(e),
        }
    }
}

/// Words the accelerator can compute on: defines how a PE encodes its MAC
/// result into the 32-bit response image.
pub trait AccelWord: DataWord {
    /// Encodes the recovered task's MAC result (32-bit field, LSB-first).
    fn response_bits(rec: &RecoveredTask<Self>) -> u64;
}

impl AccelWord for F32Word {
    fn response_bits(rec: &RecoveredTask<Self>) -> u64 {
        u64::from((rec.mac_f64() as f32).to_bits())
    }
}

impl AccelWord for Fx8Word {
    fn response_bits(rec: &RecoveredTask<Self>) -> u64 {
        let mac = rec.mac_i64();
        debug_assert!(
            i64::from(mac as i32) == mac,
            "integer MAC overflowed the 32-bit response field"
        );
        u64::from(mac as i32 as u32)
    }
}

/// Runs a complete inference over the NoC.
///
/// # Errors
///
/// Returns [`AccelError`] on invalid configuration, flitization failure,
/// a stalled layer, or a receiver-side decode failure.
pub fn run_inference(
    ops: &[InferenceOp],
    input: &Tensor,
    config: &AccelConfig,
) -> Result<InferenceResult, AccelError> {
    config.validate().map_err(AccelError::Config)?;
    let mut sim = Simulator::new(config.noc.clone());
    let mut x = input.clone();
    let mut per_layer = Vec::new();
    let mut overhead = WireOverhead::default();

    for (op_index, op) in ops.iter().enumerate() {
        match op {
            InferenceOp::Conv {
                weight,
                bias,
                stride,
                padding,
            } => {
                let geo = ConvGeometry::from_shapes(&x, weight, *stride, *padding);
                let out_shape = [geo.out_channels, geo.out_h, geo.out_w];
                let values = match config.format {
                    DataFormat::Float32 => {
                        let (ti, tw, tb) = f32_mappers();
                        let tasks = conv_tasks(&x, weight, bias, &geo, ti, tw, tb);
                        run_noc_layer_f32(
                            op_index,
                            "conv",
                            &tasks,
                            config,
                            &mut sim,
                            &mut per_layer,
                            &mut overhead,
                        )?
                    }
                    DataFormat::Fixed8 => {
                        let q = LayerQuantizers::derive_with(
                            &x,
                            weight,
                            bias,
                            config.global_fx8_weights,
                        );
                        let (ti, tw, tb) = fx8_mappers(q);
                        let tasks = conv_tasks(&x, weight, bias, &geo, ti, tw, tb);
                        run_noc_layer_fx8(
                            op_index,
                            "conv",
                            &tasks,
                            q,
                            config,
                            &mut sim,
                            &mut per_layer,
                            &mut overhead,
                        )?
                    }
                    other => return Err(AccelError::UnsupportedFormat(other)),
                };
                x = Tensor::from_vec(&out_shape, values).expect("task count matches shape");
            }
            InferenceOp::Linear { weight, bias } => {
                let out_shape = [weight.shape()[0]];
                let values = match config.format {
                    DataFormat::Float32 => {
                        let (ti, tw, tb) = f32_mappers();
                        let tasks = linear_tasks(&x, weight, bias, ti, tw, tb);
                        run_noc_layer_f32(
                            op_index,
                            "linear",
                            &tasks,
                            config,
                            &mut sim,
                            &mut per_layer,
                            &mut overhead,
                        )?
                    }
                    DataFormat::Fixed8 => {
                        let q = LayerQuantizers::derive_with(
                            &x,
                            weight,
                            bias,
                            config.global_fx8_weights,
                        );
                        let (ti, tw, tb) = fx8_mappers(q);
                        let tasks = linear_tasks(&x, weight, bias, ti, tw, tb);
                        run_noc_layer_fx8(
                            op_index,
                            "linear",
                            &tasks,
                            q,
                            config,
                            &mut sim,
                            &mut per_layer,
                            &mut overhead,
                        )?
                    }
                    other => return Err(AccelError::UnsupportedFormat(other)),
                };
                x = Tensor::from_vec(&out_shape, values).expect("task count matches shape");
            }
            // Memory-side ops run between layers (the layer-level interval).
            other => x = other.execute(&x),
        }
    }

    Ok(InferenceResult {
        output: x,
        stats: sim.stats(),
        total_cycles: sim.cycle(),
        per_layer,
        index_overhead_bits: overhead.index_bits,
        codec_overhead_bits: overhead.codec_bits,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_noc_layer_f32(
    op_index: usize,
    op_name: &'static str,
    tasks: &[IndexedTask<F32Word>],
    config: &AccelConfig,
    sim: &mut Simulator,
    per_layer: &mut Vec<LayerTrafficReport>,
    overhead: &mut WireOverhead,
) -> Result<Vec<f32>, AccelError> {
    let responses = simulate_layer(op_index, op_name, tasks, config, sim, per_layer, overhead)?;
    Ok(responses
        .into_iter()
        .map(|bits| f32::from_bits(bits as u32))
        .collect())
}

#[allow(clippy::too_many_arguments)]
fn run_noc_layer_fx8(
    op_index: usize,
    op_name: &'static str,
    tasks: &[IndexedTask<Fx8Word>],
    q: LayerQuantizers,
    config: &AccelConfig,
    sim: &mut Simulator,
    per_layer: &mut Vec<LayerTrafficReport>,
    overhead: &mut WireOverhead,
) -> Result<Vec<f32>, AccelError> {
    let responses = simulate_layer(op_index, op_name, tasks, config, sim, per_layer, overhead)?;
    // Bias codes by output index, to separate the integer dot product from
    // the bias during dequantization.
    let mut bias_codes = vec![0i8; tasks.len()];
    for t in tasks {
        bias_codes[t.out_index] = t.task.bias().code();
    }
    Ok(responses
        .into_iter()
        .zip(bias_codes)
        .map(|(bits, bias_code)| {
            let mac = i64::from(bits as u32 as i32);
            q.dequantize_response(mac, bias_code)
        })
        .collect())
}

/// Per-task routing metadata kept MC-side: destination PE/MC plus the
/// transport wire metadata (the extended head flit fields and, for O2,
/// the index side channel).
struct TaskMeta {
    pe: usize,
    mc: usize,
    wire: TaskWireMeta,
}

/// Partitions the PEs into one balanced region per MC, each PE joining the
/// nearest non-full MC (Manhattan distance, greedy in node order).
///
/// Each MC serves only its own region, so the average hop count per flit
/// scales with routers-per-MC — the effect behind Fig. 12's observation
/// that the 8×8 mesh with 4 MCs accumulates the most BTs.
fn partition_pes_by_mc(config: &btr_noc::config::NocConfig) -> Vec<Vec<usize>> {
    let mcs = &config.mc_nodes;
    let pes = config.pe_nodes();
    let cap = pes.len().div_ceil(mcs.len());
    let mut regions: Vec<Vec<usize>> = vec![Vec::new(); mcs.len()];
    // Assign PEs in order of how constrained they are (largest distance to
    // their nearest MC first), so central nodes don't fill a far MC early.
    let mut order: Vec<usize> = pes;
    order.sort_by_key(|&pe| {
        std::cmp::Reverse(
            mcs.iter()
                .map(|&mc| btr_noc::routing::hop_count(config, mc, pe))
                .min()
                .unwrap_or(0),
        )
    });
    for pe in order {
        let best = mcs
            .iter()
            .enumerate()
            .filter(|(mi, _)| regions[*mi].len() < cap)
            .min_by_key(|(_, &mc)| btr_noc::routing::hop_count(config, mc, pe))
            .map(|(mi, _)| mi)
            .expect("capacity covers all PEs");
        regions[best].push(pe);
    }
    // Deterministic order within each region.
    for region in &mut regions {
        region.sort_unstable();
    }
    regions
}

/// Side-channel bits accumulated across an inference, out-of-band of the
/// data wires: the O2 re-pairing index and the link codec's invert lines.
#[derive(Debug, Default, Clone, Copy)]
struct WireOverhead {
    index_bits: u64,
    codec_bits: u64,
}

/// Runs one conv/linear layer's traffic to completion. Returns the 32-bit
/// response images ordered by `out_index`.
#[allow(clippy::too_many_arguments)]
fn simulate_layer<W: AccelWord>(
    op_index: usize,
    op_name: &'static str,
    tasks: &[IndexedTask<W>],
    config: &AccelConfig,
    sim: &mut Simulator,
    per_layer: &mut Vec<LayerTrafficReport>,
    overhead: &mut WireOverhead,
) -> Result<Vec<u64>, AccelError> {
    let mcs = &config.noc.mc_nodes;
    let regions = partition_pes_by_mc(&config.noc);
    // The MC-side ordering unit, the link codec and PE-side recovery all
    // live in the shared transport session; the NoC port binds it to the
    // simulator, so both the request and response paths ride the coded
    // wire.
    let port = TaskPort::new(CodedTransport::new(TransportConfig {
        ordering: config.ordering,
        tiebreak: config.tiebreak,
        values_per_flit: config.values_per_flit,
        codec: config.codec,
    }));

    // Static assignment: task j -> MC round-robin, then round-robin over
    // that MC's own PE region. O0/O1/O2 runs use identical assignments,
    // so BT comparisons are apples-to-apples.
    let mut metas: Vec<TaskMeta> = tasks
        .iter()
        .enumerate()
        .map(|(j, t)| {
            let mi = j % mcs.len();
            let region = &regions[mi];
            TaskMeta {
                pe: region[(j / mcs.len()) % region.len()],
                mc: mcs[mi],
                wire: TaskWireMeta {
                    num_pairs: t.task.len(),
                    pair_index: None,
                },
            }
        })
        .collect();
    let mut per_mc_tasks: Vec<Vec<usize>> = vec![Vec::new(); mcs.len()];
    for j in 0..tasks.len() {
        per_mc_tasks[j % mcs.len()].push(j);
    }
    let mut cursors = vec![0usize; mcs.len()];

    let mut responses: Vec<Option<u64>> = vec![None; tasks.len()];
    let mut remaining = tasks.len();
    // (ready_cycle, tag, response_bits) min-heap for PE compute latency.
    let mut compute_queue: BinaryHeap<Reverse<(u64, usize, u64)>> = BinaryHeap::new();

    let start_cycle = sim.cycle();
    let transitions_before = sim.stats().total_transitions;
    let mut request_flits = 0u64;

    while remaining > 0 {
        // MC-side: keep each prefetch buffer topped up with ordered packets.
        for (mi, &mc) in mcs.iter().enumerate() {
            while sim.pending_at(mc) < config.mc_prefetch_packets {
                let Some(&j) = per_mc_tasks[mi].get(cursors[mi]) else {
                    break;
                };
                cursors[mi] += 1;
                let sent =
                    port.send_task_accounted(sim, mc, metas[j].pe, &tasks[j].task, j as u64)?;
                overhead.index_bits += sent.index_overhead_bits;
                overhead.codec_bits += sent.codec_overhead_bits;
                request_flits += sent.flit_count as u64;
                metas[j].wire = sent.meta;
            }
        }

        sim.step();

        // Deliveries: requests at PEs, responses at MCs.
        for delivered in sim.drain_all_delivered() {
            let j = delivered.tag as usize;
            if config.noc.is_mc(delivered.dst) {
                // Response arrived back at its MC: decode off the coded
                // wire through the same session.
                let bits = port
                    .session()
                    .decode_response::<W>(&delivered.payload_flits)
                    .map_err(|e| AccelError::Decode(e.to_string()))?;
                debug_assert!(responses[j].is_none(), "duplicate response for task {j}");
                responses[j] = Some(bits);
                remaining -= 1;
            } else {
                // Request arrived at a PE: decode off the wires, recover
                // pairing, schedule the MAC result.
                let meta = &metas[j];
                let recovered = port
                    .receive_task::<W>(&meta.wire, &delivered)
                    .map_err(|e| AccelError::Decode(e.to_string()))?;
                let bits = W::response_bits(&recovered);
                let ready = sim.cycle() + config.pe_latency(meta.wire.num_pairs);
                compute_queue.push(Reverse((ready, j, bits)));
            }
        }

        // PE-side: inject finished responses.
        while let Some(&Reverse((ready, j, bits))) = compute_queue.peek() {
            if ready > sim.cycle() {
                break;
            }
            compute_queue.pop();
            let image = port.session().encode_response::<W>(bits);
            overhead.codec_bits += u64::from(config.codec.extra_wires());
            sim.inject(Packet::new(metas[j].pe, metas[j].mc, vec![image], j as u64))?;
        }

        if sim.cycle() - start_cycle > config.max_cycles_per_layer {
            return Err(AccelError::Stall {
                layer: op_index,
                cycles: sim.cycle() - start_cycle,
            });
        }
    }

    let transitions_after = sim.stats().total_transitions;
    per_layer.push(LayerTrafficReport {
        op_index,
        op_name,
        request_packets: tasks.len() as u64,
        request_flits,
        cycles: sim.cycle() - start_cycle,
        transitions: transitions_after - transitions_before,
        pairs_per_task: tasks.first().map_or(0, |t| t.task.len()),
    });

    let mut out = vec![0u64; tasks.len()];
    for (j, bits) in responses.into_iter().enumerate() {
        let bits = bits.expect("all responses collected");
        out[tasks[j].out_index] = bits;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_core::OrderingMethod;
    use btr_dnn::layer::{ActKind, Activation, Conv2d, Flatten, Linear, MaxPool2d};
    use btr_dnn::model::{Layer, Sequential};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A small conv net that still exercises conv, pool, activation,
    /// flatten and linear over the NoC.
    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 3, 3, 1, 1, &mut rng)),
            Layer::Activation(Activation::new(ActKind::ReLU)),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(3 * 4 * 4, 5, &mut rng)),
        ])
    }

    fn tiny_input(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(
            &[1, 8, 8],
            (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap()
    }

    fn config(format: DataFormat, ordering: OrderingMethod) -> AccelConfig {
        AccelConfig::paper(4, 4, 2, format, ordering)
    }

    #[test]
    fn f32_inference_matches_reference() {
        let model = tiny_model(1);
        let ops = model.inference_ops();
        let input = tiny_input(2);
        let reference = model.infer(&input);
        for ordering in OrderingMethod::ALL {
            let result =
                run_inference(&ops, &input, &config(DataFormat::Float32, ordering)).unwrap();
            assert_eq!(result.output.shape(), reference.shape());
            for (got, want) in result.output.data().iter().zip(reference.data().iter()) {
                assert!(
                    (got - want).abs() < 1e-3 * (1.0 + want.abs()),
                    "{ordering}: {got} vs {want}"
                );
            }
            assert!(result.stats.packets_delivered > 0);
            assert!(result.total_cycles > 0);
        }
    }

    #[test]
    fn fx8_outputs_are_identical_across_orderings() {
        // Integer MACs make fixed-8 results bit-exact regardless of
        // transmission order — the paper's "values' integrity" claim.
        let model = tiny_model(3);
        let ops = model.inference_ops();
        let input = tiny_input(4);
        let baseline = run_inference(
            &ops,
            &input,
            &config(DataFormat::Fixed8, OrderingMethod::Baseline),
        )
        .unwrap();
        for ordering in [OrderingMethod::Affiliated, OrderingMethod::Separated] {
            let result =
                run_inference(&ops, &input, &config(DataFormat::Fixed8, ordering)).unwrap();
            assert_eq!(
                result.output.data(),
                baseline.output.data(),
                "{ordering} changed fixed-8 outputs"
            );
        }
    }

    #[test]
    fn ordering_reduces_transitions_on_tiny_model() {
        let model = tiny_model(5);
        let ops = model.inference_ops();
        let input = tiny_input(6);
        let mut totals = Vec::new();
        for ordering in OrderingMethod::ALL {
            let result =
                run_inference(&ops, &input, &config(DataFormat::Fixed8, ordering)).unwrap();
            totals.push(result.stats.total_transitions);
        }
        let (o0, o1, o2) = (totals[0], totals[1], totals[2]);
        assert!(o1 < o0, "affiliated {o1} must beat baseline {o0}");
        assert!(o2 < o0, "separated {o2} must beat baseline {o0}");
        assert!(
            o2 <= o1,
            "separated {o2} should be at least as good as affiliated {o1}"
        );
    }

    #[test]
    fn coded_links_are_lossless_for_fx8_inference() {
        // Fixed-8 outputs are bit-exact across codecs: the PEs and MCs
        // recover every operand and response off the coded wires.
        use btr_core::codec::CodecKind;
        let model = tiny_model(31);
        let ops = model.inference_ops();
        let input = tiny_input(32);
        let plain = run_inference(
            &ops,
            &input,
            &config(DataFormat::Fixed8, OrderingMethod::Separated),
        )
        .unwrap();
        for codec in [CodecKind::BusInvert, CodecKind::DeltaXor] {
            let c = config(DataFormat::Fixed8, OrderingMethod::Separated).with_codec(codec);
            let r = run_inference(&ops, &input, &c).unwrap();
            assert_eq!(
                r.output.data(),
                plain.output.data(),
                "{codec} changed fixed-8 outputs"
            );
            // Same packets and flit counts; only the wire images (and for
            // bus-invert the link width) differ.
            assert_eq!(r.total_request_packets(), plain.total_request_packets());
            assert_eq!(r.total_request_flits(), plain.total_request_flits());
            assert_ne!(
                r.stats.total_transitions, plain.stats.total_transitions,
                "{codec} should change the wire BTs"
            );
        }
    }

    #[test]
    fn coded_links_preserve_f32_inference() {
        use btr_core::codec::CodecKind;
        let model = tiny_model(33);
        let ops = model.inference_ops();
        let input = tiny_input(34);
        let reference = model.infer(&input);
        for codec in CodecKind::ALL {
            let c = config(DataFormat::Float32, OrderingMethod::Affiliated).with_codec(codec);
            let result = run_inference(&ops, &input, &c).unwrap();
            for (got, want) in result.output.data().iter().zip(reference.data().iter()) {
                assert!(
                    (got - want).abs() < 1e-3 * (1.0 + want.abs()),
                    "{codec}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn codec_overhead_is_accounted() {
        use btr_core::codec::CodecKind;
        let model = tiny_model(35);
        let ops = model.inference_ops();
        let input = tiny_input(36);
        let run = |codec| {
            run_inference(
                &ops,
                &input,
                &config(DataFormat::Fixed8, OrderingMethod::Separated).with_codec(codec),
            )
            .unwrap()
        };
        let plain = run(CodecKind::Unencoded);
        let xor = run(CodecKind::DeltaXor);
        let bi = run(CodecKind::BusInvert);
        assert_eq!(plain.codec_overhead_bits, 0);
        assert_eq!(xor.codec_overhead_bits, 0);
        // One invert-line bit per payload flit (requests) + one per
        // response packet.
        let payload_flits = bi.total_request_flits() - bi.total_request_packets();
        assert_eq!(
            bi.codec_overhead_bits,
            payload_flits + bi.total_request_packets()
        );
        // The index side channel is codec-independent.
        assert_eq!(bi.index_overhead_bits, plain.index_overhead_bits);
    }

    #[test]
    fn traffic_identical_across_orderings() {
        // Same packets, flits and assignments; only intra-packet order
        // differs.
        let model = tiny_model(7);
        let ops = model.inference_ops();
        let input = tiny_input(8);
        let mut packet_counts = Vec::new();
        let mut flit_counts = Vec::new();
        for ordering in OrderingMethod::ALL {
            let r = run_inference(&ops, &input, &config(DataFormat::Fixed8, ordering)).unwrap();
            packet_counts.push(r.total_request_packets());
            flit_counts.push(r.total_request_flits());
        }
        assert!(packet_counts.windows(2).all(|w| w[0] == w[1]));
        assert!(flit_counts.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn separated_reports_index_overhead() {
        let model = tiny_model(9);
        let ops = model.inference_ops();
        let input = tiny_input(10);
        let o1 = run_inference(
            &ops,
            &input,
            &config(DataFormat::Fixed8, OrderingMethod::Affiliated),
        )
        .unwrap();
        let o2 = run_inference(
            &ops,
            &input,
            &config(DataFormat::Fixed8, OrderingMethod::Separated),
        )
        .unwrap();
        assert_eq!(o1.index_overhead_bits, 0);
        assert!(o2.index_overhead_bits > 0);
    }

    #[test]
    fn per_layer_reports_cover_noc_ops() {
        let model = tiny_model(11);
        let ops = model.inference_ops();
        let input = tiny_input(12);
        let r = run_inference(
            &ops,
            &input,
            &config(DataFormat::Float32, OrderingMethod::Baseline),
        )
        .unwrap();
        assert_eq!(r.per_layer.len(), 2); // conv + linear
        assert_eq!(r.per_layer[0].op_name, "conv");
        assert_eq!(r.per_layer[1].op_name, "linear");
        // conv on 8x8 with pad 1: 3 channels * 64 pixels = 192 tasks.
        assert_eq!(r.per_layer[0].request_packets, 192);
        assert_eq!(r.per_layer[1].request_packets, 5);
        assert!(r.per_layer.iter().all(|l| l.transitions > 0));
    }

    #[test]
    fn rejects_fixed16() {
        let model = tiny_model(13);
        let ops = model.inference_ops();
        let input = tiny_input(14);
        let mut c = config(DataFormat::Fixed8, OrderingMethod::Baseline);
        c.format = DataFormat::Fixed16;
        c.noc.link_width_bits = 256;
        let err = run_inference(&ops, &input, &c).unwrap_err();
        assert!(matches!(
            err,
            AccelError::UnsupportedFormat(DataFormat::Fixed16)
        ));
    }

    #[test]
    fn sensitivity_options_increase_fx8_reduction() {
        // Value tiebreak + global fixed-8 weights should push the fixed-8
        // separated-ordering reduction beyond the strictly-as-described
        // configuration (see EXPERIMENTS.md).
        let model = tiny_model(21);
        let ops = model.inference_ops();
        let input = tiny_input(22);
        let reduction = |tiebreak, global| -> f64 {
            let mut totals = Vec::new();
            for ordering in [OrderingMethod::Baseline, OrderingMethod::Separated] {
                let mut c = config(DataFormat::Fixed8, ordering);
                c.tiebreak = tiebreak;
                c.global_fx8_weights = global;
                totals.push(
                    run_inference(&ops, &input, &c)
                        .unwrap()
                        .stats
                        .total_transitions,
                );
            }
            1.0 - totals[1] as f64 / totals[0] as f64
        };
        let plain = reduction(btr_core::ordering::TieBreak::Stable, false);
        let boosted = reduction(btr_core::ordering::TieBreak::Value, true);
        assert!(
            boosted > plain,
            "sensitivity options should help: {boosted} vs {plain}"
        );
    }

    #[test]
    fn pe_partition_is_balanced_and_local() {
        use btr_noc::config::NocConfig;
        use btr_noc::routing::hop_count;
        for (w, h, mc) in [(4usize, 4usize, 2usize), (8, 8, 4), (8, 8, 8)] {
            let config = NocConfig::paper_mesh(w, h, mc, 128);
            let regions = partition_pes_by_mc(&config);
            assert_eq!(regions.len(), mc);
            let total: usize = regions.iter().map(Vec::len).sum();
            assert_eq!(total, config.pe_nodes().len());
            let cap = total.div_ceil(mc);
            for region in &regions {
                assert!(region.len() <= cap);
                assert!(!region.is_empty());
            }
            // No PE appears twice.
            let mut all: Vec<usize> = regions.iter().flatten().copied().collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), total);
            // Fewer MCs (bigger regions) means longer average distance.
            if mc == 4 {
                let c8 = NocConfig::paper_mesh(8, 8, 8, 128);
                let r8 = partition_pes_by_mc(&c8);
                let avg = |cfg: &NocConfig, regs: &[Vec<usize>]| -> f64 {
                    let mut sum = 0usize;
                    let mut n = 0usize;
                    for (mi, region) in regs.iter().enumerate() {
                        for &pe in region {
                            sum += hop_count(cfg, cfg.mc_nodes[mi], pe);
                            n += 1;
                        }
                    }
                    sum as f64 / n as f64
                };
                assert!(avg(&config, &regions) > avg(&c8, &r8));
            }
        }
    }

    #[test]
    fn stall_guard_fires() {
        let model = tiny_model(15);
        let ops = model.inference_ops();
        let input = tiny_input(16);
        let mut c = config(DataFormat::Fixed8, OrderingMethod::Baseline);
        c.max_cycles_per_layer = 2;
        let err = run_inference(&ops, &input, &c).unwrap_err();
        assert!(matches!(err, AccelError::Stall { layer: 0, .. }));
    }
}
