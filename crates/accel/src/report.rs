//! Inference result and per-layer traffic reports.

use btr_dnn::tensor::Tensor;
use btr_noc::stats::NocStats;
use serde::{Deserialize, Serialize};

/// Traffic summary of one NoC layer (conv / linear).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerTrafficReport {
    /// Index into the inference-op list.
    pub op_index: usize,
    /// `"conv"` or `"linear"`.
    pub op_name: &'static str,
    /// Task packets sent MC→PE (the same number of responses came back).
    pub request_packets: u64,
    /// Flits injected for requests (head + payload).
    pub request_flits: u64,
    /// Cycles this layer's traffic took to drain.
    pub cycles: u64,
    /// Bit transitions accumulated during this layer (all links).
    pub transitions: u64,
    /// Operand pairs per task.
    pub pairs_per_task: usize,
    /// True when the analytic stream engine evaluated this layer's
    /// traffic (forced by [`EngineMode::Analytic`], or proven
    /// contention-free under [`EngineMode::Auto`]); false when the cycle
    /// engine ran it.
    ///
    /// [`EngineMode::Analytic`]: btr_noc::EngineMode::Analytic
    /// [`EngineMode::Auto`]: btr_noc::EngineMode::Auto
    pub analytic: bool,
}

/// Result of a full accelerated inference.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// The network output (logits).
    pub output: Tensor,
    /// Aggregate NoC statistics over the complete inference.
    pub stats: NocStats,
    /// Per-NoC-layer traffic breakdown.
    pub per_layer: Vec<LayerTrafficReport>,
    /// Total simulated cycles.
    pub total_cycles: u64,
    /// Separated-ordering index side-channel overhead, in bits
    /// (zero for O0/O1).
    pub index_overhead_bits: u64,
    /// Link-codec side-channel overhead, in bits: the bus-invert line
    /// bits transmitted alongside the data wires (zero for unencoded and
    /// delta-XOR links).
    pub codec_overhead_bits: u64,
    /// Per-flit EDC check-field overhead, in bits (zero without an EDC).
    pub edc_overhead_bits: u64,
    /// Payload flits the NIs re-sent after NACKed deliveries (zero on
    /// perfect wires).
    pub retransmitted_flits: u64,
    /// Packets that needed at least one retransmission and were
    /// eventually delivered clean.
    pub retried_packets: u64,
}

/// Fraction of NoC layers (traffic phases) the analytic engine
/// evaluated: 0.0 under `EngineMode::Cycle`, 1.0 under forced
/// `EngineMode::Analytic`, and the proven-eligible fraction under
/// `EngineMode::Auto`. Zero when the inference had no NoC layers.
fn analytic_fraction(per_layer: &[LayerTrafficReport]) -> f64 {
    if per_layer.is_empty() {
        return 0.0;
    }
    per_layer.iter().filter(|l| l.analytic).count() as f64 / per_layer.len() as f64
}

impl InferenceResult {
    /// Total request packets across layers.
    #[must_use]
    pub fn total_request_packets(&self) -> u64 {
        self.per_layer.iter().map(|l| l.request_packets).sum()
    }

    /// Total request flits across layers.
    #[must_use]
    pub fn total_request_flits(&self) -> u64 {
        self.per_layer.iter().map(|l| l.request_flits).sum()
    }

    /// Fraction of NoC layers the analytic engine evaluated.
    #[must_use]
    pub fn analytic_phase_fraction(&self) -> f64 {
        analytic_fraction(&self.per_layer)
    }
}

/// Result of a batched inference: `batch_size` inputs ran through every
/// layer as one traffic phase on one simulator, so `stats`, `per_layer`
/// and the overhead counters aggregate the whole batch's traffic.
#[derive(Debug, Clone)]
pub struct BatchInferenceResult {
    /// One network output (logits) per batch element, in input order.
    pub outputs: Vec<Tensor>,
    /// Aggregate NoC statistics over the complete batch.
    pub stats: NocStats,
    /// Per-NoC-layer traffic breakdown (each entry covers the batch).
    pub per_layer: Vec<LayerTrafficReport>,
    /// Total simulated cycles.
    pub total_cycles: u64,
    /// Separated-ordering index side-channel overhead, in bits.
    pub index_overhead_bits: u64,
    /// Link-codec side-channel overhead, in bits.
    pub codec_overhead_bits: u64,
    /// Per-flit EDC check-field overhead, in bits.
    pub edc_overhead_bits: u64,
    /// Payload flits the NIs re-sent after NACKed deliveries.
    pub retransmitted_flits: u64,
    /// Packets that retried at least once and were delivered clean.
    pub retried_packets: u64,
}

impl BatchInferenceResult {
    /// Total request packets across layers.
    #[must_use]
    pub fn total_request_packets(&self) -> u64 {
        self.per_layer.iter().map(|l| l.request_packets).sum()
    }

    /// Total request flits across layers.
    #[must_use]
    pub fn total_request_flits(&self) -> u64 {
        self.per_layer.iter().map(|l| l.request_flits).sum()
    }

    /// Fraction of NoC layers the analytic engine evaluated.
    #[must_use]
    pub fn analytic_phase_fraction(&self) -> f64 {
        analytic_fraction(&self.per_layer)
    }

    /// Collapses a single-element batch into an [`InferenceResult`].
    ///
    /// # Panics
    ///
    /// Panics if the batch holds more than one output.
    #[must_use]
    pub fn into_single(mut self) -> InferenceResult {
        assert_eq!(self.outputs.len(), 1, "batch result holds multiple outputs");
        InferenceResult {
            output: self.outputs.pop().expect("one output"),
            stats: self.stats,
            per_layer: self.per_layer,
            total_cycles: self.total_cycles,
            index_overhead_bits: self.index_overhead_bits,
            codec_overhead_bits: self.codec_overhead_bits,
            edc_overhead_bits: self.edc_overhead_bits,
            retransmitted_flits: self.retransmitted_flits,
            retried_packets: self.retried_packets,
        }
    }
}
