//! The parallel sweep runner: one `Simulator` per grid cell, fanned out
//! with rayon, results as machine-readable JSON.
//!
//! A sweep is a grid over `(workload × mesh × data format × ordering ×
//! tiebreak × fx8 scheme)`. Every cell runs a complete inference through
//! its own flat-array simulator (cells share nothing, so they
//! parallelize perfectly), and the outcome carries the figures the
//! paper's evaluation reports: total bit transitions, cycles, flit-hops,
//! latency, index overhead.
//!
//! `fig12_noc_sizes`, `fig13_models` and the `sweep` binary are all thin
//! front-ends over [`expand_grid`] + [`run_cells`] +
//! [`outcomes_json`]; see `EXPERIMENTS.md` for the JSON schema
//! (`btr-sweep-v1`) and usage examples.

use crate::json::Json;
use btr_accel::config::AccelConfig;
use btr_accel::driver::run_inference;
use btr_bits::word::DataFormat;
use btr_core::ordering::{OrderingMethod, TieBreak};
use btr_dnn::model::InferenceOp;
use btr_dnn::tensor::Tensor;
use rayon::prelude::*;

/// A named inference workload (model lowered to ops + input tensor).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (`"LeNet"`, `"DarkNet"`, ...).
    pub name: String,
    /// The lowered inference graph.
    pub ops: Vec<InferenceOp>,
    /// The input tensor.
    pub input: Tensor,
}

/// A mesh geometry: `width × height` with `mc_count` memory controllers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshSpec {
    /// Mesh columns.
    pub width: usize,
    /// Mesh rows.
    pub height: usize,
    /// Memory-controller count (left/right edge pairs).
    pub mc_count: usize,
}

impl MeshSpec {
    /// The paper's three NoC sizes (Sec. V-B-1).
    pub const PAPER: [MeshSpec; 3] = [
        MeshSpec {
            width: 4,
            height: 4,
            mc_count: 2,
        },
        MeshSpec {
            width: 8,
            height: 8,
            mc_count: 4,
        },
        MeshSpec {
            width: 8,
            height: 8,
            mc_count: 8,
        },
    ];

    /// Short label, e.g. `"4x4 MC2"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}x{} MC{}", self.width, self.height, self.mc_count)
    }
}

impl std::fmt::Display for MeshSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl std::str::FromStr for MeshSpec {
    type Err = String;

    /// Parses `"WxHxMC"`, e.g. `"8x8x4"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('x').collect();
        if parts.len() != 3 {
            return Err(format!("mesh spec {s:?} is not WxHxMC (e.g. 8x8x4)"));
        }
        let parse = |part: &str, what: &str| -> Result<usize, String> {
            part.parse()
                .map_err(|e| format!("bad {what} in mesh spec {s:?}: {e}"))
        };
        Ok(MeshSpec {
            width: parse(parts[0], "width")?,
            height: parse(parts[1], "height")?,
            mc_count: parse(parts[2], "MC count")?,
        })
    }
}

/// One cell of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCell {
    /// Index into the workload list.
    pub workload: usize,
    /// Mesh geometry.
    pub mesh: MeshSpec,
    /// Payload data format.
    pub format: DataFormat,
    /// Transmission ordering.
    pub ordering: OrderingMethod,
    /// Popcount-tie handling.
    pub tiebreak: TieBreak,
    /// Global Q0.7 fixed-8 weight quantization (sensitivity variant).
    pub fx8_global: bool,
}

/// The measured outcome of one cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell that produced this outcome.
    pub cell: SweepCell,
    /// Total bit transitions over every link.
    pub transitions: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total flit-hops.
    pub flit_hops: u64,
    /// Request packets sent MC→PE.
    pub request_packets: u64,
    /// Mean packet latency in cycles.
    pub mean_latency: f64,
    /// O2 index side-channel overhead in bits.
    pub index_overhead_bits: u64,
    /// Wall-clock milliseconds the cell took.
    pub wall_ms: u64,
    /// Error message if the cell failed (metrics are zero then).
    pub error: Option<String>,
}

/// Expands the full cross product into cells.
#[must_use]
pub fn expand_grid(
    workloads: usize,
    meshes: &[MeshSpec],
    formats: &[DataFormat],
    orderings: &[OrderingMethod],
    tiebreaks: &[TieBreak],
    fx8_globals: &[bool],
) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for w in 0..workloads {
        for &mesh in meshes {
            for &format in formats {
                for &ordering in orderings {
                    for &tiebreak in tiebreaks {
                        for &fx8_global in fx8_globals {
                            cells.push(SweepCell {
                                workload: w,
                                mesh,
                                format,
                                ordering,
                                tiebreak,
                                fx8_global,
                            });
                        }
                    }
                }
            }
        }
    }
    cells
}

/// Runs one cell on its own simulator.
#[must_use]
pub fn run_cell(workloads: &[Workload], cell: SweepCell) -> CellOutcome {
    let start = std::time::Instant::now();
    let workload = &workloads[cell.workload];
    let mut config = AccelConfig::paper(
        cell.mesh.width,
        cell.mesh.height,
        cell.mesh.mc_count,
        cell.format,
        cell.ordering,
    );
    config.tiebreak = cell.tiebreak;
    config.global_fx8_weights = cell.fx8_global;
    match run_inference(&workload.ops, &workload.input, &config) {
        Ok(result) => CellOutcome {
            cell,
            transitions: result.stats.total_transitions,
            cycles: result.total_cycles,
            flit_hops: result.stats.flit_hops,
            request_packets: result.total_request_packets(),
            mean_latency: result.stats.latency.mean,
            index_overhead_bits: result.index_overhead_bits,
            wall_ms: start.elapsed().as_millis() as u64,
            error: None,
        },
        Err(e) => CellOutcome {
            cell,
            transitions: 0,
            cycles: 0,
            flit_hops: 0,
            request_packets: 0,
            mean_latency: 0.0,
            index_overhead_bits: 0,
            wall_ms: start.elapsed().as_millis() as u64,
            error: Some(e.to_string()),
        },
    }
}

/// Runs a list of independent jobs, in parallel (rayon) unless
/// `sequential` is set.
pub fn par_run<T: Send, R: Send>(
    items: Vec<T>,
    sequential: bool,
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    if sequential {
        items.into_iter().map(f).collect()
    } else {
        items.into_par_iter().map(f).collect()
    }
}

/// Runs every cell of a sweep (cell order is preserved in the output).
#[must_use]
pub fn run_cells(
    workloads: &[Workload],
    cells: Vec<SweepCell>,
    sequential: bool,
) -> Vec<CellOutcome> {
    par_run(cells, sequential, |cell| run_cell(workloads, cell))
}

/// Finds the baseline (O0) outcome matching a cell's other coordinates,
/// for normalization/reduction reporting.
#[must_use]
pub fn baseline_of<'a>(outcomes: &'a [CellOutcome], cell: &SweepCell) -> Option<&'a CellOutcome> {
    outcomes.iter().find(|o| {
        o.cell.workload == cell.workload
            && o.cell.mesh == cell.mesh
            && o.cell.format == cell.format
            && o.cell.tiebreak == cell.tiebreak
            && o.cell.fx8_global == cell.fx8_global
            && o.cell.ordering == OrderingMethod::Baseline
    })
}

/// Serializes outcomes to the `btr-sweep-v1` schema.
#[must_use]
pub fn outcomes_json(workloads: &[Workload], outcomes: &[CellOutcome]) -> Json {
    let cells: Vec<Json> = outcomes
        .iter()
        .map(|o| {
            let reduction = baseline_of(outcomes, &o.cell)
                .filter(|b| b.transitions > 0)
                .map(|b| 1.0 - o.transitions as f64 / b.transitions as f64);
            Json::obj(vec![
                (
                    "workload",
                    Json::str(workloads[o.cell.workload].name.clone()),
                ),
                ("mesh", Json::str(o.cell.mesh.label())),
                ("format", Json::str(o.cell.format.name())),
                ("ordering", Json::str(o.cell.ordering.label())),
                (
                    "tiebreak",
                    Json::str(format!("{:?}", o.cell.tiebreak).to_lowercase()),
                ),
                ("fx8_global", Json::Bool(o.cell.fx8_global)),
                ("transitions", Json::U64(o.transitions)),
                ("cycles", Json::U64(o.cycles)),
                ("flit_hops", Json::U64(o.flit_hops)),
                ("request_packets", Json::U64(o.request_packets)),
                ("mean_latency", Json::F64(o.mean_latency)),
                ("index_overhead_bits", Json::U64(o.index_overhead_bits)),
                (
                    "reduction_vs_baseline",
                    reduction.map_or(Json::Null, Json::F64),
                ),
                ("wall_ms", Json::U64(o.wall_ms)),
                ("error", o.error.clone().map_or(Json::Null, Json::Str)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::str("btr-sweep-v1")),
        ("cells", Json::Arr(cells)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_dnn::layer::{ActKind, Activation, Conv2d, Flatten, Linear, MaxPool2d};
    use btr_dnn::model::{Layer, Sequential};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny_workload() -> Workload {
        let mut rng = StdRng::seed_from_u64(1);
        let model = Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, &mut rng)),
            Layer::Activation(Activation::new(ActKind::ReLU)),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(2 * 4 * 4, 4, &mut rng)),
        ]);
        let input = Tensor::from_vec(
            &[1, 8, 8],
            (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap();
        Workload {
            name: "tiny".into(),
            ops: model.inference_ops(),
            input,
        }
    }

    #[test]
    fn mesh_spec_parses_and_prints() {
        let m: MeshSpec = "8x8x4".parse().unwrap();
        assert_eq!(
            m,
            MeshSpec {
                width: 8,
                height: 8,
                mc_count: 4
            }
        );
        assert_eq!(m.label(), "8x8 MC4");
        assert!("8x8".parse::<MeshSpec>().is_err());
        assert!("axbxc".parse::<MeshSpec>().is_err());
    }

    #[test]
    fn grid_expansion_counts() {
        let cells = expand_grid(
            2,
            &MeshSpec::PAPER,
            &[DataFormat::Float32, DataFormat::Fixed8],
            &OrderingMethod::ALL,
            &[TieBreak::Stable],
            &[false],
        );
        assert_eq!(cells.len(), 2 * 3 * 2 * 3);
    }

    #[test]
    fn sweep_runs_and_serializes() {
        let workloads = vec![tiny_workload()];
        let cells = expand_grid(
            1,
            &[MeshSpec {
                width: 4,
                height: 4,
                mc_count: 2,
            }],
            &[DataFormat::Fixed8],
            &OrderingMethod::ALL,
            &[TieBreak::Stable],
            &[false],
        );
        let outcomes = run_cells(&workloads, cells.clone(), false);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.error.is_none()));
        assert!(outcomes.iter().all(|o| o.transitions > 0 && o.cycles > 0));
        // Ordering reduces transitions relative to the baseline cell.
        let base = baseline_of(&outcomes, &cells[1]).unwrap();
        assert!(outcomes[2].transitions < base.transitions);
        // Parallel and sequential execution agree bit-for-bit.
        let serial = run_cells(&workloads, cells, true);
        for (a, b) in outcomes.iter().zip(serial.iter()) {
            assert_eq!(a.transitions, b.transitions);
            assert_eq!(a.cycles, b.cycles);
        }
        let json = outcomes_json(&workloads, &outcomes);
        let text = json.to_string_compact();
        assert!(text.contains("\"schema\":\"btr-sweep-v1\""));
        assert!(text.contains("\"ordering\":\"O2\""));
        assert!(text.contains("\"reduction_vs_baseline\""));
    }

    #[test]
    fn failed_cells_report_errors() {
        let workloads = vec![tiny_workload()];
        // fixed-16 is not wired into the accelerator -> cell error.
        let cells = vec![SweepCell {
            workload: 0,
            mesh: MeshSpec {
                width: 4,
                height: 4,
                mc_count: 2,
            },
            format: DataFormat::Fixed16,
            ordering: OrderingMethod::Baseline,
            tiebreak: TieBreak::Stable,
            fx8_global: false,
        }];
        let outcomes = run_cells(&workloads, cells, true);
        assert!(outcomes[0].error.is_some());
        let json = outcomes_json(&workloads, &outcomes);
        assert!(json.to_string_compact().contains("\"error\":\""));
    }
}
