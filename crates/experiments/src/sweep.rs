//! The parallel sweep runner: one `Simulator` per grid cell, fanned out
//! with rayon, results as machine-readable JSON.
//!
//! A sweep is a grid over `(workload × mesh × data format × ordering ×
//! tiebreak × fx8 scheme × link codec × codec scope × batch size ×
//! engine × BER × EDC × resync)`. Every cell runs a complete (batched)
//! inference through its own flat-array simulator
//! (cells share nothing, so they parallelize perfectly), and the outcome
//! carries the figures the paper's evaluation reports: total bit
//! transitions, cycles, flit-hops, latency, index/codec/EDC side-channel
//! overhead, and the fault-recovery metrics (retransmitted flits,
//! retried packets, clean-first-try delivery fraction).
//!
//! The `sweep` binary (including its `fig12_noc_sizes` / `fig13_models`
//! presets, the retired per-figure binaries) is a thin front-end over
//! [`expand_grid`] + [`run_cells`] + [`outcomes_json`]; see
//! `EXPERIMENTS.md` for the JSON schema (`btr-sweep-v8`) and usage
//! examples. Grids can span machines: a [`Shard`] selects a deterministic
//! subset of the expanded cells and [`merge_sweep_json`] recombines the
//! per-shard result files.

use crate::json::Json;
use btr_accel::config::{AccelConfig, DriverMode};
use btr_accel::driver::run_inference_batch;
use btr_bits::word::DataFormat;
use btr_core::codec::{CodecKind, CodecScope, ResyncPolicy};
use btr_core::edc::EdcKind;
use btr_core::ordering::{OrderingMethod, TieBreak};
use btr_dnn::model::InferenceOp;
use btr_dnn::tensor::Tensor;
use btr_noc::fault::{BitErrorRate, ErrorModel, FaultMode};
use btr_noc::EngineMode;
use rayon::prelude::*;

/// The sweep result schema version (`codec` axis added in v2, `batch`
/// axis in v3, `distinct_inputs` in v4, `codec_scope` + `link_energy_mj`
/// in v5, `engine` + `analytic_phase_fraction` in v6, `ber`/`edc`/
/// `resync` axes + `edc_overhead_bits`/`retransmitted_flits`/
/// `retried_packets`/`delivered_ok_fraction` in v7, `fault_mode` axis
/// in v8).
///
/// This is the canonical declaration `btr-lint`'s schema-coherence rule
/// checks every other `btr-sweep-v*` occurrence against.
pub const SWEEP_SCHEMA: &str = "btr-sweep-v8";

/// Seed of the deterministic per-link fault streams every error-injected
/// cell uses. One fixed constant, so two runs of the same grid (and the
/// shards of a split grid) flip identical bits.
pub const FAULT_SEED: u64 = 0xB17;

/// Retry budget armed in fault-injected cells; a packet still dirty
/// after this many replays fails the whole cell loudly (its row carries
/// the error).
pub const FAULT_RETRY_BUDGET: u32 = 8;

/// A named inference workload (model lowered to ops + a pool of input
/// tensors batched cells draw from).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (`"LeNet"`, `"DarkNet"`, ...).
    pub name: String,
    /// The lowered inference graph.
    pub ops: Vec<InferenceOp>,
    /// Input tensors; a cell with batch `N` uses the first `N`. The pool
    /// must hold at least the max sweep batch — cells never cycle it.
    pub inputs: Vec<Tensor>,
}

impl Workload {
    /// The first `batch` inputs from the pool.
    ///
    /// # Errors
    ///
    /// Errors when the pool holds fewer than `batch` inputs. The old
    /// behavior — silently cycling the pool — replayed identical inputs
    /// in large-batch cells, and that correlated traffic flattered the
    /// reduction numbers; workload builders must size the pool to the
    /// max sweep batch instead (the `sweep` binary does).
    pub fn batch_inputs(&self, batch: usize) -> Result<Vec<Tensor>, String> {
        if self.inputs.len() < batch {
            return Err(format!(
                "workload {:?} has {} distinct inputs but the cell needs batch {batch}; \
                 size the input pool to the max sweep batch",
                self.name,
                self.inputs.len()
            ));
        }
        Ok(self.inputs[..batch].to_vec())
    }
}

/// A mesh geometry: `width × height` with `mc_count` memory controllers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshSpec {
    /// Mesh columns.
    pub width: usize,
    /// Mesh rows.
    pub height: usize,
    /// Memory-controller count (left/right edge pairs).
    pub mc_count: usize,
}

impl MeshSpec {
    /// The paper's three NoC sizes (Sec. V-B-1).
    pub const PAPER: [MeshSpec; 3] = [
        MeshSpec {
            width: 4,
            height: 4,
            mc_count: 2,
        },
        MeshSpec {
            width: 8,
            height: 8,
            mc_count: 4,
        },
        MeshSpec {
            width: 8,
            height: 8,
            mc_count: 8,
        },
    ];

    /// Short label, e.g. `"4x4 MC2"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}x{} MC{}", self.width, self.height, self.mc_count)
    }
}

impl std::fmt::Display for MeshSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl std::str::FromStr for MeshSpec {
    type Err = String;

    /// Parses `"WxHxMC"`, e.g. `"8x8x4"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('x').collect();
        if parts.len() != 3 {
            return Err(format!("mesh spec {s:?} is not WxHxMC (e.g. 8x8x4)"));
        }
        let parse = |part: &str, what: &str| -> Result<usize, String> {
            part.parse()
                .map_err(|e| format!("bad {what} in mesh spec {s:?}: {e}"))
        };
        Ok(MeshSpec {
            width: parse(parts[0], "width")?,
            height: parse(parts[1], "height")?,
            mc_count: parse(parts[2], "MC count")?,
        })
    }
}

/// One cell of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SweepCell {
    /// Index into the workload list.
    pub workload: usize,
    /// Mesh geometry.
    pub mesh: MeshSpec,
    /// Payload data format.
    pub format: DataFormat,
    /// Transmission ordering.
    // btr-lint: allow(sweep-axis-completeness, reason = "ordering is the axis the baseline key deliberately normalizes away: a cell's baseline row is the same cell with ordering=O0")
    pub ordering: OrderingMethod,
    /// Popcount-tie handling.
    pub tiebreak: TieBreak,
    /// Global Q0.7 fixed-8 weight quantization (sensitivity variant).
    pub fx8_global: bool,
    /// Link-coding backend on every link.
    pub codec: CodecKind,
    /// Where the codec state lives: re-seeded per packet at the MC, or
    /// persistent on each directed link across packets/batches/layers.
    pub scope: CodecScope,
    /// Inputs run through each layer as one traffic phase.
    pub batch: usize,
    /// Which engine evaluates the cell's traffic phases: the
    /// cycle-accurate mesh, the forced analytic stream replay, or
    /// per-phase classification with cycle fallback.
    pub engine: EngineMode,
    /// Per-directed-link bit-error rate (zero = perfect wires). Stored
    /// as the exact [`BitErrorRate`] threshold so cells stay `Eq`/`Hash`.
    pub ber: BitErrorRate,
    /// EDC check field carried on every flit frame. [`EdcKind::None`]
    /// with a zero BER is the plain perfect-wire cell; any other
    /// combination arms the recovery protocol.
    pub edc: EdcKind,
    /// Codec-lane resync policy at retransmission boundaries (only
    /// observable with a stateful per-link codec under errors).
    pub resync: ResyncPolicy,
    /// Error process shape: independent per-bit flips, or per-flit
    /// burst events flipping a contiguous wire run. At BER zero the
    /// mode is inert (no draws happen either way).
    pub fault_mode: FaultMode,
    /// Harness-only knob (never serialized, not part of the baseline
    /// key): arm the full EDC/retry receive path even at BER zero, so
    /// zero-BER equivalence with the plain path can be pinned by
    /// diffing result files.
    // btr-lint: allow(sweep-axis-completeness, reason = "fault_armed is a harness-only equivalence-test switch; it must never reach result rows or baseline keys precisely so armed and plain runs serialize identically")
    pub fault_armed: bool,
}

impl SweepCell {
    /// True when this cell runs the fault/EDC/retransmission protocol
    /// (real errors, an explicit EDC, or the harness arming knob).
    #[must_use]
    pub fn runs_fault_protocol(&self) -> bool {
        !self.ber.is_zero() || self.edc != EdcKind::None || self.fault_armed
    }
}

/// The measured outcome of one cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell that produced this outcome.
    pub cell: SweepCell,
    /// Total bit transitions over every link.
    pub transitions: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total flit-hops.
    pub flit_hops: u64,
    /// Request packets sent MC→PE.
    pub request_packets: u64,
    /// Mean packet latency in cycles.
    pub mean_latency: f64,
    /// O2 index side-channel overhead in bits.
    pub index_overhead_bits: u64,
    /// Link-codec side-channel overhead in bits (the bus-invert line).
    pub codec_overhead_bits: u64,
    /// Link energy of the recorded (coded-wire) transitions in
    /// millijoules, under the paper's extracted 0.173 pJ/transition model
    /// (`btr_hw::link_energy`) — computed from the transitions the
    /// simulated scope actually put on the wires. Retry-inclusive: a
    /// retransmitted packet traverses (and toggles) the wires again, and
    /// those transitions land in the same counters, so under errors this
    /// is the net energy of delivering everything clean.
    pub link_energy_mj: f64,
    /// Per-flit EDC check-field overhead in bits (the CRC/parity wires).
    pub edc_overhead_bits: u64,
    /// Payload flits the NIs re-sent after NACKed deliveries.
    pub retransmitted_flits: u64,
    /// Logical packets that needed at least one retransmission before
    /// arriving clean.
    pub retried_packets: u64,
    /// Fraction of logical packets (requests + responses) delivered
    /// clean on their first attempt: `1 - retried_packets / (2 ×
    /// request_packets)`. Exactly 1.0 on perfect wires.
    pub delivered_ok_fraction: f64,
    /// Distinct inputs the batch ran (equals `batch` since pools no
    /// longer cycle; recorded so result files are auditable).
    pub distinct_inputs: u64,
    /// Fraction of NoC layers the analytic engine evaluated (0.0 under
    /// `cycle`, 1.0 under forced `analytic`, the proven-eligible share
    /// under `auto`).
    pub analytic_phase_fraction: f64,
    /// Wall-clock milliseconds the cell took.
    pub wall_ms: u64,
    /// Error message if the cell failed (metrics are zero then).
    pub error: Option<String>,
}

/// Expands the full cross product into cells.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn expand_grid(
    workloads: usize,
    meshes: &[MeshSpec],
    formats: &[DataFormat],
    orderings: &[OrderingMethod],
    tiebreaks: &[TieBreak],
    fx8_globals: &[bool],
    codecs: &[CodecKind],
    scopes: &[CodecScope],
    batches: &[usize],
    engines: &[EngineMode],
    bers: &[BitErrorRate],
    edcs: &[EdcKind],
    resyncs: &[ResyncPolicy],
    fault_modes: &[FaultMode],
) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for w in 0..workloads {
        for &mesh in meshes {
            for &format in formats {
                for &ordering in orderings {
                    for &tiebreak in tiebreaks {
                        for &fx8_global in fx8_globals {
                            for &codec in codecs {
                                for &scope in scopes {
                                    for &batch in batches {
                                        for &engine in engines {
                                            for &ber in bers {
                                                for &edc in edcs {
                                                    for &resync in resyncs {
                                                        for &fault_mode in fault_modes {
                                                            cells.push(SweepCell {
                                                                workload: w,
                                                                mesh,
                                                                format,
                                                                ordering,
                                                                tiebreak,
                                                                fx8_global,
                                                                codec,
                                                                scope,
                                                                batch,
                                                                engine,
                                                                ber,
                                                                edc,
                                                                resync,
                                                                fault_mode,
                                                                fault_armed: false,
                                                            });
                                                        }
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    cells
}

/// Runs one cell on its own simulator with the default (pipelined)
/// driver. Batched cells run `cell.batch` inputs through each layer as
/// one traffic phase.
#[must_use]
pub fn run_cell(workloads: &[Workload], cell: SweepCell) -> CellOutcome {
    run_cell_with(workloads, cell, DriverMode::Pipelined)
}

/// [`run_cell`] with an explicit driver mode (both modes produce
/// bit-identical metrics; `sync` exists for timing the unpipelined
/// reference).
#[must_use]
pub fn run_cell_with(workloads: &[Workload], cell: SweepCell, driver: DriverMode) -> CellOutcome {
    run_cell_impl(workloads, cell, driver, false)
}

/// `inline_encode` forces the pipelined driver's encode stage inline —
/// the parallel cell fan-out already claims every core, so per-cell
/// encoder threads would only contend (results are bit-exact either
/// way).
fn run_cell_impl(
    workloads: &[Workload],
    cell: SweepCell,
    driver: DriverMode,
    inline_encode: bool,
) -> CellOutcome {
    // btr-lint: allow(determinism, reason = "feeds only the wall_ms report field, which every equivalence diff strips; no simulated quantity depends on it")
    let start = std::time::Instant::now();
    let error_outcome = |e: String| CellOutcome {
        cell,
        transitions: 0,
        cycles: 0,
        flit_hops: 0,
        request_packets: 0,
        mean_latency: 0.0,
        index_overhead_bits: 0,
        codec_overhead_bits: 0,
        link_energy_mj: 0.0,
        edc_overhead_bits: 0,
        retransmitted_flits: 0,
        retried_packets: 0,
        delivered_ok_fraction: 0.0,
        distinct_inputs: 0,
        analytic_phase_fraction: 0.0,
        wall_ms: start.elapsed().as_millis() as u64,
        error: Some(e),
    };
    let workload = &workloads[cell.workload];
    let mut config = AccelConfig::paper(
        cell.mesh.width,
        cell.mesh.height,
        cell.mesh.mc_count,
        cell.format,
        cell.ordering,
    )
    .with_codec(cell.codec)
    .with_codec_scope(cell.scope);
    if cell.edc != EdcKind::None {
        config = config.with_edc(cell.edc);
    }
    if cell.runs_fault_protocol() {
        config = config.with_fault(
            ErrorModel {
                ber: cell.ber,
                seed: FAULT_SEED,
                mode: cell.fault_mode,
            },
            cell.resync,
            FAULT_RETRY_BUDGET,
        );
    }
    config.tiebreak = cell.tiebreak;
    config.global_fx8_weights = cell.fx8_global;
    config.batch_size = cell.batch;
    config.driver = driver;
    config.engine = cell.engine;
    config.encode_inline = inline_encode;
    let inputs = match workload.batch_inputs(cell.batch) {
        Ok(inputs) => inputs,
        Err(e) => return error_outcome(e),
    };
    match run_inference_batch(&workload.ops, &inputs, &config) {
        Ok(result) => {
            let request_packets = result.total_request_packets();
            // Every request packet has a matching response, so the
            // logical packet population is twice the request count.
            let logical_packets = 2 * request_packets;
            CellOutcome {
                cell,
                transitions: result.stats.total_transitions,
                cycles: result.total_cycles,
                flit_hops: result.stats.flit_hops,
                request_packets,
                mean_latency: result.stats.latency.mean,
                index_overhead_bits: result.index_overhead_bits,
                codec_overhead_bits: result.codec_overhead_bits,
                link_energy_mj: btr_hw::link_energy::LinkPowerModel::paper()
                    .energy_mj(result.stats.total_transitions),
                edc_overhead_bits: result.edc_overhead_bits,
                retransmitted_flits: result.retransmitted_flits,
                retried_packets: result.retried_packets,
                delivered_ok_fraction: if logical_packets == 0 {
                    1.0
                } else {
                    1.0 - result.retried_packets as f64 / logical_packets as f64
                },
                distinct_inputs: inputs.len() as u64,
                analytic_phase_fraction: result.analytic_phase_fraction(),
                wall_ms: start.elapsed().as_millis() as u64,
                error: None,
            }
        }
        Err(e) => error_outcome(e.to_string()),
    }
}

/// Runs a list of independent jobs, in parallel (rayon) unless
/// `sequential` is set.
pub fn par_run<T: Send, R: Send>(
    items: Vec<T>,
    sequential: bool,
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    if sequential {
        items.into_iter().map(f).collect()
    } else {
        items.into_par_iter().map(f).collect()
    }
}

/// Runs every cell of a sweep (cell order is preserved in the output).
#[must_use]
pub fn run_cells(
    workloads: &[Workload],
    cells: Vec<SweepCell>,
    sequential: bool,
) -> Vec<CellOutcome> {
    par_run(cells, sequential, |cell| run_cell(workloads, cell))
}

/// [`run_cells`] with an explicit driver mode. When the cells fan out
/// in parallel, each cell's pipelined encode runs inline: the runner
/// already saturates the cores with one simulator per cell.
#[must_use]
pub fn run_cells_with(
    workloads: &[Workload],
    cells: Vec<SweepCell>,
    sequential: bool,
    driver: DriverMode,
) -> Vec<CellOutcome> {
    let parallel_cells = !sequential && cells.len() > 1;
    par_run(cells, sequential, |cell| {
        run_cell_impl(workloads, cell, driver, parallel_cells)
    })
}

/// The cell's coordinates with the ordering axis normalized to O0 — the
/// key under which its baseline row lives.
fn baseline_cell_of(cell: &SweepCell) -> SweepCell {
    SweepCell {
        ordering: OrderingMethod::Baseline,
        ..*cell
    }
}

/// Indexes every baseline (O0) outcome's transitions by the non-ordering
/// coordinates, in one pass — the in-memory counterpart of the merge
/// path's baseline map, shared by [`outcomes_json`] consumers that need
/// reductions without re-scanning the outcome list per cell.
#[must_use]
pub fn baseline_index(outcomes: &[CellOutcome]) -> std::collections::HashMap<SweepCell, u64> {
    outcomes
        .iter()
        .filter(|o| o.cell.ordering == OrderingMethod::Baseline && o.transitions > 0)
        .map(|o| (o.cell, o.transitions))
        .collect()
}

/// `reduction_vs_baseline` for one outcome against a prebuilt
/// [`baseline_index`].
#[must_use]
pub fn reduction_vs_baseline(
    index: &std::collections::HashMap<SweepCell, u64>,
    outcome: &CellOutcome,
) -> Option<f64> {
    index
        .get(&baseline_cell_of(&outcome.cell))
        .map(|&base| 1.0 - outcome.transitions as f64 / base as f64)
}

/// Finds the baseline (O0, same codec) outcome matching a cell's other
/// coordinates, for normalization/reduction reporting — so
/// `reduction_vs_baseline` answers "what does ordering buy on this
/// (possibly coded) link". Linear scan; for whole-list serialization use
/// [`baseline_index`] / [`outcomes_json`], which index once.
#[must_use]
pub fn baseline_of<'a>(outcomes: &'a [CellOutcome], cell: &SweepCell) -> Option<&'a CellOutcome> {
    let key = baseline_cell_of(cell);
    outcomes.iter().find(|o| o.cell == key)
}

/// Serializes outcomes to the sweep schema. Baselines are resolved
/// through the same single-pass recompute the shard merge uses
/// ([`merge_sweep_json`]), so serialization is O(cells), not O(cells²),
/// and the two paths cannot drift.
#[must_use]
pub fn outcomes_json(workloads: &[Workload], outcomes: &[CellOutcome]) -> Json {
    let mut cells: Vec<Json> = outcomes
        .iter()
        .map(|o| {
            Json::obj(vec![
                (
                    "workload",
                    Json::str(workloads[o.cell.workload].name.clone()),
                ),
                ("mesh", Json::str(o.cell.mesh.label())),
                ("format", Json::str(o.cell.format.name())),
                ("ordering", Json::str(o.cell.ordering.label())),
                (
                    "tiebreak",
                    Json::str(format!("{:?}", o.cell.tiebreak).to_lowercase()),
                ),
                ("fx8_global", Json::Bool(o.cell.fx8_global)),
                ("codec", Json::str(o.cell.codec.label())),
                ("codec_scope", Json::str(o.cell.scope.label())),
                ("batch", Json::U64(o.cell.batch as u64)),
                ("engine", Json::str(o.cell.engine.label())),
                ("ber", Json::F64(o.cell.ber.as_f64())),
                ("edc", Json::str(o.cell.edc.label())),
                ("resync", Json::str(o.cell.resync.label())),
                ("fault_mode", Json::str(o.cell.fault_mode.label())),
                ("transitions", Json::U64(o.transitions)),
                ("cycles", Json::U64(o.cycles)),
                ("flit_hops", Json::U64(o.flit_hops)),
                ("request_packets", Json::U64(o.request_packets)),
                ("mean_latency", Json::F64(o.mean_latency)),
                ("index_overhead_bits", Json::U64(o.index_overhead_bits)),
                ("codec_overhead_bits", Json::U64(o.codec_overhead_bits)),
                ("link_energy_mj", Json::F64(o.link_energy_mj)),
                ("edc_overhead_bits", Json::U64(o.edc_overhead_bits)),
                ("retransmitted_flits", Json::U64(o.retransmitted_flits)),
                ("retried_packets", Json::U64(o.retried_packets)),
                ("delivered_ok_fraction", Json::F64(o.delivered_ok_fraction)),
                ("distinct_inputs", Json::U64(o.distinct_inputs)),
                (
                    "analytic_phase_fraction",
                    Json::F64(o.analytic_phase_fraction),
                ),
                ("reduction_vs_baseline", Json::Null),
                ("wall_ms", Json::U64(o.wall_ms)),
                ("error", o.error.clone().map_or(Json::Null, Json::Str)),
            ])
        })
        .collect();
    recompute_reductions(&mut cells);
    Json::obj(vec![
        ("schema", Json::str(SWEEP_SCHEMA)),
        ("cells", Json::Arr(cells)),
    ])
}

/// A deterministic `index/count` slice of a cell list, so one grid can
/// span processes or hosts: shard `i/n` keeps the cells whose expansion
/// index is `i` modulo `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's index, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// The whole grid as one shard.
    pub const WHOLE: Shard = Shard { index: 0, count: 1 };

    /// Keeps this shard's cells (modulo split over the expansion order).
    #[must_use]
    pub fn select<T>(&self, cells: Vec<T>) -> Vec<T> {
        cells
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % self.count == self.index)
            .map(|(_, cell)| cell)
            .collect()
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl std::str::FromStr for Shard {
    type Err = String;

    /// Parses `"i/n"` with `i < n`, e.g. `"0/4"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let Some((index, count)) = s.split_once('/') else {
            return Err(format!("shard {s:?} is not i/n (e.g. 0/4)"));
        };
        let index: usize = index
            .parse()
            .map_err(|e| format!("bad shard index in {s:?}: {e}"))?;
        let count: usize = count
            .parse()
            .map_err(|e| format!("bad shard count in {s:?}: {e}"))?;
        if count == 0 {
            return Err("shard count must be positive".into());
        }
        if index >= count {
            return Err(format!("shard index {index} must be < count {count}"));
        }
        Ok(Shard { index, count })
    }
}

/// Merges sweep result documents produced by sharded runs: validates
/// that every input carries the same `schema` string and a `cells`
/// array, concatenates the cells in input order, and recomputes
/// `reduction_vs_baseline` across the merged set — sharding splits a
/// cell from its O0 baseline, so per-shard files carry `null` there
/// until the shards are recombined.
///
/// # Errors
///
/// Returns a description of the first malformed or mismatched input
/// (`label` names the offending document in the message).
pub fn merge_sweep_json(docs: &[(String, Json)]) -> Result<Json, String> {
    let mut schema: Option<&str> = None;
    let mut cells = Vec::new();
    for (label, doc) in docs {
        let got = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{label}: missing \"schema\" string"))?;
        match schema {
            None => schema = Some(got),
            Some(want) if want == got => {}
            Some(want) => {
                return Err(format!("{label}: schema {got:?} does not match {want:?}"));
            }
        }
        match doc.get("cells") {
            Some(Json::Arr(items)) => cells.extend(items.iter().cloned()),
            _ => return Err(format!("{label}: missing \"cells\" array")),
        }
    }
    let schema = schema.ok_or_else(|| "no input documents".to_string())?;
    recompute_reductions(&mut cells);
    Ok(Json::obj(vec![
        ("schema", Json::str(schema)),
        ("cells", Json::Arr(cells)),
    ]))
}

/// The non-ordering coordinates identifying a cell's baseline row, as
/// serialized in the result JSON.
const BASELINE_KEY_FIELDS: [&str; 13] = [
    "workload",
    "mesh",
    "format",
    "tiebreak",
    "fx8_global",
    "codec",
    "codec_scope",
    "batch",
    "engine",
    "ber",
    "edc",
    "resync",
    "fault_mode",
];

fn baseline_key(cell: &Json) -> String {
    let mut key = String::new();
    for field in BASELINE_KEY_FIELDS {
        // v1 files predate the codec axis; treat the field as absent
        // uniformly so their keys still line up.
        let value = cell
            .get(field)
            .map_or_else(String::new, Json::to_string_compact);
        key.push_str(&value);
        key.push('\u{1f}');
    }
    key
}

/// Recomputes every cell's `reduction_vs_baseline` against the O0 cell
/// with the same coordinates anywhere in `cells` (the merged-document
/// equivalent of [`baseline_of`]). Cells without an `ordering`/
/// `transitions` field are left untouched.
fn recompute_reductions(cells: &mut [Json]) {
    let mut baselines: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    for cell in cells.iter() {
        if cell.get("ordering").and_then(Json::as_str) == Some(OrderingMethod::Baseline.label()) {
            if let Some(&Json::U64(t)) = cell.get("transitions") {
                if t > 0 {
                    baselines.insert(baseline_key(cell), t);
                }
            }
        }
    }
    for cell in cells.iter_mut() {
        let Some(&Json::U64(t)) = cell.get("transitions") else {
            continue;
        };
        if cell.get("ordering").and_then(Json::as_str).is_none() {
            continue;
        }
        let reduction = baselines
            .get(&baseline_key(cell))
            .map(|&base| 1.0 - t as f64 / base as f64);
        if let Json::Obj(fields) = cell {
            if let Some((_, slot)) = fields
                .iter_mut()
                .find(|(k, _)| k == "reduction_vs_baseline")
            {
                *slot = reduction.map_or(Json::Null, Json::F64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_dnn::layer::{ActKind, Activation, Conv2d, Flatten, Linear, MaxPool2d};
    use btr_dnn::model::{Layer, Sequential};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny_workload() -> Workload {
        let mut rng = StdRng::seed_from_u64(1);
        let model = Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, &mut rng)),
            Layer::Activation(Activation::new(ActKind::ReLU)),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(2 * 4 * 4, 4, &mut rng)),
        ]);
        // A pool of distinct inputs sized for the largest batch a test
        // uses: batched cells must never replay an input.
        let inputs: Vec<Tensor> = (0..4)
            .map(|_| {
                Tensor::from_vec(
                    &[1, 8, 8],
                    (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                )
                .unwrap()
            })
            .collect();
        Workload {
            name: "tiny".into(),
            ops: model.inference_ops(),
            inputs,
        }
    }

    #[test]
    fn mesh_spec_parses_and_prints() {
        let m: MeshSpec = "8x8x4".parse().unwrap();
        assert_eq!(
            m,
            MeshSpec {
                width: 8,
                height: 8,
                mc_count: 4
            }
        );
        assert_eq!(m.label(), "8x8 MC4");
        assert!("8x8".parse::<MeshSpec>().is_err());
        assert!("axbxc".parse::<MeshSpec>().is_err());
    }

    #[test]
    fn grid_expansion_counts() {
        let cells = expand_grid(
            2,
            &MeshSpec::PAPER,
            &[DataFormat::Float32, DataFormat::Fixed8],
            &OrderingMethod::ALL,
            &[TieBreak::Stable],
            &[false],
            &CodecKind::ALL,
            &[CodecScope::PerPacket],
            &[1],
            &[EngineMode::Cycle],
            &[BitErrorRate::default()],
            &[EdcKind::None],
            &[ResyncPolicy::ReseedOnRetry],
            &[FaultMode::PerFlit],
        );
        assert_eq!(cells.len(), 2 * 3 * 2 * 3 * 3);
    }

    #[test]
    fn shards_partition_the_grid() {
        let cells = expand_grid(
            1,
            &MeshSpec::PAPER,
            &[DataFormat::Fixed8],
            &OrderingMethod::ALL,
            &[TieBreak::Stable],
            &[false],
            &CodecKind::ALL,
            &[CodecScope::PerPacket],
            &[1],
            &[EngineMode::Cycle],
            &[BitErrorRate::default()],
            &[EdcKind::None],
            &[ResyncPolicy::ReseedOnRetry],
            &[FaultMode::PerFlit],
        );
        let shards: Vec<Vec<SweepCell>> = (0..4)
            .map(|i| Shard { index: i, count: 4 }.select(cells.clone()))
            .collect();
        // Every cell lands in exactly one shard, order preserved.
        let total: usize = shards.iter().map(Vec::len).sum();
        assert_eq!(total, cells.len());
        let mut merged: Vec<SweepCell> = shards.into_iter().flatten().collect();
        merged.sort_by_key(|c| cells.iter().position(|x| x == c).unwrap());
        assert_eq!(merged, cells);
        assert_eq!(Shard::WHOLE.select(cells.clone()), cells);
    }

    #[test]
    fn shard_parses_and_rejects() {
        assert_eq!("0/4".parse::<Shard>(), Ok(Shard { index: 0, count: 4 }));
        assert_eq!("3/4".parse::<Shard>().unwrap().to_string(), "3/4");
        assert!("4/4".parse::<Shard>().is_err());
        assert!("1/0".parse::<Shard>().is_err());
        assert!("1".parse::<Shard>().is_err());
        assert!("a/b".parse::<Shard>().is_err());
    }

    #[test]
    fn merge_concatenates_and_validates() {
        let doc = |n: u64| {
            Json::obj(vec![
                ("schema", Json::str(SWEEP_SCHEMA)),
                ("cells", Json::Arr(vec![Json::U64(n)])),
            ])
        };
        let merged =
            merge_sweep_json(&[("a.json".into(), doc(1)), ("b.json".into(), doc(2))]).unwrap();
        assert_eq!(
            merged.get("cells"),
            Some(&Json::Arr(vec![Json::U64(1), Json::U64(2)]))
        );
        assert_eq!(
            merged.get("schema").and_then(Json::as_str),
            Some(SWEEP_SCHEMA)
        );
        // Schema mismatch and malformed docs are rejected with the label.
        let old = Json::obj(vec![
            // btr-lint: allow(schema-coherence, reason = "deliberately stale version string exercising the merge schema-mismatch rejection")
            ("schema", Json::str("btr-sweep-v1")),
            ("cells", Json::Arr(vec![])),
        ]);
        let err =
            merge_sweep_json(&[("a.json".into(), doc(1)), ("old.json".into(), old)]).unwrap_err();
        assert!(err.contains("old.json"), "{err}");
        assert!(merge_sweep_json(&[("x".into(), Json::U64(3))]).is_err());
        assert!(merge_sweep_json(&[]).is_err());
    }

    #[test]
    fn merge_recomputes_cross_shard_reductions() {
        // Sharding splits a cell from its O0 baseline: each per-shard
        // file carries `reduction_vs_baseline: null`, and the merge must
        // recompute it over the recombined set.
        let cell = |ordering: &str, codec: &str, transitions: u64, reduction: Json| {
            Json::obj(vec![
                ("workload", Json::str("LeNet")),
                ("mesh", Json::str("4x4 MC2")),
                ("format", Json::str("fixed-8")),
                ("ordering", Json::str(ordering)),
                ("tiebreak", Json::str("stable")),
                ("fx8_global", Json::Bool(false)),
                ("codec", Json::str(codec)),
                ("transitions", Json::U64(transitions)),
                ("reduction_vs_baseline", reduction),
                ("error", Json::Null),
            ])
        };
        let shard = |cells: Vec<Json>| {
            Json::obj(vec![
                ("schema", Json::str(SWEEP_SCHEMA)),
                ("cells", Json::Arr(cells)),
            ])
        };
        let merged = merge_sweep_json(&[
            (
                "part0.json".into(),
                shard(vec![
                    cell("O0", "none", 1000, Json::F64(0.0)),
                    cell("O2", "delta-xor", 600, Json::Null),
                ]),
            ),
            (
                "part1.json".into(),
                shard(vec![
                    cell("O0", "delta-xor", 800, Json::Null),
                    cell("O2", "none", 750, Json::Null),
                ]),
            ),
        ])
        .unwrap();
        let Some(Json::Arr(cells)) = merged.get("cells") else {
            panic!("merged cells missing");
        };
        let reduction = |i: usize| cells[i].get("reduction_vs_baseline").unwrap().clone();
        assert_eq!(reduction(0), Json::F64(0.0)); // O0/none vs itself
        assert_eq!(reduction(1), Json::F64(1.0 - 600.0 / 800.0)); // O2 vs O0, same codec
        assert_eq!(reduction(2), Json::F64(0.0)); // O0/delta-xor vs itself
        assert_eq!(reduction(3), Json::F64(0.25)); // O2/none vs O0/none
    }

    #[test]
    fn sweep_runs_and_serializes() {
        let workloads = vec![tiny_workload()];
        let cells = expand_grid(
            1,
            &[MeshSpec {
                width: 4,
                height: 4,
                mc_count: 2,
            }],
            &[DataFormat::Fixed8],
            &OrderingMethod::ALL,
            &[TieBreak::Stable],
            &[false],
            &[CodecKind::Unencoded],
            &[CodecScope::PerPacket],
            &[1],
            &[EngineMode::Cycle],
            &[BitErrorRate::default()],
            &[EdcKind::None],
            &[ResyncPolicy::ReseedOnRetry],
            &[FaultMode::PerFlit],
        );
        let outcomes = run_cells(&workloads, cells.clone(), false);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.error.is_none()));
        assert!(outcomes.iter().all(|o| o.transitions > 0 && o.cycles > 0));
        // Ordering reduces transitions relative to the baseline cell.
        let base = baseline_of(&outcomes, &cells[1]).unwrap();
        assert!(outcomes[2].transitions < base.transitions);
        // Parallel and sequential execution agree bit-for-bit.
        let serial = run_cells(&workloads, cells, true);
        for (a, b) in outcomes.iter().zip(serial.iter()) {
            assert_eq!(a.transitions, b.transitions);
            assert_eq!(a.cycles, b.cycles);
        }
        let json = outcomes_json(&workloads, &outcomes);
        let text = json.to_string_compact();
        assert!(text.contains("\"schema\":\"btr-sweep-v8\""));
        assert!(text.contains("\"codec_scope\":\"per-packet\""));
        assert!(text.contains("\"link_energy_mj\""));
        assert!(text.contains("\"batch\":1"));
        assert!(text.contains("\"distinct_inputs\":1"));
        assert!(text.contains("\"ordering\":\"O2\""));
        assert!(text.contains("\"codec\":\"none\""));
        assert!(text.contains("\"codec_overhead_bits\":0"));
        assert!(text.contains("\"reduction_vs_baseline\""));
        // The writer output parses back (what sweep-merge consumes).
        assert_eq!(
            Json::parse(&text)
                .unwrap()
                .get("schema")
                .and_then(Json::as_str),
            Some(SWEEP_SCHEMA)
        );
    }

    #[test]
    fn codec_axis_runs_and_normalizes_within_codec() {
        let workloads = vec![tiny_workload()];
        let cells = expand_grid(
            1,
            &[MeshSpec {
                width: 4,
                height: 4,
                mc_count: 2,
            }],
            &[DataFormat::Fixed8],
            &[OrderingMethod::Baseline, OrderingMethod::Separated],
            &[TieBreak::Stable],
            &[false],
            &CodecKind::ALL,
            &[CodecScope::PerPacket],
            &[1],
            &[EngineMode::Cycle],
            &[BitErrorRate::default()],
            &[EdcKind::None],
            &[ResyncPolicy::ReseedOnRetry],
            &[FaultMode::PerFlit],
        );
        let outcomes = run_cells(&workloads, cells, true);
        assert_eq!(outcomes.len(), 6);
        assert!(outcomes.iter().all(|o| o.error.is_none()));
        for o in &outcomes {
            // Each cell normalizes against the same-codec O0 cell.
            let base = baseline_of(&outcomes, &o.cell).unwrap();
            assert_eq!(base.cell.codec, o.cell.codec);
            if o.cell.ordering == OrderingMethod::Separated {
                assert!(
                    o.transitions < base.transitions,
                    "ordering should still win under {}: {} vs {}",
                    o.cell.codec,
                    o.transitions,
                    base.transitions
                );
            }
            let expect_overhead = o.cell.codec == CodecKind::BusInvert;
            assert_eq!(
                o.codec_overhead_bits > 0,
                expect_overhead,
                "{}",
                o.cell.codec
            );
        }
    }

    #[test]
    fn scope_axis_runs_and_diverges_only_on_stateful_codecs() {
        let workloads = vec![tiny_workload()];
        let cells = expand_grid(
            1,
            &[MeshSpec {
                width: 4,
                height: 4,
                mc_count: 2,
            }],
            &[DataFormat::Fixed8],
            &[OrderingMethod::Baseline, OrderingMethod::Separated],
            &[TieBreak::Stable],
            &[false],
            &CodecKind::ALL,
            &CodecScope::ALL,
            &[1],
            &[EngineMode::Cycle],
            &[BitErrorRate::default()],
            &[EdcKind::None],
            &[ResyncPolicy::ReseedOnRetry],
            &[FaultMode::PerFlit],
        );
        let outcomes = run_cells(&workloads, cells, true);
        assert_eq!(outcomes.len(), 12);
        assert!(outcomes.iter().all(|o| o.error.is_none()));
        let find = |ordering, codec, scope| {
            outcomes
                .iter()
                .find(|o| {
                    o.cell.ordering == ordering && o.cell.codec == codec && o.cell.scope == scope
                })
                .expect("cell present")
        };
        for ordering in [OrderingMethod::Baseline, OrderingMethod::Separated] {
            for codec in CodecKind::ALL {
                let pp = find(ordering, codec, CodecScope::PerPacket);
                let pl = find(ordering, codec, CodecScope::PerLink);
                // Packet shapes and side channels are scope-independent.
                assert_eq!(pp.request_packets, pl.request_packets);
                assert_eq!(pp.cycles, pl.cycles);
                assert_eq!(pp.codec_overhead_bits, pl.codec_overhead_bits);
                match codec {
                    // A delta-XOR boundary flit XORs against the
                    // previous packet's last image, so any non-zero
                    // carried state changes the wire.
                    CodecKind::DeltaXor => assert_ne!(
                        pp.transitions, pl.transitions,
                        "{ordering}: delta-XOR scopes must diverge on the wire"
                    ),
                    CodecKind::Unencoded => assert_eq!(
                        pp.transitions, pl.transitions,
                        "{ordering}: the identity codec has no state to scope"
                    ),
                    // Bus-invert diverges only when a boundary flit
                    // crosses the inversion threshold — data-dependent,
                    // so no structural guarantee on this tiny workload.
                    CodecKind::BusInvert => {}
                }
                // The energy report follows the transitions the simulated
                // scope actually recorded.
                for o in [pp, pl] {
                    let expect =
                        btr_hw::link_energy::LinkPowerModel::paper().energy_mj(o.transitions);
                    assert!((o.link_energy_mj - expect).abs() < 1e-12);
                    assert!(o.link_energy_mj > 0.0);
                }
            }
        }
        // Reductions normalize against the same-scope (and same-codec)
        // O0 cell.
        for o in &outcomes {
            let base = baseline_of(&outcomes, &o.cell).unwrap();
            assert_eq!(base.cell.scope, o.cell.scope);
            assert_eq!(base.cell.codec, o.cell.codec);
        }
    }

    #[test]
    fn batched_cells_scale_traffic_and_match_sync_driver() {
        let workloads = vec![tiny_workload()];
        let cell = |batch: usize| SweepCell {
            workload: 0,
            mesh: MeshSpec {
                width: 4,
                height: 4,
                mc_count: 2,
            },
            format: DataFormat::Fixed8,
            ordering: OrderingMethod::Separated,
            tiebreak: TieBreak::Stable,
            fx8_global: false,
            codec: CodecKind::Unencoded,
            scope: CodecScope::PerPacket,
            batch,
            engine: EngineMode::Cycle,
            ber: BitErrorRate::default(),
            edc: EdcKind::None,
            resync: ResyncPolicy::ReseedOnRetry,
            fault_mode: FaultMode::PerFlit,
            fault_armed: false,
        };
        let b1 = run_cell(&workloads, cell(1));
        let b4 = run_cell(&workloads, cell(4));
        assert!(b1.error.is_none() && b4.error.is_none());
        // One traffic phase per layer carries the whole batch.
        assert_eq!(b4.request_packets, 4 * b1.request_packets);
        assert!(b4.cycles > b1.cycles);
        assert!(b4.transitions > b1.transitions);
        // Amortized layer boundaries: a batched phase needs fewer cycles
        // than the same inputs run back-to-back.
        assert!(b4.cycles < 4 * b1.cycles);
        // The sync driver produces bit-identical metrics.
        let sync = run_cell_with(&workloads, cell(4), DriverMode::Synchronous);
        assert_eq!(sync.transitions, b4.transitions);
        assert_eq!(sync.cycles, b4.cycles);
        assert_eq!(sync.index_overhead_bits, b4.index_overhead_bits);
    }

    #[test]
    fn oversized_batch_errors_instead_of_cycling() {
        // A batch larger than the input pool used to silently replay
        // inputs; now the cell fails loudly.
        let workloads = vec![tiny_workload()];
        let cell = SweepCell {
            workload: 0,
            mesh: MeshSpec {
                width: 4,
                height: 4,
                mc_count: 2,
            },
            format: DataFormat::Fixed8,
            ordering: OrderingMethod::Baseline,
            tiebreak: TieBreak::Stable,
            fx8_global: false,
            codec: CodecKind::Unencoded,
            scope: CodecScope::PerPacket,
            batch: 5,
            engine: EngineMode::Cycle,
            ber: BitErrorRate::default(),
            edc: EdcKind::None,
            resync: ResyncPolicy::ReseedOnRetry,
            fault_mode: FaultMode::PerFlit,
            fault_armed: false,
        };
        let outcome = run_cell(&workloads, cell);
        let err = outcome.error.expect("oversized batch must fail");
        assert!(err.contains("4 distinct inputs"), "{err}");
        assert!(err.contains("batch 5"), "{err}");
        assert_eq!(outcome.distinct_inputs, 0);
    }

    #[test]
    fn baseline_index_matches_linear_scan() {
        let workloads = vec![tiny_workload()];
        let cells = expand_grid(
            1,
            &[MeshSpec {
                width: 4,
                height: 4,
                mc_count: 2,
            }],
            &[DataFormat::Fixed8],
            &[OrderingMethod::Baseline, OrderingMethod::Separated],
            &[TieBreak::Stable],
            &[false],
            &CodecKind::ALL,
            &[CodecScope::PerPacket],
            &[1],
            &[EngineMode::Cycle],
            &[BitErrorRate::default()],
            &[EdcKind::None],
            &[ResyncPolicy::ReseedOnRetry],
            &[FaultMode::PerFlit],
        );
        let outcomes = run_cells(&workloads, cells, true);
        let index = baseline_index(&outcomes);
        assert_eq!(index.len(), CodecKind::ALL.len());
        for o in &outcomes {
            let via_index = reduction_vs_baseline(&index, o);
            let via_scan = baseline_of(&outcomes, &o.cell)
                .filter(|b| b.transitions > 0)
                .map(|b| 1.0 - o.transitions as f64 / b.transitions as f64);
            assert_eq!(via_index, via_scan, "{:?}", o.cell);
        }
    }

    #[test]
    fn engine_axis_runs_and_auto_matches_cycle() {
        let workloads = vec![tiny_workload()];
        let cells = expand_grid(
            1,
            &[MeshSpec {
                width: 4,
                height: 4,
                mc_count: 2,
            }],
            &[DataFormat::Fixed8],
            &[OrderingMethod::Separated],
            &[TieBreak::Stable],
            &[false],
            &[CodecKind::DeltaXor],
            &[CodecScope::PerLink],
            &[1],
            &EngineMode::ALL,
            &[BitErrorRate::default()],
            &[EdcKind::None],
            &[ResyncPolicy::ReseedOnRetry],
            &[FaultMode::PerFlit],
        );
        let outcomes = run_cells(&workloads, cells, true);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.error.is_none()));
        let find = |engine| {
            outcomes
                .iter()
                .find(|o| o.cell.engine == engine)
                .expect("cell present")
        };
        let (cycle, analytic, auto) = (
            find(EngineMode::Cycle),
            find(EngineMode::Analytic),
            find(EngineMode::Auto),
        );
        // Auto is bit-identical to the cycle engine on the wire metrics.
        assert_eq!(auto.transitions, cycle.transitions);
        assert_eq!(auto.flit_hops, cycle.flit_hops);
        assert_eq!(auto.index_overhead_bits, cycle.index_overhead_bits);
        assert_eq!(auto.codec_overhead_bits, cycle.codec_overhead_bits);
        assert_eq!(cycle.analytic_phase_fraction, 0.0);
        // The forced replay evaluates every layer analytically; traffic
        // volume is engine-independent.
        assert_eq!(analytic.analytic_phase_fraction, 1.0);
        assert_eq!(analytic.request_packets, cycle.request_packets);
        assert_eq!(analytic.flit_hops, cycle.flit_hops);
        assert!(analytic.transitions > 0);
        // The JSON carries the new axis and metric.
        let text = outcomes_json(&workloads, &outcomes).to_string_compact();
        assert!(text.contains("\"engine\":\"cycle\""));
        assert!(text.contains("\"engine\":\"analytic\""));
        assert!(text.contains("\"engine\":\"auto\""));
        assert!(text.contains("\"analytic_phase_fraction\":1"));
    }

    #[test]
    fn fault_axis_recovers_and_zero_ber_matches_plain() {
        let workloads = vec![tiny_workload()];
        let cell = |ber: f64, edc: EdcKind, fault_armed: bool| SweepCell {
            workload: 0,
            mesh: MeshSpec {
                width: 4,
                height: 4,
                mc_count: 2,
            },
            format: DataFormat::Fixed8,
            ordering: OrderingMethod::Separated,
            tiebreak: TieBreak::Stable,
            fx8_global: false,
            codec: CodecKind::Unencoded,
            scope: CodecScope::PerPacket,
            batch: 1,
            engine: EngineMode::Cycle,
            ber: BitErrorRate::from_f64(ber),
            edc,
            resync: ResyncPolicy::ReseedOnRetry,
            fault_mode: FaultMode::PerFlit,
            fault_armed,
        };

        // Arming the receive-side fault protocol at BER zero must not
        // change a single recorded metric.
        let plain = run_cell(&workloads, cell(0.0, EdcKind::None, false));
        let armed = run_cell(&workloads, cell(0.0, EdcKind::None, true));
        assert!(plain.error.is_none() && armed.error.is_none());
        assert_eq!(armed.transitions, plain.transitions);
        assert_eq!(armed.cycles, plain.cycles);
        assert_eq!(armed.flit_hops, plain.flit_hops);
        assert_eq!(armed.edc_overhead_bits, 0);
        assert_eq!(armed.retransmitted_flits, 0);
        assert_eq!(armed.delivered_ok_fraction, 1.0);

        // A CRC-8 frame on perfect wires pays check-field bits but
        // never retries.
        let checked = run_cell(&workloads, cell(0.0, EdcKind::Crc8, false));
        assert!(checked.error.is_none());
        assert!(checked.edc_overhead_bits > 0);
        assert_eq!(checked.retransmitted_flits, 0);
        assert_eq!(checked.delivered_ok_fraction, 1.0);

        // Real errors force retransmissions; the cell still completes
        // and reports the recovery traffic.
        let faulty = run_cell(&workloads, cell(1e-4, EdcKind::Crc8, false));
        assert!(faulty.error.is_none(), "{:?}", faulty.error);
        assert!(faulty.retransmitted_flits > 0);
        assert!(faulty.retried_packets > 0);
        assert!(faulty.delivered_ok_fraction < 1.0);
        assert!(faulty.delivered_ok_fraction > 0.0);
        // Retry traffic lands in the same transition counters, so the
        // energy figure is retry-inclusive by construction.
        assert!(faulty.transitions > checked.transitions);

        // The v7 schema carries the fault axes and metrics.
        let outcomes = vec![plain, checked, faulty];
        let text = outcomes_json(&workloads, &outcomes).to_string_compact();
        assert!(text.contains("\"schema\":\"btr-sweep-v8\""), "{text}");
        // The u64 wire threshold round-trips to the nearest f64, so
        // match the stable prefix rather than the literal 1e-4.
        assert!(text.contains("\"ber\":0.00009999"), "{text}");
        assert!(text.contains("\"edc\":\"crc8\""), "{text}");
        assert!(text.contains("\"resync\":\"reseed\""), "{text}");
        assert!(text.contains("\"edc_overhead_bits\""), "{text}");
        assert!(text.contains("\"retransmitted_flits\""), "{text}");
        assert!(text.contains("\"delivered_ok_fraction\":1"), "{text}");
    }

    #[test]
    fn failed_cells_report_errors() {
        let workloads = vec![tiny_workload()];
        // fixed-16 is not wired into the accelerator -> cell error.
        let cells = vec![SweepCell {
            workload: 0,
            mesh: MeshSpec {
                width: 4,
                height: 4,
                mc_count: 2,
            },
            format: DataFormat::Fixed16,
            ordering: OrderingMethod::Baseline,
            tiebreak: TieBreak::Stable,
            fx8_global: false,
            codec: CodecKind::Unencoded,
            scope: CodecScope::PerPacket,
            batch: 1,
            engine: EngineMode::Cycle,
            ber: BitErrorRate::default(),
            edc: EdcKind::None,
            resync: ResyncPolicy::ReseedOnRetry,
            fault_mode: FaultMode::PerFlit,
            fault_armed: false,
        }];
        let outcomes = run_cells(&workloads, cells, true);
        assert!(outcomes[0].error.is_some());
        let json = outcomes_json(&workloads, &outcomes);
        assert!(json.to_string_compact().contains("\"error\":\""));
    }
}
