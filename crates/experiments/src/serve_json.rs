//! The `btr-serve-v2` result schema: one JSON document per service run,
//! written by the `btr-serve` binary and consumed alongside the sweep
//! and bench trajectories (see EXPERIMENTS.md).

use crate::json::Json;
use btr_serve::{Histogram, ServeConfig, ServeReport};

/// The serve result schema version.
pub const SERVE_SCHEMA: &str = "btr-serve-v2";

/// Serializes a histogram as summary stats plus its non-empty log2
/// buckets (`[lo, hi, count]` rows, `hi` inclusive).
#[must_use]
pub fn histogram_json(h: &Histogram) -> Json {
    Json::obj(vec![
        ("count", Json::U64(h.count())),
        ("min", Json::U64(h.min())),
        ("max", Json::U64(h.max())),
        ("mean", Json::F64(h.mean())),
        ("p50", Json::U64(h.percentile(0.5))),
        ("p90", Json::U64(h.percentile(0.9))),
        ("p99", Json::U64(h.percentile(0.99))),
        (
            "buckets",
            Json::Arr(
                h.nonzero_buckets()
                    .into_iter()
                    .map(|(lo, hi, n)| Json::Arr(vec![Json::U64(lo), Json::U64(hi), Json::U64(n)]))
                    .collect(),
            ),
        ),
    ])
}

/// Serializes one service run to the `btr-serve-v2` schema.
#[must_use]
pub fn report_json(workload: &str, config: &ServeConfig, report: &ServeReport) -> Json {
    let per_session: Vec<Json> = report
        .per_session
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("session", Json::U64(s.session as u64)),
                ("dispatches", Json::U64(s.dispatches)),
                ("inferences", Json::U64(s.inferences)),
                ("transitions", Json::U64(s.transitions)),
                ("cycles", Json::U64(s.cycles)),
                ("index_overhead_bits", Json::U64(s.index_overhead_bits)),
                ("codec_overhead_bits", Json::U64(s.codec_overhead_bits)),
                ("edc_overhead_bits", Json::U64(s.edc_overhead_bits)),
                ("retransmitted_flits", Json::U64(s.retransmitted_flits)),
                ("retried_packets", Json::U64(s.retried_packets)),
                ("failed", Json::U64(s.failed)),
                ("busy_ms", Json::U64(s.busy_ms)),
                ("batch_fill", histogram_json(&s.batch_fill)),
                ("retries", histogram_json(&s.retries)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::str(SERVE_SCHEMA)),
        ("workload", Json::str(workload)),
        (
            "mesh",
            Json::str(format!(
                "{}x{} MC{}",
                config.accel.noc.width,
                config.accel.noc.height,
                config.accel.noc.mc_nodes.len()
            )),
        ),
        ("format", Json::str(config.accel.format.name())),
        ("ordering", Json::str(config.accel.ordering.label())),
        ("codec", Json::str(config.accel.codec.label())),
        ("codec_scope", Json::str(config.accel.codec_scope.label())),
        ("driver", Json::str(config.accel.driver.label())),
        ("engine", Json::str(config.accel.engine.label())),
        ("edc", Json::str(config.accel.edc.label())),
        (
            "ber",
            Json::F64(
                config
                    .accel
                    .noc
                    .fault
                    .as_ref()
                    .map_or(0.0, |f| f.errors.ber.as_f64()),
            ),
        ),
        (
            "resync",
            Json::str(
                config
                    .accel
                    .noc
                    .fault
                    .as_ref()
                    .map_or("none", |f| f.resync.label()),
            ),
        ),
        ("sessions", Json::U64(config.sessions as u64)),
        ("batch_window", Json::U64(config.accel.batch_size as u64)),
        ("queue_capacity", Json::U64(config.queue_capacity as u64)),
        ("flush_polls", Json::U64(u64::from(config.flush_polls))),
        ("completed", Json::U64(report.completed)),
        ("failed", Json::U64(report.failed)),
        ("wall_ms", Json::U64(report.wall_ms)),
        ("inferences_per_sec", Json::F64(report.inferences_per_sec)),
        ("transitions", Json::U64(report.transitions)),
        ("index_overhead_bits", Json::U64(report.index_overhead_bits)),
        ("codec_overhead_bits", Json::U64(report.codec_overhead_bits)),
        ("edc_overhead_bits", Json::U64(report.edc_overhead_bits)),
        ("retransmitted_flits", Json::U64(report.retransmitted_flits)),
        ("retried_packets", Json::U64(report.retried_packets)),
        ("queue_depth", histogram_json(&report.queue_depth)),
        ("latency_us", histogram_json(&report.latency_us)),
        ("batch_fill", histogram_json(&report.batch_fill)),
        ("retries", histogram_json(&report.retries)),
        ("per_session", Json::Arr(per_session)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_serializes_summary_and_buckets() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(100);
        let json = histogram_json(&h);
        let text = json.to_string_compact();
        assert!(text.contains("\"count\":2"), "{text}");
        assert!(text.contains("\"max\":100"), "{text}");
        assert!(text.contains("\"buckets\":[[2,3,1],[64,127,1]]"), "{text}");
        // The writer output parses back.
        assert!(Json::parse(&text).is_ok());
    }
}
