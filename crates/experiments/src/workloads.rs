//! Deterministic weight sources and packet pools.

use btr_bits::word::{F32Word, Fx8Word};
use btr_dnn::data::SyntheticDigits;
use btr_dnn::models::lenet;
use btr_dnn::quant::{kernel_packets, QuantizedTensor};
use btr_dnn::train::{train, TrainConfig};
use btr_dnn::{InferenceOp, Sequential};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// Which weights an experiment runs on (Table I: "random weights and
/// trained weights").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightSource {
    /// Randomly initialized (Kaiming-uniform) weights.
    Random,
    /// Weights trained to convergence on the synthetic digit dataset.
    Trained,
}

impl std::str::FromStr for WeightSource {
    type Err = String;

    /// Parses `"random"` / `"trained"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "random" => Ok(WeightSource::Random),
            "trained" => Ok(WeightSource::Trained),
            other => Err(format!(
                "unknown weight source {other:?}; use random|trained"
            )),
        }
    }
}

impl WeightSource {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WeightSource::Random => "random",
            WeightSource::Trained => "trained",
        }
    }
}

/// A randomly initialized LeNet.
#[must_use]
pub fn lenet_random(seed: u64) -> Sequential {
    lenet::build(seed)
}

/// Trains LeNet on the synthetic digit dataset (deterministic per seed),
/// with weight decay so the converged weights concentrate near zero like a
/// fully trained MNIST LeNet.
///
/// Results are cached under `target/btr-cache/` keyed by the training
/// parameters, so separate experiment binaries train at most once.
#[must_use]
pub fn lenet_trained(seed: u64, train_samples: usize, epochs: usize) -> Sequential {
    let cache = std::path::PathBuf::from(format!(
        "target/btr-cache/lenet_s{seed}_n{train_samples}_e{epochs}.bin"
    ));
    let mut model = lenet::build(seed);
    if btr_dnn::checkpoint::load(&mut model, &cache).is_ok() {
        eprintln!("# trained LeNet loaded from {}", cache.display());
        return model;
    }
    let generator = SyntheticDigits::new();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let train_set = generator.dataset(train_samples, &mut rng);
    let eval_set = generator.dataset(200, &mut rng);
    let report = train(
        &mut model,
        &train_set,
        &eval_set,
        &TrainConfig {
            epochs,
            lr: 0.05,
            batch_size: 8,
            lr_decay: 0.8,
            weight_decay: 0.05,
        },
    );
    eprintln!(
        "# trained LeNet: losses {:?}, eval accuracy {:.1}%",
        report.epoch_losses,
        report.eval_accuracy * 100.0
    );
    if let Err(e) = btr_dnn::checkpoint::save(&model, &cache) {
        eprintln!("# warning: could not cache trained model: {e}");
    }
    model
}

/// Process-wide cached trained LeNet (seed 42), shared by binaries/benches
/// that need trained weights without paying for training twice.
#[must_use]
pub fn lenet_trained_cached() -> &'static Sequential {
    static MODEL: OnceLock<Sequential> = OnceLock::new();
    MODEL.get_or_init(|| lenet_trained(42, DEFAULT_TRAIN_SAMPLES, DEFAULT_EPOCHS))
}

/// Default training-set size for the trained-weights configuration.
pub const DEFAULT_TRAIN_SAMPLES: usize = 4_000;
/// Default epoch count for the trained-weights configuration.
pub const DEFAULT_EPOCHS: usize = 10;

/// Builds a LeNet for the given weight source.
#[must_use]
pub fn lenet(source: WeightSource, seed: u64) -> Sequential {
    match source {
        WeightSource::Random => lenet_random(seed),
        WeightSource::Trained => lenet_trained(seed, DEFAULT_TRAIN_SAMPLES, DEFAULT_EPOCHS),
    }
}

/// Float-32 kernel packets (Fig. 2 granularity) from a model's weights.
#[must_use]
pub fn f32_kernel_packets(model: &Sequential, chunk: usize) -> Vec<Vec<F32Word>> {
    kernel_packets(&model.inference_ops(), chunk)
        .into_iter()
        .map(|p| p.into_iter().map(F32Word::new).collect())
        .collect()
}

/// Fixed-8 quantization scheme for the weight streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fx8Scheme {
    /// Symmetric per-tensor max-abs scaling (each layer uses its full
    /// 8-bit range).
    PerTensor,
    /// A global fixed Q0.7 format (`code = round(127·x)`, clamp ±127):
    /// all layers share one scale, so small weights map to small codes
    /// with long sign-extension runs — the interpretation that reproduces
    /// the paper's fixed-8 BT magnitudes (see EXPERIMENTS.md).
    GlobalUnit,
}

impl std::str::FromStr for Fx8Scheme {
    type Err = String;

    /// Parses `"per-tensor"` / `"global"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "per-tensor" => Ok(Fx8Scheme::PerTensor),
            "global" => Ok(Fx8Scheme::GlobalUnit),
            other => Err(format!(
                "unknown fx8 scheme {other:?}; use per-tensor|global"
            )),
        }
    }
}

/// Fixed-8 kernel packets with per-tensor scaling (see
/// [`fx8_kernel_packets_scheme`]).
#[must_use]
pub fn fx8_kernel_packets(model: &Sequential, chunk: usize) -> Vec<Vec<Fx8Word>> {
    fx8_kernel_packets_scheme(model, chunk, Fx8Scheme::PerTensor)
}

/// Fixed-8 kernel packets: each conv/linear weight tensor is quantized
/// per the scheme, then chopped into kernel packets.
#[must_use]
pub fn fx8_kernel_packets_scheme(
    model: &Sequential,
    chunk: usize,
    scheme: Fx8Scheme,
) -> Vec<Vec<Fx8Word>> {
    let ops = model.inference_ops();
    let mut packets = Vec::new();
    for op in &ops {
        let weight = match op {
            InferenceOp::Conv { weight, .. } | InferenceOp::Linear { weight, .. } => weight,
            _ => continue,
        };
        let q = match scheme {
            Fx8Scheme::PerTensor => QuantizedTensor::quantize(weight, 8).expect("finite weights"),
            Fx8Scheme::GlobalUnit => {
                QuantizedTensor::quantize_with_scale(weight, 8, 1.0).expect("valid scale")
            }
        };
        match op {
            InferenceOp::Conv { weight, .. } => {
                let (oc, ic, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
                let ksz = k * weight.shape()[3];
                for o in 0..oc {
                    for i in 0..ic {
                        let start = (o * ic + i) * ksz;
                        packets.push(q.codes[start..start + ksz].to_vec());
                    }
                }
            }
            InferenceOp::Linear { weight, .. } => {
                let in_f = weight.shape()[1];
                for row in q.codes.chunks(in_f) {
                    for c in row.chunks(chunk) {
                        packets.push(c.to_vec());
                    }
                }
            }
            _ => unreachable!("filtered above"),
        }
    }
    packets
}

/// Draws `count` packets uniformly (with replacement) from a pool — the
/// "10,000 packets" stream of Sec. V-A.
#[must_use]
pub fn sample_packets<W: Clone>(pool: &[Vec<W>], count: usize, rng: &mut StdRng) -> Vec<Vec<W>> {
    assert!(!pool.is_empty(), "packet pool is empty");
    (0..count)
        .map(|_| pool[rng.gen_range(0..pool.len())].clone())
        .collect()
}

/// Flattens packets into a word stream (for bit-position statistics).
#[must_use]
pub fn flatten_packets<W: Copy>(packets: &[Vec<W>]) -> Vec<W> {
    packets.iter().flatten().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_packets_have_fig2_shape() {
        let model = lenet_random(0);
        let f32p = f32_kernel_packets(&model, 25);
        let fx8p = fx8_kernel_packets(&model, 25);
        assert_eq!(f32p.len(), fx8p.len());
        // conv kernels are 25 values each.
        assert_eq!(f32p[0].len(), 25);
        assert_eq!(fx8p[0].len(), 25);
    }

    #[test]
    fn sampling_is_deterministic() {
        let model = lenet_random(1);
        let pool = f32_kernel_packets(&model, 25);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let pa = sample_packets(&pool, 50, &mut a);
        let pb = sample_packets(&pool, 50, &mut b);
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(pb.iter()) {
            assert_eq!(x.len(), y.len());
        }
    }

    #[test]
    fn weight_source_parsing() {
        assert_eq!("random".parse(), Ok(WeightSource::Random));
        assert_eq!("trained".parse(), Ok(WeightSource::Trained));
        assert!("frozen".parse::<WeightSource>().is_err());
        assert!("half".parse::<Fx8Scheme>().is_err());
        assert_eq!("global".parse(), Ok(Fx8Scheme::GlobalUnit));
        assert_eq!(WeightSource::Trained.name(), "trained");
    }
}
