//! Shared helpers for the experiment binaries and benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). This library holds the common pieces:
//! deterministic weight sources (random-initialized and trained LeNet),
//! packet pools for the "without NoC" experiments, and a tiny CLI-argument
//! parser so the binaries stay dependency-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod workloads;
