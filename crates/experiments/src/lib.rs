//! Shared helpers for the experiment binaries and benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see EXPERIMENTS.md for the index). This library holds the common
//! pieces: deterministic weight sources (random-initialized and trained
//! LeNet), packet pools for the "without NoC" experiments, a tiny
//! CLI-argument parser so the binaries stay dependency-light, the
//! parallel sweep runner, and the JSON writer behind the machine-readable
//! result files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod json;
pub mod sweep;
pub mod workloads;
