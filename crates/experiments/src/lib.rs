//! Shared helpers for the experiment binaries and benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see EXPERIMENTS.md for the index). This library holds the common
//! pieces: deterministic weight sources (random-initialized and trained
//! LeNet), packet pools for the "without NoC" experiments, a tiny
//! CLI-argument parser so the binaries stay dependency-light, the
//! parallel sweep runner, the JSON writer behind the machine-readable
//! result files, and the `btr-serve-v2` schema for the multi-session
//! service front-end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod json;
pub mod serve_json;
pub mod sweep;
pub mod workloads;
