//! A dependency-free JSON writer/parser for machine-readable experiment
//! output.
//!
//! The sweep runner ([`crate::sweep`], schema [`crate::sweep::SWEEP_SCHEMA`]),
//! the serve reporter ([`crate::serve_json::SERVE_SCHEMA`]), and the
//! vendored bench harness ([`BENCH_SCHEMA`]) all emit this format, so
//! downstream tooling can diff experiment results and bench trajectories
//! across commits without parsing human-oriented tables. [`Json::parse`]
//! reads the files back for the sweep-merge mode.

use std::fmt::Write as _;

/// Schema tag of the bench-report documents written by the vendored
/// criterion stand-in and asserted by every bench smoke. The vendored
/// harness cannot depend on this crate, so it repeats the literal;
/// `btr-lint`'s schema-coherence rule keeps the copies identical.
pub const BENCH_SCHEMA: &str = "btr-bench-v1";

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (serialized exactly).
    U64(u64),
    /// A signed integer (serialized exactly).
    I64(i64),
    /// A float (serialized via Rust's shortest-roundtrip formatting;
    /// non-finite values become `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serializes to a compact string.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parses a JSON document (the subset this writer emits: no leading
    /// `+`, no comments), for tools that consume result files — e.g. the
    /// sweep-merge mode.
    ///
    /// # Errors
    ///
    /// Returns a one-line description with the byte offset of the first
    /// syntax error, or of trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` for non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&what) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", what as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xc0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a value to `path` (with a trailing newline), creating parent
/// directories as needed.
///
/// # Errors
///
/// Returns any I/O error from directory creation or the write.
pub fn write_file(path: &std::path::Path, value: &Json) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, value.to_string_compact() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_structures() {
        let v = Json::obj(vec![
            ("schema", Json::str("example-v1")),
            ("count", Json::U64(2)),
            ("rate", Json::F64(0.5)),
            ("neg", Json::I64(-3)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::U64(1), Json::str("a\"b\n")])),
        ]);
        assert_eq!(
            v.to_string_compact(),
            "{\"schema\":\"example-v1\",\"count\":2,\"rate\":0.5,\"neg\":-3,\"ok\":true,\"none\":null,\"items\":[1,\"a\\\"b\\n\"]}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::obj(vec![
            ("schema", Json::str("example-v2")),
            ("count", Json::U64(2)),
            ("rate", Json::F64(0.5)),
            ("neg", Json::I64(-3)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::U64(1), Json::str("a\"b\nπ")])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj(vec![])),
        ]);
        let text = v.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Whitespace tolerated.
        assert_eq!(
            Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap(),
            Json::obj(vec![("a", Json::Arr(vec![Json::U64(1), Json::U64(2)]))])
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 trailing").is_err());
    }

    #[test]
    fn get_and_as_str_navigate_objects() {
        let v = Json::obj(vec![("schema", Json::str("s")), ("n", Json::U64(1))]);
        assert_eq!(v.get("schema").and_then(Json::as_str), Some("s"));
        assert_eq!(v.get("n"), Some(&Json::U64(1)));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::U64(1).get("x"), None);
        assert_eq!(Json::U64(1).as_str(), None);
    }

    #[test]
    fn writes_files_with_parents() {
        let dir = std::env::temp_dir().join("btr-json-test");
        let path = dir.join("nested").join("out.json");
        write_file(&path, &Json::U64(7)).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "7\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
