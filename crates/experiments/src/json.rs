//! A dependency-free JSON writer for machine-readable experiment output.
//!
//! The sweep runner ([`crate::sweep`]) and the vendored bench harness
//! both emit this format (schemas `btr-sweep-v1` / `btr-bench-v1`), so
//! downstream tooling can diff experiment results and bench trajectories
//! across commits without parsing human-oriented tables.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (serialized exactly).
    U64(u64),
    /// A signed integer (serialized exactly).
    I64(i64),
    /// A float (serialized via Rust's shortest-roundtrip formatting;
    /// non-finite values become `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serializes to a compact string.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a value to `path` (with a trailing newline), creating parent
/// directories as needed.
///
/// # Errors
///
/// Returns any I/O error from directory creation or the write.
pub fn write_file(path: &std::path::Path, value: &Json) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, value.to_string_compact() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_structures() {
        let v = Json::obj(vec![
            ("schema", Json::str("btr-sweep-v1")),
            ("count", Json::U64(2)),
            ("rate", Json::F64(0.5)),
            ("neg", Json::I64(-3)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::U64(1), Json::str("a\"b\n")])),
        ]);
        assert_eq!(
            v.to_string_compact(),
            "{\"schema\":\"btr-sweep-v1\",\"count\":2,\"rate\":0.5,\"neg\":-3,\"ok\":true,\"none\":null,\"items\":[1,\"a\\\"b\\n\"]}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn writes_files_with_parents() {
        let dir = std::env::temp_dir().join("btr-json-test");
        let path = dir.join("nested").join("out.json");
        write_file(&path, &Json::U64(7)).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "7\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
