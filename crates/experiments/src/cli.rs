//! Minimal `--key value` argument parsing for the experiment binaries.

/// Returns the value following `--name`, parsed, or `default`.
///
/// # Panics
///
/// Panics (with a clear message) if the value fails to parse.
#[must_use]
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T
where
    T::Err: std::fmt::Debug,
{
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == flag {
            return pair[1]
                .parse()
                .unwrap_or_else(|e| panic!("invalid value for {flag}: {e:?}"));
        }
    }
    default
}

/// True if `--name` appears as a bare flag.
#[must_use]
pub fn flag(name: &str) -> bool {
    let flag = format!("--{name}");
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_default_when_absent() {
        assert_eq!(arg("definitely-not-passed", 42u64), 42);
        assert!(!flag("definitely-not-passed"));
    }
}
