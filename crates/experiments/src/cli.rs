//! Minimal `--key value` argument parsing for the experiment binaries.
//!
//! Bad flag values are reported as one-line errors on stderr followed by
//! `exit(2)` — no panic, no backtrace — so typos in sweep scripts fail
//! fast and readably.

/// Returns the value following `--name`, parsed, or `default`.
///
/// Exits with status 2 and a one-line diagnostic if the value fails to
/// parse (e.g. `--ties neither` for a `stable|value` flag).
#[must_use]
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == flag {
            return pair[1].parse().unwrap_or_else(|e| {
                eprintln!("error: invalid value {:?} for {flag}: {e}", pair[1]);
                std::process::exit(2);
            });
        }
    }
    default
}

/// Returns the value following `--name` parsed, or `None` when absent.
///
/// Exits with status 2 and a one-line diagnostic on a bad value, like
/// [`arg`].
#[must_use]
pub fn opt_arg<T: std::str::FromStr>(name: &str) -> Option<T>
where
    T::Err: std::fmt::Display,
{
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == flag {
            return Some(pair[1].parse().unwrap_or_else(|e| {
                eprintln!("error: invalid value {:?} for {flag}: {e}", pair[1]);
                std::process::exit(2);
            }));
        }
    }
    None
}

/// Returns the comma-separated values following `--name`, parsed, or
/// `default` when the flag is absent.
///
/// Exits with status 2 and a one-line diagnostic on any bad element.
#[must_use]
pub fn list_arg<T: std::str::FromStr>(name: &str, default: Vec<T>) -> Vec<T>
where
    T::Err: std::fmt::Display,
{
    let Some(raw) = opt_arg::<String>(name) else {
        return default;
    };
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse().unwrap_or_else(|e| {
                eprintln!("error: invalid element {s:?} in --{name}: {e}");
                std::process::exit(2);
            })
        })
        .collect()
}

/// True if `--name` appears as a bare flag.
#[must_use]
pub fn flag(name: &str) -> bool {
    let flag = format!("--{name}");
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_default_when_absent() {
        assert_eq!(arg("definitely-not-passed", 42u64), 42);
        assert!(!flag("definitely-not-passed"));
        assert_eq!(opt_arg::<u64>("definitely-not-passed"), None);
        assert_eq!(list_arg("definitely-not-passed", vec![1u32, 2]), vec![1, 2]);
    }

    #[test]
    fn parses_domain_types_from_str() {
        use btr_core::ordering::{OrderingMethod, TieBreak};
        assert_eq!("value".parse::<TieBreak>(), Ok(TieBreak::Value));
        assert!("bogus".parse::<TieBreak>().is_err());
        assert_eq!(
            "O2".parse::<OrderingMethod>(),
            Ok(OrderingMethod::Separated)
        );
        assert_eq!(
            "separated".parse::<OrderingMethod>(),
            Ok(OrderingMethod::Separated)
        );
        assert!("O9".parse::<OrderingMethod>().is_err());
        use btr_bits::word::DataFormat;
        assert_eq!("fx8".parse::<DataFormat>(), Ok(DataFormat::Fixed8));
        assert!("int4".parse::<DataFormat>().is_err());
    }
}
