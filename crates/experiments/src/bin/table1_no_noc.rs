//! Table I — BT reduction without NoC.
//!
//! Streams 10,000 packets of real LeNet weights (25-value kernel packets,
//! zero-padded, 8 values per flit) over one link and measures "the BTs of
//! random comparisons between flits" (Sec. V-A), baseline vs ordered, for
//! the four configurations: float-32/fixed-8 × random/trained weights.
//! The ordering unit sorts a 64-packet prefetch window (Fig. 6) with the
//! paper's popcount-only comparator.
//!
//! Two additional sensitivity rows are printed per configuration (see
//! EXPERIMENTS.md): breaking popcount ties by value, and (for fixed-8) a
//! global Q0.7 quantization format — the knobs that reach the paper's
//! absolute magnitudes.
//!
//! Paper reference values: 20.38% (f32 random), 27.70% (fx8 random),
//! 18.92% (f32 trained), 55.71% (fx8 trained).
//!
//! Usage: `cargo run --release -p experiments --bin table1_no_noc
//! [--packets 10000] [--seed 42] [--train-samples 4000] [--epochs 10]`

use btr_core::stream::{compare_windowed, Comparison, StreamComparison, TieBreak, WindowConfig};
use experiments::cli;
use experiments::workloads::{
    f32_kernel_packets, fx8_kernel_packets_scheme, lenet_random, lenet_trained, sample_packets,
    Fx8Scheme,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const KERNEL_CHUNK: usize = 25;

fn main() {
    let packets: usize = cli::arg("packets", 10_000);
    let seed: u64 = cli::arg("seed", 42);
    let train_samples: usize = cli::arg(
        "train-samples",
        experiments::workloads::DEFAULT_TRAIN_SAMPLES,
    );
    let epochs: usize = cli::arg("epochs", experiments::workloads::DEFAULT_EPOCHS);

    let random_model = lenet_random(seed);
    let trained_model = lenet_trained(seed, train_samples, epochs);
    // Roughly one comparison per generated flit (4 flits per packet).
    let comparison = Comparison::RandomPairs {
        pairs: packets * 4,
        seed,
    };
    let stable = WindowConfig::table1();
    let value_ties = WindowConfig {
        tiebreak: TieBreak::Value,
        ..stable
    };

    println!("TABLE I: BT reduction without NoC ({packets} packets, seed {seed})");
    println!("(random flit comparisons; 64-packet ordering window; 8 values/flit)");
    println!(
        "{:<22} {:>14} {:>12} {:>12} {:>10}",
        "Weights", "Flit size(bit)", "BT/flit base", "BT/flit ord", "Reduction"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let f32r = sample_packets(
        &f32_kernel_packets(&random_model, KERNEL_CHUNK),
        packets,
        &mut rng,
    );
    let fx8r = sample_packets(
        &fx8_kernel_packets_scheme(&random_model, KERNEL_CHUNK, Fx8Scheme::PerTensor),
        packets,
        &mut rng,
    );
    let f32t = sample_packets(
        &f32_kernel_packets(&trained_model, KERNEL_CHUNK),
        packets,
        &mut rng,
    );
    let fx8t = sample_packets(
        &fx8_kernel_packets_scheme(&trained_model, KERNEL_CHUNK, Fx8Scheme::PerTensor),
        packets,
        &mut rng,
    );

    print_row(
        "Float-32 random",
        256,
        &compare_windowed(&f32r, &stable, comparison, 0),
    );
    print_row(
        "Fixed-8 random",
        64,
        &compare_windowed(&fx8r, &stable, comparison, 0),
    );
    print_row(
        "Float-32 trained",
        256,
        &compare_windowed(&f32t, &stable, comparison, 0),
    );
    print_row(
        "Fixed-8 trained",
        64,
        &compare_windowed(&fx8t, &stable, comparison, 0),
    );
    println!("# paper:             20.38% / 27.70% / 18.92% / 55.71% (same rank order)");

    println!();
    println!("sensitivity: popcount ties broken by value (wider comparator)");
    print_row(
        "Float-32 random",
        256,
        &compare_windowed(&f32r, &value_ties, comparison, 0),
    );
    print_row(
        "Fixed-8 random",
        64,
        &compare_windowed(&fx8r, &value_ties, comparison, 0),
    );
    print_row(
        "Float-32 trained",
        256,
        &compare_windowed(&f32t, &value_ties, comparison, 0),
    );
    print_row(
        "Fixed-8 trained",
        64,
        &compare_windowed(&fx8t, &value_ties, comparison, 0),
    );

    println!();
    println!("sensitivity: fixed-8 with a global Q0.7 format (shared scale)");
    let mut rng = StdRng::seed_from_u64(seed);
    let fx8r_g = sample_packets(
        &fx8_kernel_packets_scheme(&random_model, KERNEL_CHUNK, Fx8Scheme::GlobalUnit),
        packets,
        &mut rng,
    );
    let fx8t_g = sample_packets(
        &fx8_kernel_packets_scheme(&trained_model, KERNEL_CHUNK, Fx8Scheme::GlobalUnit),
        packets,
        &mut rng,
    );
    print_row(
        "Fixed-8 random",
        64,
        &compare_windowed(&fx8r_g, &stable, comparison, 0),
    );
    print_row(
        "Fixed-8 trained",
        64,
        &compare_windowed(&fx8t_g, &stable, comparison, 0),
    );
}

fn print_row(label: &str, flit_bits: usize, cmp: &StreamComparison) {
    println!(
        "{:<22} {:>14} {:>12.2} {:>12.2} {:>9.2}%",
        label,
        flit_bits,
        cmp.baseline.bt_per_flit,
        cmp.ordered.bt_per_flit,
        cmp.reduction_rate * 100.0
    );
}
