//! Calibration sweep for Table I's underdocumented parameters.
//!
//! Sec. V-A states "random comparisons between flits" over 10,000 packets
//! but leaves three knobs open: the ordering-window size (the prefetch
//! buffer the MC-side ordering unit sorts over), how popcount ties are
//! broken, and the fixed-8 quantization format. This sweep scans all of
//! them and prints the reduction rates for the four Table I
//! configurations, so the matching point can be chosen and documented in
//! EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p experiments --bin table1_calibrate
//! [--packets 2000] [--seed 42]`

use btr_core::stream::{compare_windowed, Comparison, Placement, TieBreak, WindowConfig};
use experiments::cli;
use experiments::workloads::{
    f32_kernel_packets, fx8_kernel_packets_scheme, lenet_random, lenet_trained, sample_packets,
    Fx8Scheme, DEFAULT_EPOCHS, DEFAULT_TRAIN_SAMPLES,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let packets: usize = cli::arg("packets", 2_000);
    let seed: u64 = cli::arg("seed", 42);

    let random_model = lenet_random(seed);
    let trained_model = lenet_trained(seed, DEFAULT_TRAIN_SAMPLES, DEFAULT_EPOCHS);
    let mut rng = StdRng::seed_from_u64(seed);

    let f32r = sample_packets(&f32_kernel_packets(&random_model, 25), packets, &mut rng);
    let f32t = sample_packets(&f32_kernel_packets(&trained_model, 25), packets, &mut rng);

    println!("# paper targets: f32r 20.38%  fx8r 27.70%  f32t 18.92%  fx8t 55.71%");
    println!(
        "{:<12} {:<10} {:<7} {:<7} {:<11} {:>8} {:>8} {:>8} {:>8}",
        "comparison",
        "placement",
        "window",
        "ties",
        "fx8scheme",
        "f32r%",
        "fx8r%",
        "f32t%",
        "fx8t%"
    );
    for scheme in [Fx8Scheme::PerTensor, Fx8Scheme::GlobalUnit] {
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let fx8r = sample_packets(
            &fx8_kernel_packets_scheme(&random_model, 25, scheme),
            packets,
            &mut rng,
        );
        let fx8t = sample_packets(
            &fx8_kernel_packets_scheme(&trained_model, 25, scheme),
            packets,
            &mut rng,
        );
        for comparison in [
            Comparison::Consecutive,
            Comparison::RandomPairs {
                pairs: 20_000,
                seed,
            },
        ] {
            for tiebreak in [TieBreak::Stable, TieBreak::Value] {
                for window in [1usize, 16, 64, 256] {
                    let config = WindowConfig {
                        values_per_flit: 8,
                        window_packets: window,
                        placement: Placement::RoundRobin,
                        tiebreak,
                    };
                    let rf = |pkts: &[Vec<btr_bits::word::F32Word>]| {
                        compare_windowed(pkts, &config, comparison, 0).reduction_rate * 100.0
                    };
                    let r8 = |pkts: &[Vec<btr_bits::word::Fx8Word>]| {
                        compare_windowed(pkts, &config, comparison, 0).reduction_rate * 100.0
                    };
                    println!(
                        "{:<12} {:<10} {:<7} {:<7} {:<11} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                        match comparison {
                            Comparison::Consecutive => "consecutive",
                            Comparison::RandomPairs { .. } => "randompairs",
                        },
                        "RoundRobin",
                        window,
                        format!("{tiebreak:?}"),
                        format!("{scheme:?}"),
                        rf(&f32r),
                        r8(&fx8r),
                        rf(&f32t),
                        r8(&fx8t),
                    );
                }
            }
        }
    }
}
