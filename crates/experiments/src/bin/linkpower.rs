//! Sec. V-C — intuitive link-power impression.
//!
//! Reproduces the arithmetic: `0.173 pJ/bit × 128 bits / 2 × 112 links ×
//! 125 MHz = 155.008 mW` (and 476.672 mW with Banerjee's 0.532 pJ), then
//! applies a BT reduction rate (default: the paper's best 40.85%).
//!
//! Usage: `cargo run --release -p experiments --bin linkpower
//! [--reduction 0.4085] [--links 112] [--width 128] [--freq 125]`

use btr_hw::link_energy::LinkPowerModel;
use experiments::cli;

fn main() {
    let reduction: f64 = cli::arg("reduction", 0.4085);
    let links: usize = cli::arg("links", 112);
    let width: u32 = cli::arg("width", 128);
    let freq: f64 = cli::arg("freq", 125.0);
    let toggle_fraction = 0.5; // "assuming half of the links transit"

    println!("Sec. V-C link power ({width}-bit links x {links}, {freq} MHz, 50% toggling)");
    println!(
        "{:<22} {:>12} {:>22} {:>14}",
        "model", "pJ/bit", "base power (mW)", "reduced (mW)"
    );
    for (name, model) in [
        ("ours (Innovus)", LinkPowerModel::paper()),
        ("Banerjee et al. [6]", LinkPowerModel::banerjee()),
    ] {
        let base = model.link_power_mw(width, links, toggle_fraction, freq);
        let reduced = LinkPowerModel::reduced_power_mw(base, reduction);
        println!(
            "{:<22} {:>12.3} {:>22.3} {:>14.3}",
            name, model.energy_per_transition_pj, base, reduced
        );
    }
    println!();
    println!(
        "# paper: 155.008 -> 91.688 mW and 476.672 -> 281.951 mW at {:.2}% reduction",
        reduction * 100.0
    );
}
