//! Fig. 1 — Expectation of BT on two 32-bit numbers.
//!
//! Prints the analytic grid `E(x, y) = x + y − xy/16` for
//! `x, y ∈ [0, 32]` (CSV, rows = x) and cross-checks a sample of points
//! against Monte-Carlo simulation of random words with fixed popcounts.
//!
//! Usage: `cargo run --release -p experiments --bin fig01_bt_expectation
//! [--samples 20000] [--seed 42]`

use btr_core::theory::{expected_bt_32, monte_carlo_bt};
use experiments::cli;

fn main() {
    let samples: u32 = cli::arg("samples", 20_000);
    let seed: u64 = cli::arg("seed", 42);

    println!("# Fig. 1: expected bit transitions between two 32-bit words");
    println!("# rows: x (popcount of word 1), cols: y (popcount of word 2)");
    print!("x\\y");
    for y in 0..=32 {
        print!(",{y}");
    }
    println!();
    for x in 0..=32u32 {
        print!("{x}");
        for y in 0..=32u32 {
            print!(",{:.3}", expected_bt_32(x, y));
        }
        println!();
    }

    println!();
    println!("# Monte-Carlo cross-check ({samples} samples per point, seed {seed})");
    println!(
        "{:>3} {:>3} {:>10} {:>10} {:>8}",
        "x", "y", "analytic", "sampled", "abs err"
    );
    for &(x, y) in &[(0u32, 0u32), (16, 16), (32, 0), (8, 24), (4, 28), (32, 32)] {
        let analytic = expected_bt_32(x, y);
        let sampled = monte_carlo_bt(x, y, 32, samples, seed);
        println!(
            "{x:>3} {y:>3} {analytic:>10.4} {sampled:>10.4} {:>8.4}",
            (analytic - sampled).abs()
        );
    }
}
