//! `btr-serve` — the multi-session inference service front-end.
//!
//! Owns a pool of independent accelerator sessions (one mesh + one
//! pipelined batch driver each), feeds them from a bounded MPMC request
//! queue through a batching window, drives the pool with the
//! deterministic synthetic client, and reports aggregate throughput,
//! fleet-wide bit transitions, overhead totals and queue-depth / latency
//! histograms — optionally as a `btr-serve-v2` JSON document.
//!
//! Usage:
//! `cargo run --release -p experiments --bin btr-serve -- \
//!     [--sessions 4] [--batch 8] [--requests 64] [--queue-cap 32] \
//!     [--flush-polls 64] [--model lenet|darknet] [--weights random|trained] \
//!     [--mesh 4x4x2] [--formats... see sweep] [--format f32|fx8] \
//!     [--ordering O0|O1|O2] [--codec none|bus-invert|delta-xor] \
//!     [--codec-scope per-packet|per-link] \
//!     [--driver pipelined|sync] [--engine cycle|analytic|auto] \
//!     [--ber 1e-6] [--edc none|parity|crc8] [--resync reseed|continuous] \
//!     [--retries 8] [--darknet-width 8] [--seed 42] \
//!     [--json serve.json]`

use btr_accel::config::{AccelConfig, DriverMode};
use btr_bits::word::DataFormat;
use btr_core::codec::{CodecKind, CodecScope, ResyncPolicy};
use btr_core::edc::EdcKind;
use btr_core::ordering::OrderingMethod;
use btr_dnn::data::{SyntheticDigits, SyntheticRgb};
use btr_dnn::models::darknet;
use btr_dnn::tensor::Tensor;
use btr_noc::EngineMode;
use btr_serve::{serve, synthetic_requests, ServeConfig};
use experiments::cli;
use experiments::serve_json::report_json;
use experiments::sweep::MeshSpec;
use experiments::workloads::{lenet, WeightSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let sessions: usize = cli::arg("sessions", 4);
    let batch: usize = cli::arg("batch", 8);
    let requests: usize = cli::arg("requests", 64);
    let queue_cap: usize = cli::arg("queue-cap", 32);
    let flush_polls: u32 = cli::arg("flush-polls", 64);
    let model: String = cli::arg("model", "lenet".to_string());
    let weights: WeightSource = cli::arg("weights", WeightSource::Trained);
    let mesh: MeshSpec = cli::arg(
        "mesh",
        MeshSpec {
            width: 4,
            height: 4,
            mc_count: 2,
        },
    );
    let format: DataFormat = cli::arg("format", DataFormat::Fixed8);
    let ordering: OrderingMethod = cli::arg("ordering", OrderingMethod::Separated);
    let codec: CodecKind = cli::arg("codec", CodecKind::Unencoded);
    let codec_scope: CodecScope = cli::arg("codec-scope", CodecScope::PerPacket);
    let driver: DriverMode = cli::arg("driver", DriverMode::Pipelined);
    let engine: EngineMode = cli::arg("engine", EngineMode::Cycle);
    let ber: f64 = cli::arg("ber", 0.0);
    let edc: Option<EdcKind> = cli::opt_arg("edc");
    let resync: ResyncPolicy = cli::arg("resync", ResyncPolicy::ReseedOnRetry);
    let retries: u32 = cli::arg("retries", 8);
    let darknet_width: usize = cli::arg("darknet-width", 8);
    let seed: u64 = cli::arg("seed", 42);
    let json_path: Option<String> = cli::opt_arg("json");

    let mut rng = StdRng::seed_from_u64(seed);
    let pool_size = 16usize.max(batch);
    let (workload_name, ops, pool): (String, _, Vec<Tensor>) = match model.as_str() {
        "lenet" => {
            let digits = SyntheticDigits::new();
            (
                format!("LeNet ({} weights)", weights.name()),
                lenet(weights, seed).inference_ops(),
                (0..pool_size)
                    .map(|i| digits.sample((7 + i) % 10, &mut rng).input)
                    .collect(),
            )
        }
        "darknet" => {
            let rgb = SyntheticRgb::new();
            (
                format!("DarkNet (width {darknet_width})"),
                darknet::build_with_width(seed, darknet_width).inference_ops(),
                (0..pool_size)
                    .map(|i| rgb.sample((2 + i) % 10, &mut rng).input)
                    .collect(),
            )
        }
        other => {
            eprintln!("error: unknown model {other:?}; use lenet|darknet");
            std::process::exit(2);
        }
    };

    let mut accel = AccelConfig::paper(mesh.width, mesh.height, mesh.mc_count, format, ordering)
        .with_codec(codec)
        .with_codec_scope(codec_scope);
    if let Some(edc) = edc {
        accel = accel.with_edc(edc);
    }
    if ber > 0.0 || edc.is_some() {
        // `--edc` alone arms the recovery protocol on perfect wires, so
        // pure EDC overhead is measurable; `--ber` flips real bits.
        accel = accel.with_fault(
            btr_noc::fault::ErrorModel {
                ber: btr_noc::fault::BitErrorRate::from_f64(ber),
                seed,
                mode: btr_noc::fault::FaultMode::PerFlit,
            },
            resync,
            retries,
        );
    }
    accel.batch_size = batch;
    accel.driver = driver;
    accel.engine = engine;
    // A pool of concurrent sessions already claims the host's harts;
    // per-session encoder threads would only contend with sibling
    // meshes, so multi-session runs encode inline (bit-exact either
    // way — the same reasoning as the parallel sweep runner).
    accel.encode_inline = sessions > 1;
    let config = ServeConfig {
        accel,
        sessions,
        queue_capacity: queue_cap,
        flush_polls,
    };

    eprintln!(
        "# btr-serve: {workload_name} on {mesh}, {format} {ordering} {codec} {codec_scope} \
         ({driver} driver, {engine} engine), {sessions} sessions x window {batch}, \
         queue cap {queue_cap}, {requests} requests"
    );
    let report = match serve(&ops, &config, synthetic_requests(&pool, requests)) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "served {} inferences in {} ms: {:.2} inferences/s aggregate",
        report.completed, report.wall_ms, report.inferences_per_sec
    );
    println!(
        "fleet: {} bit transitions, {} index-overhead bits, {} codec-overhead bits",
        report.transitions, report.index_overhead_bits, report.codec_overhead_bits
    );
    if config.accel.noc.fault.is_some() {
        println!(
            "faults: {} failed, {} edc-overhead bits, {} retransmitted flits, \
             {} retried packets (retries/request p99 {})",
            report.failed,
            report.edc_overhead_bits,
            report.retransmitted_flits,
            report.retried_packets,
            report.retries.percentile(0.99),
        );
    }
    println!(
        "latency us: p50 {} p90 {} p99 {} max {}  |  queue depth: p50 {} max {}  |  batch fill: mean {:.2}",
        report.latency_us.percentile(0.5),
        report.latency_us.percentile(0.9),
        report.latency_us.percentile(0.99),
        report.latency_us.max(),
        report.queue_depth.percentile(0.5),
        report.queue_depth.max(),
        report.batch_fill.mean(),
    );
    println!(
        "{:<8} {:>10} {:>11} {:>16} {:>12} {:>8}",
        "session", "dispatches", "inferences", "transitions", "fill(mean)", "busy"
    );
    for s in &report.per_session {
        println!(
            "{:<8} {:>10} {:>11} {:>16} {:>12.2} {:>6}ms",
            s.session,
            s.dispatches,
            s.inferences,
            s.transitions,
            s.batch_fill.mean(),
            s.busy_ms
        );
    }

    if let Some(path) = json_path {
        let json = report_json(&workload_name, &config, &report);
        if let Err(e) = experiments::json::write_file(std::path::Path::new(&path), &json) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
        println!("# wrote {path}");
    }
}
