//! Fig. 13 — Normalized BTs for different NN models.
//!
//! Runs LeNet and the reduced DarkNet-like model (64×64×3 input) on the
//! default 4×4 MC2 accelerator for O0/O1/O2 in both formats, reporting BTs
//! normalized to each model's baseline. Cells fan out over the parallel
//! sweep runner; `--json PATH` additionally writes the `btr-sweep-v1`
//! result file.
//!
//! Paper reference: up to 35.93% reduction for LeNet, up to 40.85% for
//! DarkNet; separated-ordering always wins.
//!
//! Usage: `cargo run --release -p experiments --bin fig13_models
//! [--weights trained] [--seed 42] [--darknet-width 8] [--sequential]
//! [--json fig13.json]`

use btr_bits::word::DataFormat;
use btr_core::codec::CodecKind;
use btr_core::ordering::{OrderingMethod, TieBreak};
use btr_dnn::data::{SyntheticDigits, SyntheticRgb};
use btr_dnn::models::darknet;
use experiments::cli;
use experiments::sweep::{baseline_of, expand_grid, outcomes_json, run_cells, MeshSpec, Workload};
use experiments::workloads::{lenet, WeightSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed: u64 = cli::arg("seed", 42);
    let source: WeightSource = cli::arg("weights", WeightSource::Trained);
    let darknet_width: usize = cli::arg("darknet-width", 8);
    let sequential = cli::flag("sequential");
    let tiebreak: TieBreak = cli::arg("ties", TieBreak::Stable);
    let fx8_global = cli::flag("fx8-global");
    let json_path: Option<String> = cli::opt_arg("json");

    let mut rng = StdRng::seed_from_u64(seed);
    let lenet_model = lenet(source, seed);
    let lenet_input = SyntheticDigits::new().sample(3, &mut rng).input;
    // DarkNet runs with random weights (training a conv-BN stack on the
    // synthetic RGB set is out of scope for this figure; the traffic's
    // bit-level structure is what matters).
    let darknet_model = darknet::build_with_width(seed, darknet_width);
    let darknet_input = SyntheticRgb::new().sample(2, &mut rng).input;

    let workloads = vec![
        Workload {
            name: "LeNet".into(),
            ops: lenet_model.inference_ops(),
            input: lenet_input,
        },
        Workload {
            name: "DarkNet".into(),
            ops: darknet_model.inference_ops(),
            input: darknet_input,
        },
    ];

    let cells = expand_grid(
        workloads.len(),
        &[MeshSpec {
            width: 4,
            height: 4,
            mc_count: 2,
        }],
        &[DataFormat::Float32, DataFormat::Fixed8],
        &OrderingMethod::ALL,
        &[tiebreak],
        &[fx8_global],
        &[CodecKind::Unencoded],
    );
    let outcomes = run_cells(&workloads, cells, sequential);

    println!(
        "Fig. 13: normalized BTs, 4x4 MC2, LeNet ({} weights) vs DarkNet (width {darknet_width}, random weights)",
        source.name()
    );
    println!(
        "{:<9} {:<9} {:>4} {:>16} {:>11} {:>10} {:>10}",
        "model", "format", "ord", "total BTs", "normalized", "reduction", "cycles"
    );
    for o in &outcomes {
        if let Some(e) = &o.error {
            eprintln!(
                "error: {} {} {}: {e}",
                workloads[o.cell.workload].name, o.cell.format, o.cell.ordering
            );
            continue;
        }
        let baseline = baseline_of(&outcomes, &o.cell).map_or(0, |b| b.transitions);
        let normalized = if baseline == 0 {
            0.0
        } else {
            o.transitions as f64 / baseline as f64
        };
        println!(
            "{:<9} {:<9} {:>4} {:>16} {:>11.4} {:>9.2}% {:>10}",
            workloads[o.cell.workload].name,
            o.cell.format.name(),
            o.cell.ordering.label(),
            o.transitions,
            normalized,
            (1.0 - normalized) * 100.0,
            o.cycles
        );
    }
    println!();
    println!("# paper: up to 35.93% (LeNet) and 40.85% (DarkNet), separated-ordering best");

    if let Some(path) = json_path {
        let json = outcomes_json(&workloads, &outcomes);
        experiments::json::write_file(std::path::Path::new(&path), &json)
            .unwrap_or_else(|e| eprintln!("error: could not write {path}: {e}"));
        println!("# wrote {path}");
    }
}
