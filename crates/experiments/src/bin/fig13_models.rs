//! Fig. 13 — Normalized BTs for different NN models.
//!
//! Runs LeNet and the reduced DarkNet-like model (64×64×3 input) on the
//! default 4×4 MC2 accelerator for O0/O1/O2 in both formats, reporting BTs
//! normalized to each model's baseline.
//!
//! Paper reference: up to 35.93% reduction for LeNet, up to 40.85% for
//! DarkNet; separated-ordering always wins.
//!
//! Usage: `cargo run --release -p experiments --bin fig13_models
//! [--weights trained] [--seed 42] [--darknet-width 8] [--sequential]`

use btr_accel::config::AccelConfig;
use btr_accel::driver::run_inference;
use btr_bits::word::DataFormat;
use btr_core::ordering::TieBreak;
use btr_core::OrderingMethod;
use btr_dnn::data::{SyntheticDigits, SyntheticRgb};
use btr_dnn::models::darknet;
use btr_dnn::tensor::Tensor;
use btr_dnn::InferenceOp;
use experiments::cli;
use experiments::workloads::{lenet, WeightSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed: u64 = cli::arg("seed", 42);
    let source = WeightSource::parse(&cli::arg::<String>("weights", "trained".into()));
    let darknet_width: usize = cli::arg("darknet-width", 8);
    let sequential = cli::flag("sequential");
    let tiebreak = TieBreak::parse(&cli::arg::<String>("ties", "stable".into()));
    let fx8_global = cli::flag("fx8-global");

    let mut rng = StdRng::seed_from_u64(seed);
    let lenet_model = lenet(source, seed);
    let lenet_input = SyntheticDigits::new().sample(3, &mut rng).input;
    // DarkNet runs with random weights (training a conv-BN stack on the
    // synthetic RGB set is out of scope for this figure; the traffic's
    // bit-level structure is what matters).
    let darknet_model = darknet::build_with_width(seed, darknet_width);
    let darknet_input = SyntheticRgb::new().sample(2, &mut rng).input;

    let workloads: [(&str, Vec<InferenceOp>, Tensor); 2] = [
        ("LeNet", lenet_model.inference_ops(), lenet_input),
        ("DarkNet", darknet_model.inference_ops(), darknet_input),
    ];
    let formats = [DataFormat::Float32, DataFormat::Fixed8];

    struct Job {
        model: usize,
        format: usize,
        ordering: OrderingMethod,
        transitions: u64,
        cycles: u64,
    }
    let mut jobs = Vec::new();
    for mi in 0..workloads.len() {
        for fi in 0..formats.len() {
            for ordering in OrderingMethod::ALL {
                jobs.push(Job {
                    model: mi,
                    format: fi,
                    ordering,
                    transitions: 0,
                    cycles: 0,
                });
            }
        }
    }

    let run_job = |job: &mut Job| {
        let (_, ops, input) = &workloads[job.model];
        let mut config = AccelConfig::paper(4, 4, 2, formats[job.format], job.ordering);
        config.tiebreak = tiebreak;
        config.global_fx8_weights = fx8_global;
        let result = run_inference(ops, input, &config).expect("inference completes");
        job.transitions = result.stats.total_transitions;
        job.cycles = result.total_cycles;
    };

    if sequential {
        for job in &mut jobs {
            run_job(job);
        }
    } else {
        crossbeam::thread::scope(|scope| {
            for job in &mut jobs {
                scope.spawn(|_| run_job(job));
            }
        })
        .expect("worker threads join");
    }

    println!(
        "Fig. 13: normalized BTs, 4x4 MC2, LeNet ({} weights) vs DarkNet (width {darknet_width}, random weights)",
        source.name()
    );
    println!(
        "{:<9} {:<9} {:>4} {:>16} {:>11} {:>10} {:>10}",
        "model", "format", "ord", "total BTs", "normalized", "reduction", "cycles"
    );
    for (mi, (name, _, _)) in workloads.iter().enumerate() {
        for (fi, format) in formats.iter().enumerate() {
            let baseline = jobs
                .iter()
                .find(|j| j.model == mi && j.format == fi && j.ordering == OrderingMethod::Baseline)
                .expect("baseline exists")
                .transitions;
            for ordering in OrderingMethod::ALL {
                let job = jobs
                    .iter()
                    .find(|j| j.model == mi && j.format == fi && j.ordering == ordering)
                    .expect("job exists");
                let normalized = job.transitions as f64 / baseline as f64;
                println!(
                    "{:<9} {:<9} {:>4} {:>16} {:>11.4} {:>9.2}% {:>10}",
                    name,
                    format.name(),
                    ordering.label(),
                    job.transitions,
                    normalized,
                    (1.0 - normalized) * 100.0,
                    job.cycles
                );
            }
        }
    }
    println!();
    println!("# paper: up to 35.93% (LeNet) and 40.85% (DarkNet), separated-ordering best");
}
