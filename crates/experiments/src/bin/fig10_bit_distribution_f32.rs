//! Fig. 10 — float-32 weight bit analysis.
//!
//! Top halves: probability of a `'1'` at each of the 32 bit positions for
//! random and trained weights (revealing the sign/exponent/mantissa
//! structure). Bottom halves: probability of a transition at each bit
//! position, baseline vs ordered streams.
//!
//! Output: CSV with the x-axis counted from the sign bit (position 1),
//! matching the paper's plots.
//!
//! Usage: `cargo run --release -p experiments --bin
//! fig10_bit_distribution_f32 [--packets 10000] [--seed 42]`

use btr_core::stream::{evaluate_windowed, word_bit_statistics, Comparison, WindowConfig};
use experiments::cli;
use experiments::workloads::{
    f32_kernel_packets, flatten_packets, lenet_random, lenet_trained, sample_packets,
    DEFAULT_EPOCHS, DEFAULT_TRAIN_SAMPLES,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let packets: usize = cli::arg("packets", 10_000);
    let seed: u64 = cli::arg("seed", 42);

    println!("# Fig. 10: float-32 weight bit analysis");
    for (label, model) in [
        ("random", lenet_random(seed)),
        (
            "trained",
            lenet_trained(seed, DEFAULT_TRAIN_SAMPLES, DEFAULT_EPOCHS),
        ),
    ] {
        let pool = f32_kernel_packets(&model, 25);
        let mut rng = StdRng::seed_from_u64(seed);
        let stream = sample_packets(&pool, packets, &mut rng);

        // '1'-probability per bit position (order-independent).
        let words = flatten_packets(&stream);
        let stats = word_bit_statistics(&words);
        let ones = stats.one_probability();

        // Transition probability per bit position, baseline vs ordered
        // (Table I's windowed configuration and random flit comparisons).
        let config = WindowConfig::table1();
        let comparison = Comparison::RandomPairs {
            pairs: packets * 4,
            seed,
        };
        let base = evaluate_windowed(&stream, &config, false, comparison, 0);
        let ordered = evaluate_windowed(&stream, &config, true, comparison, 0);

        println!("section,{label}");
        println!("bit,ones_prob,trans_prob_baseline,trans_prob_ordered");
        // Paper x-axis: 1 = sign bit (MSB), 32 = mantissa LSB.
        for pos in 0..32usize {
            let lsb_index = 31 - pos;
            println!(
                "{},{:.4},{:.4},{:.4}",
                pos + 1,
                ones[lsb_index],
                base.word_transition_probability[lsb_index],
                ordered.word_transition_probability[lsb_index],
            );
        }
        println!();
    }
}
