//! Ablation: the paper's descending rule vs alternative orderings and
//! classic link encodings (not a paper figure; extension study).
//!
//! Compares, on the Table I weight stream (trained LeNet, fixed-8):
//! * descending popcount (the paper's rule) at several window sizes;
//! * ascending popcount;
//! * greedy nearest-popcount (TSP-flavored heuristic);
//! * bus-invert coding and delta-XOR encoding on the unordered stream;
//! * ordering composed with bus-invert.
//!
//! Usage: `cargo run --release -p experiments --bin ablation_orderings
//! [--packets 4000] [--seed 42]`

use btr_bits::payload::PayloadBits;
use btr_bits::word::{DataWord, Fx8Word};
use btr_core::encoding::{bus_invert, delta_xor, unencoded};
use btr_core::ordering::{ascending_popcount_order, greedy_nearest_order};
use btr_core::stream::{build_stream_flits, Placement, TieBreak, WindowConfig};
use experiments::cli;
use experiments::workloads::{
    fx8_kernel_packets, lenet_trained, sample_packets, DEFAULT_EPOCHS, DEFAULT_TRAIN_SAMPLES,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds flits with an arbitrary per-window permutation rule.
fn flits_with_order(
    packets: &[Vec<Fx8Word>],
    window: usize,
    order: impl Fn(&[Fx8Word]) -> Vec<usize>,
) -> Vec<PayloadBits> {
    let vpf = 8usize;
    let width = vpf as u32 * Fx8Word::WIDTH;
    let mut flits = Vec::new();
    for group in packets.chunks(window) {
        let mut occupancy = Vec::new();
        for packet in group {
            let n = packet.len().div_ceil(vpf).max(1);
            for f in 0..n {
                occupancy.push(packet.len().saturating_sub(f * vpf).min(vpf));
            }
        }
        let values: Vec<Fx8Word> = group.iter().flatten().copied().collect();
        let perm = order(&values);
        let assign = btr_core::ordering::round_robin_assignment(&occupancy);
        let base = flits.len();
        flits.extend((0..occupancy.len()).map(|_| PayloadBits::zero(width)));
        for (rank, &orig) in perm.iter().enumerate() {
            let (f, s) = assign[rank];
            flits[base + f].set_field(s as u32 * 8, 8, values[orig].bits_u64());
        }
    }
    flits
}

fn main() {
    let packets: usize = cli::arg("packets", 4_000);
    let seed: u64 = cli::arg("seed", 42);

    let model = lenet_trained(seed, DEFAULT_TRAIN_SAMPLES, DEFAULT_EPOCHS);
    let pool = fx8_kernel_packets(&model, 25);
    let mut rng = StdRng::seed_from_u64(seed);
    let stream = sample_packets(&pool, packets, &mut rng);

    let config = WindowConfig {
        values_per_flit: 8,
        window_packets: 64,
        placement: Placement::RoundRobin,
        tiebreak: TieBreak::Stable,
    };
    let baseline = build_stream_flits(&stream, &config, false);
    let base_bt = unencoded(&baseline).transitions;

    println!("ordering ablation: trained LeNet fixed-8 stream, {} flits", baseline.len());
    println!("{:<46} {:>12} {:>10}", "scheme", "transitions", "reduction");
    let show = |label: &str, bt: u64| {
        println!(
            "{:<46} {:>12} {:>9.2}%",
            label,
            bt,
            (1.0 - bt as f64 / base_bt as f64) * 100.0
        );
    };
    show("baseline (natural order)", base_bt);

    for window in [1usize, 16, 64, 256] {
        let cfg = WindowConfig { window_packets: window, ..config };
        let flits = build_stream_flits(&stream, &cfg, true);
        show(
            &format!("descending popcount (paper), window {window}"),
            unencoded(&flits).transitions,
        );
    }

    let asc = flits_with_order(&stream, 64, |v| ascending_popcount_order(v));
    show("ascending popcount, window 64", unencoded(&asc).transitions);

    let greedy = flits_with_order(&stream, 64, |v| greedy_nearest_order(v));
    show("greedy nearest-popcount, window 64", unencoded(&greedy).transitions);

    show("bus-invert coding (unordered)", bus_invert(&baseline).total());
    show("delta-XOR encoding (unordered)", delta_xor(&baseline).transitions);

    let ordered = build_stream_flits(&stream, &config, true);
    show("descending (64) + bus-invert", bus_invert(&ordered).total());

    println!();
    println!("# descending beats ascending: padded zero slots sit at packet tails,");
    println!("#   so descending places the low-popcount values next to them;");
    println!("# greedy ties descending (popcount adjacency is what matters);");
    println!("# encodings are weaker alone and compose with ordering.");
}
