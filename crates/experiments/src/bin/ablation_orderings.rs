//! Ablation: the paper's descending rule vs alternative orderings and
//! classic link encodings (not a paper figure; extension study).
//!
//! Compares, on the Table I weight stream (trained LeNet, fixed-8):
//! * descending popcount (the paper's rule) at several window sizes;
//! * ascending popcount;
//! * greedy nearest-popcount (TSP-flavored heuristic);
//! * bus-invert coding and delta-XOR encoding on the unordered stream;
//! * ordering composed with bus-invert.
//!
//! Schemes evaluate in parallel over the sweep runner's job pool; window
//! packing goes through the shared transport pipeline
//! (`btr_core::transport::pack_window_with_order`). `--json PATH` writes
//! the results machine-readably.
//!
//! Usage: `cargo run --release -p experiments --bin ablation_orderings
//! [--packets 4000] [--seed 42] [--sequential] [--json ablation.json]`

use btr_bits::payload::PayloadBits;
use btr_bits::word::Fx8Word;
use btr_core::encoding::{bus_invert, delta_xor, unencoded};
use btr_core::ordering::{ascending_popcount_order, greedy_nearest_order};
use btr_core::stream::{build_stream_flits, Placement, TieBreak, WindowConfig};
use btr_core::transport::pack_window_with_order;
use experiments::cli;
use experiments::json::Json;
use experiments::sweep::par_run;
use experiments::workloads::{
    fx8_kernel_packets, lenet_trained, sample_packets, DEFAULT_EPOCHS, DEFAULT_TRAIN_SAMPLES,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds flits with an arbitrary per-window permutation rule.
fn flits_with_order(
    packets: &[Vec<Fx8Word>],
    window: usize,
    order: impl Fn(&[Fx8Word]) -> Vec<usize> + Copy,
) -> Vec<PayloadBits> {
    let mut flits = Vec::new();
    for group in packets.chunks(window) {
        flits.extend(pack_window_with_order(group, 8, order));
    }
    flits
}

fn main() {
    let packets: usize = cli::arg("packets", 4_000);
    let seed: u64 = cli::arg("seed", 42);
    let sequential = cli::flag("sequential");
    let json_path: Option<String> = cli::opt_arg("json");

    let model = lenet_trained(seed, DEFAULT_TRAIN_SAMPLES, DEFAULT_EPOCHS);
    let pool = fx8_kernel_packets(&model, 25);
    let mut rng = StdRng::seed_from_u64(seed);
    let stream = sample_packets(&pool, packets, &mut rng);

    let config = WindowConfig {
        values_per_flit: 8,
        window_packets: 64,
        placement: Placement::RoundRobin,
        tiebreak: TieBreak::Stable,
    };
    let baseline = build_stream_flits(&stream, &config, false);
    let base_bt = unencoded(&baseline).transitions;

    // Each scheme is an independent job: (label, transitions).
    type Scheme<'a> = (String, Box<dyn Fn() -> u64 + Send + Sync + 'a>);
    let stream = &stream;
    let baseline_flits = &baseline;
    let mut schemes: Vec<Scheme<'_>> = Vec::new();
    for window in [1usize, 16, 64, 256] {
        let cfg = WindowConfig {
            window_packets: window,
            ..config
        };
        schemes.push((
            format!("descending popcount (paper), window {window}"),
            Box::new(move || unencoded(&build_stream_flits(stream, &cfg, true)).transitions),
        ));
    }
    schemes.push((
        "ascending popcount, window 64".into(),
        Box::new(|| unencoded(&flits_with_order(stream, 64, ascending_popcount_order)).transitions),
    ));
    schemes.push((
        "greedy nearest-popcount, window 64".into(),
        Box::new(|| unencoded(&flits_with_order(stream, 64, greedy_nearest_order)).transitions),
    ));
    schemes.push((
        "bus-invert coding (unordered)".into(),
        Box::new(|| bus_invert(baseline_flits).total()),
    ));
    schemes.push((
        "delta-XOR encoding (unordered)".into(),
        Box::new(|| delta_xor(baseline_flits).transitions),
    ));
    schemes.push((
        "descending (64) + bus-invert".into(),
        Box::new(move || bus_invert(&build_stream_flits(stream, &config, true)).total()),
    ));

    let results: Vec<(String, u64)> = par_run(schemes, sequential, |(label, f)| {
        let bt = f();
        (label, bt)
    });

    println!(
        "ordering ablation: trained LeNet fixed-8 stream, {} flits",
        baseline.len()
    );
    println!("{:<46} {:>12} {:>10}", "scheme", "transitions", "reduction");
    let reduction = |bt: u64| (1.0 - bt as f64 / base_bt as f64) * 100.0;
    println!(
        "{:<46} {:>12} {:>9.2}%",
        "baseline (natural order)", base_bt, 0.0
    );
    for (label, bt) in &results {
        println!("{label:<46} {bt:>12} {:>9.2}%", reduction(*bt));
    }

    println!();
    println!("# descending beats ascending: padded zero slots sit at packet tails,");
    println!("#   so descending places the low-popcount values next to them;");
    println!("# greedy ties descending (popcount adjacency is what matters);");
    println!("# encodings are weaker alone and compose with ordering.");

    if let Some(path) = json_path {
        let mut rows = vec![Json::obj(vec![
            ("scheme", Json::str("baseline (natural order)")),
            ("transitions", Json::U64(base_bt)),
            ("reduction", Json::F64(0.0)),
        ])];
        rows.extend(results.iter().map(|(label, bt)| {
            Json::obj(vec![
                ("scheme", Json::str(label.clone())),
                ("transitions", Json::U64(*bt)),
                ("reduction", Json::F64(reduction(*bt) / 100.0)),
            ])
        }));
        let json = Json::obj(vec![
            ("schema", Json::str("btr-sweep-v1")),
            ("cells", Json::Arr(rows)),
        ]);
        experiments::json::write_file(std::path::Path::new(&path), &json)
            .unwrap_or_else(|e| eprintln!("error: could not write {path}: {e}"));
        println!("# wrote {path}");
    }
}
