//! The general sweep front-end: any `(model × mesh × format × ordering ×
//! tiebreak × fx8 scheme)` grid, fanned out in parallel, with
//! machine-readable JSON results.
//!
//! This is the scaling successor to the per-figure binaries: one command
//! covers Fig. 12 (mesh sizes), Fig. 13 (models) and the sensitivity
//! grids, at any subset of the cross product.
//!
//! Usage:
//! `cargo run --release -p experiments --bin sweep -- \
//!     [--models lenet,darknet] [--weights trained] [--seed 42] \
//!     [--meshes 4x4x2,8x8x4,8x8x8] [--formats f32,fx8] \
//!     [--orderings O0,O1,O2] [--ties stable,value] [--fx8-global] \
//!     [--darknet-width 8] [--sequential] [--json sweep.json]`
//!
//! `--json` writes the `btr-sweep-v1` schema described in EXPERIMENTS.md.

use btr_bits::word::DataFormat;
use btr_core::ordering::{OrderingMethod, TieBreak};
use btr_dnn::data::{SyntheticDigits, SyntheticRgb};
use btr_dnn::models::darknet;
use experiments::cli;
use experiments::sweep::{baseline_of, expand_grid, outcomes_json, run_cells, MeshSpec, Workload};
use experiments::workloads::{lenet, WeightSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_workload(name: &str, source: WeightSource, seed: u64, darknet_width: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    match name {
        "lenet" => Workload {
            name: format!("LeNet ({} weights)", source.name()),
            ops: lenet(source, seed).inference_ops(),
            input: SyntheticDigits::new().sample(7, &mut rng).input,
        },
        "darknet" => Workload {
            name: format!("DarkNet (width {darknet_width})"),
            ops: darknet::build_with_width(seed, darknet_width).inference_ops(),
            input: SyntheticRgb::new().sample(2, &mut rng).input,
        },
        other => {
            eprintln!("error: unknown model {other:?}; use lenet|darknet");
            std::process::exit(2);
        }
    }
}

fn main() {
    let seed: u64 = cli::arg("seed", 42);
    let source: WeightSource = cli::arg("weights", WeightSource::Trained);
    let darknet_width: usize = cli::arg("darknet-width", 8);
    let sequential = cli::flag("sequential");
    let json_path: Option<String> = cli::opt_arg("json");

    let models: Vec<String> = cli::list_arg("models", vec!["lenet".into()]);
    let meshes: Vec<MeshSpec> = cli::list_arg("meshes", MeshSpec::PAPER.to_vec());
    let formats: Vec<DataFormat> =
        cli::list_arg("formats", vec![DataFormat::Float32, DataFormat::Fixed8]);
    let orderings: Vec<OrderingMethod> = cli::list_arg("orderings", OrderingMethod::ALL.to_vec());
    let tiebreaks: Vec<TieBreak> = cli::list_arg("ties", vec![TieBreak::Stable]);
    let fx8_globals = if cli::flag("fx8-global") {
        vec![true]
    } else {
        vec![false]
    };

    let workloads: Vec<Workload> = models
        .iter()
        .map(|m| build_workload(m, source, seed, darknet_width))
        .collect();

    let cells = expand_grid(
        workloads.len(),
        &meshes,
        &formats,
        &orderings,
        &tiebreaks,
        &fx8_globals,
    );
    eprintln!(
        "# sweep: {} workloads x {} meshes x {} formats x {} orderings x {} ties = {} cells",
        workloads.len(),
        meshes.len(),
        formats.len(),
        orderings.len(),
        tiebreaks.len(),
        cells.len()
    );
    let outcomes = run_cells(&workloads, cells, sequential);

    println!(
        "{:<24} {:<9} {:<9} {:>4} {:>7} {:>16} {:>10} {:>10} {:>8}",
        "workload", "NoC", "format", "ord", "ties", "total BTs", "reduction", "cycles", "wall"
    );
    for o in &outcomes {
        if let Some(e) = &o.error {
            eprintln!(
                "error: {} {} {} {}: {e}",
                workloads[o.cell.workload].name, o.cell.mesh, o.cell.format, o.cell.ordering
            );
            continue;
        }
        let reduction = baseline_of(&outcomes, &o.cell)
            .filter(|b| b.transitions > 0)
            .map_or(0.0, |b| {
                (b.transitions as f64 - o.transitions as f64) / b.transitions as f64 * 100.0
            });
        println!(
            "{:<24} {:<9} {:<9} {:>4} {:>7} {:>16} {:>9.2}% {:>10} {:>6}ms",
            workloads[o.cell.workload].name,
            o.cell.mesh.label(),
            o.cell.format.name(),
            o.cell.ordering.label(),
            format!("{:?}", o.cell.tiebreak).to_lowercase(),
            o.transitions,
            reduction,
            o.cycles,
            o.wall_ms
        );
    }

    if let Some(path) = json_path {
        let json = outcomes_json(&workloads, &outcomes);
        experiments::json::write_file(std::path::Path::new(&path), &json)
            .unwrap_or_else(|e| eprintln!("error: could not write {path}: {e}"));
        println!("# wrote {path}");
    }
}
