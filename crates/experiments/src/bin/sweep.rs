//! The general sweep front-end: any `(model × mesh × format × ordering ×
//! tiebreak × fx8 scheme × codec × codec scope × batch × engine)` grid,
//! fanned out in parallel, with machine-readable JSON results.
//!
//! This is the scaling successor to the per-figure binaries: the
//! `fig12_noc_sizes` and `fig13_models` presets replace the binaries of
//! the same names, and further presets cover the sensitivity grids and
//! the `{ordering × codec}` ablations, at any subset of the cross
//! product.
//!
//! Usage:
//! `cargo run --release -p experiments --bin sweep -- \
//!     [--preset smoke|fig12_noc_sizes|fig13_models|ablation_orderings|ablation_codecs|ablation_scopes|ablation_faults|ablation_faults_burst] \
//!     [--models lenet,darknet] [--weights trained] [--seed 42] \
//!     [--meshes 4x4x2,8x8x4,8x8x8] [--formats f32,fx8] \
//!     [--orderings O0,O1,O2] [--ties stable,value] [--fx8-global] \
//!     [--codecs none,bus-invert,delta-xor] \
//!     [--codec-scope per-packet,per-link] [--batch 1,4,16] \
//!     [--engine cycle,analytic,auto] [--driver pipelined|sync] [--shard 0/4] \
//!     [--ber 0,1e-7,1e-6] [--edc none,parity,crc8] \
//!     [--resync reseed,continuous] [--fault-mode per-flit,burst] [--fault-armed] \
//!     [--darknet-width 8] [--sequential] [--json sweep.json]`
//!
//! A `--preset` sets the grid axes (explicit flags still override);
//! `--shard i/n` runs the deterministic `i mod n` slice of the expanded
//! cells so one grid can span processes or hosts; and
//! `--merge a.json,b.json --json out.json` skips simulation entirely and
//! concatenates/validates previously written result files.
//!
//! `--fault-armed` runs every cell through the full EDC/retransmission
//! receive path even at BER zero; the flag is not serialized, so diffing
//! an armed zero-BER result file against a plain one pins the zero-BER
//! equivalence of the fault machinery (CI does exactly that).
//!
//! `--json` writes the `btr-sweep-v8` schema described in EXPERIMENTS.md.

use btr_accel::config::DriverMode;
use btr_bits::word::DataFormat;
use btr_core::codec::{CodecKind, CodecScope, ResyncPolicy};
use btr_core::edc::EdcKind;
use btr_core::ordering::{OrderingMethod, TieBreak};
use btr_dnn::data::{SyntheticDigits, SyntheticRgb};
use btr_dnn::models::darknet;
use btr_noc::fault::{BitErrorRate, FaultMode};
use btr_noc::EngineMode;
use experiments::cli;
use experiments::json::Json;
use experiments::sweep::{
    baseline_index, expand_grid, merge_sweep_json, outcomes_json, reduction_vs_baseline,
    run_cells_with, MeshSpec, Shard, Workload,
};
use experiments::workloads::{lenet, WeightSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Minimum input-pool size per workload. The actual pool is sized to
/// the largest `--batch` value (distinct samples, deterministic per
/// seed), so batched cells never replay an input — `batch_inputs`
/// errors loudly rather than cycling.
const INPUT_POOL_MIN: usize = 16;

/// Axis defaults a `--preset` installs (explicit flags still win).
struct Preset {
    models: Vec<String>,
    weights: WeightSource,
    meshes: Vec<MeshSpec>,
    formats: Vec<DataFormat>,
    orderings: Vec<OrderingMethod>,
    tiebreaks: Vec<TieBreak>,
    codecs: Vec<CodecKind>,
    scopes: Vec<CodecScope>,
    batches: Vec<usize>,
    engines: Vec<EngineMode>,
    bers: Vec<f64>,
    edcs: Vec<EdcKind>,
    resyncs: Vec<ResyncPolicy>,
    fault_modes: Vec<FaultMode>,
}

impl Preset {
    fn general() -> Self {
        Preset {
            models: vec!["lenet".into()],
            weights: WeightSource::Trained,
            meshes: MeshSpec::PAPER.to_vec(),
            formats: vec![DataFormat::Float32, DataFormat::Fixed8],
            orderings: OrderingMethod::ALL.to_vec(),
            tiebreaks: vec![TieBreak::Stable],
            codecs: vec![CodecKind::Unencoded],
            scopes: vec![CodecScope::PerPacket],
            batches: vec![1],
            engines: vec![EngineMode::Cycle],
            bers: vec![0.0],
            edcs: vec![EdcKind::None],
            resyncs: vec![ResyncPolicy::ReseedOnRetry],
            fault_modes: vec![FaultMode::PerFlit],
        }
    }

    fn resolve(name: &str) -> Self {
        let small_mesh = vec![MeshSpec {
            width: 4,
            height: 4,
            mc_count: 2,
        }];
        match name {
            "general" => Self::general(),
            // Fast CI-sized slice exercising the codec axis end to end:
            // random weights (no training), one mesh, fixed-8 only.
            "smoke" => Preset {
                weights: WeightSource::Random,
                meshes: small_mesh,
                formats: vec![DataFormat::Fixed8],
                orderings: vec![OrderingMethod::Baseline, OrderingMethod::Separated],
                codecs: CodecKind::ALL.to_vec(),
                ..Self::general()
            },
            // Fig. 12 — BTs across NoC sizes (successor of the retired
            // `fig12_noc_sizes` binary): full LeNet inference on all
            // three paper meshes × both formats × O0/O1/O2.
            // Paper: O1 12.09–18.58% (f32) / 7.88–17.75% (fx8);
            // O2 23.30–32.01% (f32) / 16.95–35.93% (fx8); MC4 highest
            // absolute BTs (more hops per MC).
            "fig12_noc_sizes" => Self::general(),
            // Fig. 13 — normalized BTs across models (successor of the
            // retired `fig13_models` binary): LeNet vs the reduced
            // DarkNet on the 4×4 MC2 mesh. Paper: up to 35.93% (LeNet)
            // and 40.85% (DarkNet); separated-ordering always wins.
            "fig13_models" => Preset {
                models: vec!["lenet".into(), "darknet".into()],
                meshes: small_mesh,
                ..Self::general()
            },
            // The ordering ablation (successor of the retired
            // `ablation_orderings` binary): O0/O1/O2 × tiebreaks on the
            // unencoded link, full inference instead of a weight stream.
            "ablation_orderings" => Preset {
                meshes: small_mesh,
                formats: vec![DataFormat::Fixed8],
                tiebreaks: vec![TieBreak::Stable, TieBreak::Value],
                ..Self::general()
            },
            // Does ordering still win once the link is coded, and do
            // they compose? {O0,O1,O2} × {none, bus-invert, delta-xor}.
            "ablation_codecs" => Preset {
                meshes: small_mesh,
                formats: vec![DataFormat::Fixed8],
                codecs: CodecKind::ALL.to_vec(),
                ..Self::general()
            },
            // Does codec state ownership matter? {O0,O2} × every codec ×
            // {per-packet, per-link}: per-packet re-seeds the codec on
            // each packet (the pre-refactor model), per-link gives every
            // directed link persistent state across packets/batches/
            // layers — the wires the related work measures power on.
            "ablation_scopes" => Preset {
                meshes: small_mesh,
                formats: vec![DataFormat::Fixed8],
                orderings: vec![OrderingMethod::Baseline, OrderingMethod::Separated],
                codecs: CodecKind::ALL.to_vec(),
                scopes: CodecScope::ALL.to_vec(),
                ..Self::general()
            },
            // What do unreliable links cost, and does ordering still pay
            // for itself once every frame carries a CRC and some packets
            // go around twice? {O0,O2} × {none, delta-xor/per-link} ×
            // BER {0, 1e-7, 1e-6} with CRC-8 frames and reseed-on-retry
            // recovery. The BER-0 rows isolate the pure EDC wire cost;
            // the others add real retransmission traffic.
            "ablation_faults" => Preset {
                meshes: small_mesh,
                formats: vec![DataFormat::Fixed8],
                orderings: vec![OrderingMethod::Baseline, OrderingMethod::Separated],
                codecs: vec![CodecKind::Unencoded, CodecKind::DeltaXor],
                scopes: vec![CodecScope::PerLink],
                bers: vec![0.0, 1e-7, 1e-6],
                edcs: vec![EdcKind::Crc8],
                ..Self::general()
            },
            // The same unreliable-link grid under burst errors: each
            // payload flit draws once against the BER and a hit flips a
            // contiguous 2-8 wire run, so a burst almost always lands
            // inside one CRC-8 frame and retries cluster. Draws are
            // per flit event rather than per wire bit, so the
            // interesting regime sits at much higher nominal rates than
            // the per-bit grid (1e-5/1e-4 here vs 1e-7/1e-6 there).
            "ablation_faults_burst" => Preset {
                meshes: small_mesh,
                formats: vec![DataFormat::Fixed8],
                orderings: vec![OrderingMethod::Baseline, OrderingMethod::Separated],
                codecs: vec![CodecKind::Unencoded, CodecKind::DeltaXor],
                scopes: vec![CodecScope::PerLink],
                bers: vec![0.0, 1e-5, 1e-4],
                edcs: vec![EdcKind::Crc8],
                fault_modes: vec![FaultMode::Burst],
                ..Self::general()
            },
            other => {
                eprintln!(
                    "error: unknown preset {other:?}; use \
                     general|smoke|fig12_noc_sizes|fig13_models|\
                     ablation_orderings|ablation_codecs|ablation_scopes|\
                     ablation_faults|ablation_faults_burst"
                );
                std::process::exit(2);
            }
        }
    }
}

fn build_workload(
    name: &str,
    source: WeightSource,
    seed: u64,
    darknet_width: usize,
    pool: usize,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    match name {
        "lenet" => {
            let digits = SyntheticDigits::new();
            Workload {
                name: format!("LeNet ({} weights)", source.name()),
                ops: lenet(source, seed).inference_ops(),
                inputs: (0..pool)
                    .map(|i| digits.sample((7 + i) % 10, &mut rng).input)
                    .collect(),
            }
        }
        "darknet" => {
            let rgb = SyntheticRgb::new();
            Workload {
                name: format!("DarkNet (width {darknet_width})"),
                ops: darknet::build_with_width(seed, darknet_width).inference_ops(),
                inputs: (0..pool)
                    .map(|i| rgb.sample((2 + i) % 10, &mut rng).input)
                    .collect(),
            }
        }
        other => {
            eprintln!("error: unknown model {other:?}; use lenet|darknet");
            std::process::exit(2);
        }
    }
}

/// `--merge a.json,b.json --json out.json`: concatenate + validate
/// previously written sweep results (for sharded grids).
fn run_merge(inputs: Vec<String>, json_path: Option<String>) -> ! {
    let mut docs = Vec::new();
    for path in inputs {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: could not read {path}: {e}");
            std::process::exit(2);
        });
        let doc = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: {path} is not valid JSON: {e}");
            std::process::exit(2);
        });
        docs.push((path, doc));
    }
    let merged = merge_sweep_json(&docs).unwrap_or_else(|e| {
        eprintln!("error: merge failed: {e}");
        std::process::exit(2);
    });
    let cells = match merged.get("cells") {
        Some(Json::Arr(items)) => items.len(),
        _ => 0,
    };
    let Some(path) = json_path else {
        eprintln!("error: --merge needs --json OUT to write the merged file");
        std::process::exit(2);
    };
    experiments::json::write_file(std::path::Path::new(&path), &merged).unwrap_or_else(|e| {
        eprintln!("error: could not write {path}: {e}");
        std::process::exit(2);
    });
    println!("# merged {} docs, {cells} cells -> {path}", docs.len());
    std::process::exit(0);
}

fn main() {
    let json_path: Option<String> = cli::opt_arg("json");
    if let Some(inputs) = cli::opt_arg::<String>("merge") {
        let inputs: Vec<String> = inputs
            .split(',')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        run_merge(inputs, json_path);
    }

    let preset_name: String = cli::arg("preset", "general".to_string());
    let preset = Preset::resolve(&preset_name);

    let seed: u64 = cli::arg("seed", 42);
    let source: WeightSource = cli::arg("weights", preset.weights);
    let darknet_width: usize = cli::arg("darknet-width", 8);
    let sequential = cli::flag("sequential");
    let shard: Shard = cli::arg("shard", Shard::WHOLE);
    let driver: DriverMode = cli::arg("driver", DriverMode::Pipelined);

    let models: Vec<String> = cli::list_arg("models", preset.models);
    let meshes: Vec<MeshSpec> = cli::list_arg("meshes", preset.meshes);
    let formats: Vec<DataFormat> = cli::list_arg("formats", preset.formats);
    let orderings: Vec<OrderingMethod> = cli::list_arg("orderings", preset.orderings);
    let tiebreaks: Vec<TieBreak> = cli::list_arg("ties", preset.tiebreaks);
    let codecs: Vec<CodecKind> = cli::list_arg("codecs", preset.codecs);
    let scopes: Vec<CodecScope> = cli::list_arg("codec-scope", preset.scopes);
    let batches: Vec<usize> = cli::list_arg("batch", preset.batches);
    let engines: Vec<EngineMode> = cli::list_arg("engine", preset.engines);
    let bers: Vec<BitErrorRate> = cli::list_arg("ber", preset.bers)
        .into_iter()
        .map(BitErrorRate::from_f64)
        .collect();
    let edcs: Vec<EdcKind> = cli::list_arg("edc", preset.edcs);
    let resyncs: Vec<ResyncPolicy> = cli::list_arg("resync", preset.resyncs);
    let fault_modes: Vec<FaultMode> = cli::list_arg("fault-mode", preset.fault_modes);
    let fault_armed = cli::flag("fault-armed");
    let fx8_globals = if cli::flag("fx8-global") {
        vec![true]
    } else {
        vec![false]
    };

    // Size every workload's input pool to the largest batch so no cell
    // can fall back to replaying inputs.
    let pool = INPUT_POOL_MIN.max(batches.iter().copied().max().unwrap_or(1));
    let workloads: Vec<Workload> = models
        .iter()
        .map(|m| build_workload(m, source, seed, darknet_width, pool))
        .collect();

    let cells = expand_grid(
        workloads.len(),
        &meshes,
        &formats,
        &orderings,
        &tiebreaks,
        &fx8_globals,
        &codecs,
        &scopes,
        &batches,
        &engines,
        &bers,
        &edcs,
        &resyncs,
        &fault_modes,
    );
    let total = cells.len();
    let mut cells = shard.select(cells);
    if fault_armed {
        for cell in &mut cells {
            cell.fault_armed = true;
        }
    }
    eprintln!(
        "# sweep [{preset_name}]: {} workloads x {} meshes x {} formats x {} orderings x {} ties \
         x {} codecs x {} scopes x {} batches x {} engines x {} bers x {} edcs x {} resyncs \
         x {} fault modes = {total} cells (shard {shard}: {} cells, {driver} driver{})",
        workloads.len(),
        meshes.len(),
        formats.len(),
        orderings.len(),
        tiebreaks.len(),
        codecs.len(),
        scopes.len(),
        batches.len(),
        engines.len(),
        bers.len(),
        edcs.len(),
        resyncs.len(),
        fault_modes.len(),
        cells.len(),
        if fault_armed {
            ", fault path armed"
        } else {
            ""
        }
    );
    let outcomes = run_cells_with(&workloads, cells, sequential, driver);
    let baselines = baseline_index(&outcomes);

    println!(
        "{:<24} {:<9} {:<9} {:>4} {:>7} {:>11} {:>10} {:>5} {:>9} {:>7} {:>6} {:>16} {:>10} {:>11} {:>8} {:>7} {:>10} {:>8}",
        "workload",
        "NoC",
        "format",
        "ord",
        "ties",
        "codec",
        "scope",
        "batch",
        "engine",
        "ber",
        "edc",
        "total BTs",
        "reduction",
        "energy mJ",
        "retx",
        "ok%",
        "cycles",
        "wall"
    );
    for o in &outcomes {
        if let Some(e) = &o.error {
            eprintln!(
                "error: {} {} {} {} {} {} b{}: {e}",
                workloads[o.cell.workload].name,
                o.cell.mesh,
                o.cell.format,
                o.cell.ordering,
                o.cell.codec,
                o.cell.scope,
                o.cell.batch
            );
            continue;
        }
        let reduction = reduction_vs_baseline(&baselines, o).map_or(0.0, |r| r * 100.0);
        println!(
            "{:<24} {:<9} {:<9} {:>4} {:>7} {:>11} {:>10} {:>5} {:>9} {:>7} {:>6} {:>16} {:>9.2}% {:>11.4} {:>8} {:>6.2}% {:>10} {:>6}ms",
            workloads[o.cell.workload].name,
            o.cell.mesh.label(),
            o.cell.format.name(),
            o.cell.ordering.label(),
            format!("{:?}", o.cell.tiebreak).to_lowercase(),
            o.cell.codec.label(),
            o.cell.scope.label(),
            o.cell.batch,
            o.cell.engine.label(),
            format!("{:.0e}", o.cell.ber.as_f64()),
            o.cell.edc.label(),
            o.transitions,
            reduction,
            o.link_energy_mj,
            o.retransmitted_flits,
            o.delivered_ok_fraction * 100.0,
            o.cycles,
            o.wall_ms
        );
    }

    if let Some(path) = json_path {
        let json = outcomes_json(&workloads, &outcomes);
        experiments::json::write_file(std::path::Path::new(&path), &json)
            .unwrap_or_else(|e| eprintln!("error: could not write {path}: {e}"));
        println!("# wrote {path}");
    }
}
