//! Table II — synthesis results of the ordering unit and router.
//!
//! Regenerates the table from the calibrated gate-equivalent models and
//! prints the deployment comparison (4 units vs 64 routers) plus the
//! sorter-network ablation (not in the paper).
//!
//! Usage: `cargo run --release -p experiments --bin table2_synthesis`

use btr_hw::area::{OrderingUnitDesign, RouterDesign, SorterNetwork, Technology};
use btr_hw::power::DeploymentPower;
use btr_hw::table2::Table2;

fn main() {
    let tech = Technology::tsmc90();
    println!("{}", Table2::generate(&tech));

    let deployment = DeploymentPower::compute(
        &OrderingUnitDesign::paper_default(),
        &RouterDesign::paper_default(),
        &tech,
        4,
        64,
        tech.frequency_mhz,
    );
    println!(
        "deployment (8x8 NoC, 4 MCs): units {:.3} mW vs routers {:.2} mW ({:.2}% overhead)",
        deployment.units_total_mw,
        deployment.routers_total_mw,
        deployment.overhead_fraction() * 100.0
    );

    println!();
    println!("sorter-network ablation (16 values, 32-bit words):");
    println!(
        "{:<28} {:>10} {:>10} {:>8}",
        "network", "area kGE", "power mW", "cycles"
    );
    for sorter in SorterNetwork::ALL {
        let unit = OrderingUnitDesign {
            sorter,
            ..OrderingUnitDesign::paper_default()
        };
        println!(
            "{:<28} {:>10.2} {:>10.3} {:>8}",
            format!("{sorter:?}"),
            unit.area_kge(&tech),
            unit.power_mw(&tech, tech.frequency_mhz),
            unit.latency_cycles()
        );
    }

    println!();
    println!("word-width scaling (bubble sorter):");
    println!("{:<10} {:>10} {:>10}", "word bits", "area kGE", "power mW");
    for bits in [8u32, 16, 32] {
        let unit = OrderingUnitDesign {
            word_bits: bits,
            ..OrderingUnitDesign::paper_default()
        };
        println!(
            "{:<10} {:>10.2} {:>10.3}",
            bits,
            unit.area_kge(&tech),
            unit.power_mw(&tech, tech.frequency_mhz)
        );
    }
}
