//! Fig. 9 — `'1'`-bit-count grid of flits before and after ordering.
//!
//! Prints rows of flits (8 weights per flit); each cell is the popcount of
//! one weight. Left grid: original order; right grid: after descending
//! popcount round-robin ordering. The visible effect is the right grid's
//! monotone columns.
//!
//! Usage: `cargo run --release -p experiments --bin fig09_ordering_example
//! [--rows 16] [--seed 42] [--weights trained]`

use btr_core::stream::{evaluate_windowed, Comparison, Placement, TieBreak, WindowConfig};
use experiments::cli;
use experiments::workloads::{fx8_kernel_packets, lenet, sample_packets, WeightSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let rows: usize = cli::arg("rows", 16);
    let seed: u64 = cli::arg("seed", 42);
    let source: WeightSource = cli::arg("weights", WeightSource::Trained);

    let model = lenet(source, seed);
    let pool = fx8_kernel_packets(&model, 25);
    let mut rng = StdRng::seed_from_u64(seed);
    let packets = sample_packets(&pool, rows.div_ceil(4) + 1, &mut rng);

    // Row-major placement shows Fig. 9's visual: a globally descending
    // popcount grid (round-robin is the default transmit placement).
    let config = WindowConfig {
        values_per_flit: 8,
        window_packets: packets.len(),
        placement: Placement::RowMajor,
        tiebreak: TieBreak::Stable,
    };
    let before = evaluate_windowed(&packets, &config, false, Comparison::Consecutive, rows);
    let after = evaluate_windowed(&packets, &config, true, Comparison::Consecutive, rows);

    println!(
        "Fig. 9: fixed-8 {} weights, popcount per flit slot",
        source.name()
    );
    println!(
        "{:<6} {:<28} {:<28}",
        "flit", "before ordering", "after ordering"
    );
    for (i, (b, a)) in before
        .popcount_grid
        .iter()
        .zip(after.popcount_grid.iter())
        .enumerate()
    {
        let fmt = |row: &Vec<u32>| {
            row.iter()
                .map(|pc| format!("{pc:>2}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!("{i:<6} {:<28} {:<28}", fmt(b), fmt(a));
    }
    println!();
    println!(
        "stream BT/flit: before {:.2}, after {:.2} ({:.2}% reduction)",
        before.bt_per_flit,
        after.bt_per_flit,
        (1.0 - after.bt_per_flit / before.bt_per_flit) * 100.0
    );
}
