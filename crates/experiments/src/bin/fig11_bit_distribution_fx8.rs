//! Fig. 11 — fixed-8 weight bit analysis (Fig. 10's fixed-point analog).
//!
//! The headline effect lives in the bottom-right quadrant: for trained
//! fixed-8 weights the ordered transition probabilities drop far below the
//! baseline, matching Table I's 55.71% reduction.
//!
//! Usage: `cargo run --release -p experiments --bin
//! fig11_bit_distribution_fx8 [--packets 10000] [--seed 42]`

use btr_core::stream::{evaluate_windowed, word_bit_statistics, Comparison, WindowConfig};
use experiments::cli;
use experiments::workloads::{
    flatten_packets, fx8_kernel_packets, lenet_random, lenet_trained, sample_packets,
    DEFAULT_EPOCHS, DEFAULT_TRAIN_SAMPLES,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let packets: usize = cli::arg("packets", 10_000);
    let seed: u64 = cli::arg("seed", 42);

    println!("# Fig. 11: fixed-8 weight bit analysis");
    for (label, model) in [
        ("random", lenet_random(seed)),
        (
            "trained",
            lenet_trained(seed, DEFAULT_TRAIN_SAMPLES, DEFAULT_EPOCHS),
        ),
    ] {
        let pool = fx8_kernel_packets(&model, 25);
        let mut rng = StdRng::seed_from_u64(seed);
        let stream = sample_packets(&pool, packets, &mut rng);

        let words = flatten_packets(&stream);
        let stats = word_bit_statistics(&words);
        let ones = stats.one_probability();

        let config = WindowConfig::table1();
        let comparison = Comparison::RandomPairs {
            pairs: packets * 4,
            seed,
        };
        let base = evaluate_windowed(&stream, &config, false, comparison, 0);
        let ordered = evaluate_windowed(&stream, &config, true, comparison, 0);

        println!("section,{label}");
        println!("bit,ones_prob,trans_prob_baseline,trans_prob_ordered");
        // x-axis from the sign bit (MSB) as in the paper.
        for pos in 0..8usize {
            let lsb_index = 7 - pos;
            println!(
                "{},{:.4},{:.4},{:.4}",
                pos + 1,
                ones[lsb_index],
                base.word_transition_probability[lsb_index],
                ordered.word_transition_probability[lsb_index],
            );
        }
        println!();
    }
}
