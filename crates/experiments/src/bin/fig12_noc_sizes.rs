//! Fig. 12 — BTs across different NoC sizes.
//!
//! Runs a complete LeNet inference on the NOC-DNA for every combination of
//! NoC size (4×4 MC2, 8×8 MC4, 8×8 MC8), ordering (O0, O1, O2) and data
//! format (float-32/512-bit, fixed-8/128-bit), and reports absolute BTs
//! and reduction rates.
//!
//! Paper reference: affiliated 12.09–18.58% (f32) / 7.88–17.75% (fx8);
//! separated 23.30–32.01% (f32) / 16.95–35.93% (fx8); MC4 has the highest
//! absolute BTs (more hops per MC).
//!
//! Usage: `cargo run --release -p experiments --bin fig12_noc_sizes
//! [--weights trained] [--seed 42] [--sequential]`

use btr_accel::config::AccelConfig;
use btr_accel::driver::run_inference;
use btr_bits::word::DataFormat;
use btr_core::ordering::TieBreak;
use btr_core::OrderingMethod;
use btr_dnn::data::SyntheticDigits;
use experiments::cli;
use experiments::workloads::{lenet, WeightSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed: u64 = cli::arg("seed", 42);
    let source = WeightSource::parse(&cli::arg::<String>("weights", "trained".into()));
    let sequential = cli::flag("sequential");
    let tiebreak = TieBreak::parse(&cli::arg::<String>("ties", "stable".into()));
    let fx8_global = cli::flag("fx8-global");

    let model = lenet(source, seed);
    let ops = model.inference_ops();
    let mut rng = StdRng::seed_from_u64(seed);
    let input = SyntheticDigits::new().sample(7, &mut rng).input;

    let mesh_configs: [(usize, usize, usize, &str); 3] =
        [(4, 4, 2, "4x4 MC2"), (8, 8, 4, "8x8 MC4"), (8, 8, 8, "8x8 MC8")];
    let formats = [DataFormat::Float32, DataFormat::Fixed8];

    // One job per (mesh, format, ordering); run in parallel by default.
    struct Job {
        mesh: usize,
        format: usize,
        ordering: OrderingMethod,
        transitions: u64,
        cycles: u64,
        flit_hops: u64,
    }
    let mut jobs: Vec<Job> = Vec::new();
    for (mi, _) in mesh_configs.iter().enumerate() {
        for (fi, _) in formats.iter().enumerate() {
            for ordering in OrderingMethod::ALL {
                jobs.push(Job {
                    mesh: mi,
                    format: fi,
                    ordering,
                    transitions: 0,
                    cycles: 0,
                    flit_hops: 0,
                });
            }
        }
    }

    let run_job = |job: &mut Job| {
        let (w, h, mc, _) = mesh_configs[job.mesh];
        let mut config = AccelConfig::paper(w, h, mc, formats[job.format], job.ordering);
        config.tiebreak = tiebreak;
        config.global_fx8_weights = fx8_global;
        let result = run_inference(&ops, &input, &config).expect("inference completes");
        job.transitions = result.stats.total_transitions;
        job.cycles = result.total_cycles;
        job.flit_hops = result.stats.flit_hops;
    };

    if sequential {
        for job in &mut jobs {
            run_job(job);
        }
    } else {
        crossbeam::thread::scope(|scope| {
            for job in &mut jobs {
                scope.spawn(|_| run_job(job));
            }
        })
        .expect("worker threads join");
    }

    println!(
        "Fig. 12: LeNet ({} weights) full inference, seed {seed}",
        source.name()
    );
    println!(
        "{:<9} {:<9} {:>4} {:>16} {:>10} {:>12} {:>10}",
        "NoC", "format", "ord", "total BTs", "reduction", "flit-hops", "cycles"
    );
    for (mi, (_, _, _, mesh_name)) in mesh_configs.iter().enumerate() {
        for (fi, format) in formats.iter().enumerate() {
            let baseline = jobs
                .iter()
                .find(|j| j.mesh == mi && j.format == fi && j.ordering == OrderingMethod::Baseline)
                .expect("baseline job exists")
                .transitions;
            for ordering in OrderingMethod::ALL {
                let job = jobs
                    .iter()
                    .find(|j| j.mesh == mi && j.format == fi && j.ordering == ordering)
                    .expect("job exists");
                let reduction = if baseline == 0 {
                    0.0
                } else {
                    (baseline as f64 - job.transitions as f64) / baseline as f64 * 100.0
                };
                println!(
                    "{:<9} {:<9} {:>4} {:>16} {:>9.2}% {:>12} {:>10}",
                    mesh_name,
                    format.name(),
                    ordering.label(),
                    job.transitions,
                    reduction,
                    job.flit_hops,
                    job.cycles
                );
            }
        }
    }
    println!();
    println!("# paper: O1 12.09-18.58% (f32), 7.88-17.75% (fx8); O2 23.30-32.01% (f32), 16.95-35.93% (fx8)");
}
