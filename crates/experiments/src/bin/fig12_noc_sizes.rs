//! Fig. 12 — BTs across different NoC sizes.
//!
//! Runs a complete LeNet inference on the NOC-DNA for every combination of
//! NoC size (4×4 MC2, 8×8 MC4, 8×8 MC8), ordering (O0, O1, O2) and data
//! format (float-32/512-bit, fixed-8/128-bit), and reports absolute BTs
//! and reduction rates. Cells fan out over the parallel sweep runner;
//! `--json PATH` additionally writes the `btr-sweep-v1` result file.
//!
//! Paper reference: affiliated 12.09–18.58% (f32) / 7.88–17.75% (fx8);
//! separated 23.30–32.01% (f32) / 16.95–35.93% (fx8); MC4 has the highest
//! absolute BTs (more hops per MC).
//!
//! Usage: `cargo run --release -p experiments --bin fig12_noc_sizes
//! [--weights trained] [--seed 42] [--ties stable] [--fx8-global]
//! [--sequential] [--json fig12.json]`

use btr_bits::word::DataFormat;
use btr_core::codec::CodecKind;
use btr_core::ordering::{OrderingMethod, TieBreak};
use btr_dnn::data::SyntheticDigits;
use experiments::cli;
use experiments::sweep::{baseline_of, expand_grid, outcomes_json, run_cells, MeshSpec, Workload};
use experiments::workloads::{lenet, WeightSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed: u64 = cli::arg("seed", 42);
    let source: WeightSource = cli::arg("weights", WeightSource::Trained);
    let sequential = cli::flag("sequential");
    let tiebreak: TieBreak = cli::arg("ties", TieBreak::Stable);
    let fx8_global = cli::flag("fx8-global");
    let json_path: Option<String> = cli::opt_arg("json");

    let model = lenet(source, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let input = SyntheticDigits::new().sample(7, &mut rng).input;
    let workloads = vec![Workload {
        name: format!("LeNet ({} weights)", source.name()),
        ops: model.inference_ops(),
        input,
    }];

    let formats = [DataFormat::Float32, DataFormat::Fixed8];
    let cells = expand_grid(
        workloads.len(),
        &MeshSpec::PAPER,
        &formats,
        &OrderingMethod::ALL,
        &[tiebreak],
        &[fx8_global],
        &[CodecKind::Unencoded],
    );
    let outcomes = run_cells(&workloads, cells, sequential);

    println!(
        "Fig. 12: LeNet ({} weights) full inference, seed {seed}",
        source.name()
    );
    println!(
        "{:<9} {:<9} {:>4} {:>16} {:>10} {:>12} {:>10}",
        "NoC", "format", "ord", "total BTs", "reduction", "flit-hops", "cycles"
    );
    for o in &outcomes {
        if let Some(e) = &o.error {
            eprintln!(
                "error: {} {} {}: {e}",
                o.cell.mesh, o.cell.format, o.cell.ordering
            );
            continue;
        }
        let baseline = baseline_of(&outcomes, &o.cell).map_or(0, |b| b.transitions);
        let reduction = if baseline == 0 {
            0.0
        } else {
            (baseline as f64 - o.transitions as f64) / baseline as f64 * 100.0
        };
        println!(
            "{:<9} {:<9} {:>4} {:>16} {:>9.2}% {:>12} {:>10}",
            o.cell.mesh.label(),
            o.cell.format.name(),
            o.cell.ordering.label(),
            o.transitions,
            reduction,
            o.flit_hops,
            o.cycles
        );
    }
    println!();
    println!("# paper: O1 12.09-18.58% (f32), 7.88-17.75% (fx8); O2 23.30-32.01% (f32), 16.95-35.93% (fx8)");

    if let Some(path) = json_path {
        let json = outcomes_json(&workloads, &outcomes);
        experiments::json::write_file(std::path::Path::new(&path), &json)
            .unwrap_or_else(|e| eprintln!("error: could not write {path}: {e}"));
        println!("# wrote {path}");
    }
}
