//! SWAR popcount (the hardware unit's algorithm) vs native `count_ones`.

use btr_bits::swar;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("popcount");
    let data32: Vec<u32> = (0..4096u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    let data8: Vec<u8> = (0..4096u32).map(|i| (i * 37) as u8).collect();

    group.bench_function("swar_u32_4096", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &data32 {
                acc = acc.wrapping_add(swar::popcount_u32(black_box(x)));
            }
            acc
        })
    });
    group.bench_function("native_u32_4096", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &data32 {
                acc = acc.wrapping_add(black_box(x).count_ones());
            }
            acc
        })
    });
    group.bench_function("swar_u8_4096", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &data8 {
                acc = acc.wrapping_add(swar::popcount_u8(black_box(x)));
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
