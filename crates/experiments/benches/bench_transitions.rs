//! Bit-transition counting on link images (the per-hop hot path of the
//! NoC simulator, Fig. 8).

use btr_bits::payload::PayloadBits;
use btr_bits::transition::TransitionRecorder;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_images(width: u32, count: usize, seed: u64) -> Vec<PayloadBits> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut p = PayloadBits::zero(width);
            let mut off = 0;
            while off < width {
                let len = 64.min(width - off);
                p.set_field(off, len, rng.gen());
                off += len;
            }
            p
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("transitions");
    for width in [128u32, 512] {
        let images = random_images(width, 1024, 7);
        group.bench_function(format!("xor_popcount_w{width}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for pair in images.windows(2) {
                    acc += u64::from(black_box(&pair[1]).transitions_to(&pair[0]));
                }
                acc
            })
        });
        group.bench_function(format!("recorder_total_only_w{width}"), |b| {
            b.iter(|| {
                let mut rec = TransitionRecorder::total_only(width);
                for img in &images {
                    rec.observe(black_box(img));
                }
                rec.total()
            })
        });
        group.bench_function(format!("recorder_with_positions_w{width}"), |b| {
            b.iter(|| {
                let mut rec = TransitionRecorder::new(width);
                for img in &images {
                    rec.observe(black_box(img));
                }
                rec.total()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
