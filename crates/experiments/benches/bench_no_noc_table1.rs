//! The Table I pipeline (reduced packet count): packet sampling,
//! flitization, ordering, and BT accounting on one link.

use btr_core::stream::compare_streams;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::workloads::{
    f32_kernel_packets, fx8_kernel_packets, lenet_random, sample_packets,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let model = lenet_random(42);
    let f32_pool = f32_kernel_packets(&model, 25);
    let fx8_pool = fx8_kernel_packets(&model, 25);
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("f32_random_500pkts", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let stream = sample_packets(&f32_pool, 500, &mut rng);
            compare_streams(&stream, 8, 0).reduction_rate
        })
    });
    group.bench_function("fx8_random_500pkts", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let stream = sample_packets(&fx8_pool, 500, &mut rng);
            compare_streams(&stream, 8, 0).reduction_rate
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
