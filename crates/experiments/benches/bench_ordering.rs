//! Throughput of the ordering rule and the hardware-unit sorting networks.

use btr_bits::word::Fx8Word;
use btr_core::ordering::descending_popcount_order;
use btr_core::unit::{OrderingUnit, SorterKind};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn words(n: usize, seed: u64) -> Vec<Fx8Word> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Fx8Word::new(rng.gen())).collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordering");
    for n in [16usize, 64, 256] {
        let data = words(n, n as u64);
        group.bench_function(format!("descending_sort_n{n}"), |b| {
            b.iter(|| descending_popcount_order(black_box(&data)))
        });
    }
    let data = words(16, 3);
    for kind in SorterKind::ALL {
        let unit = OrderingUnit::new(kind);
        group.bench_function(format!("unit_{kind:?}_n16"), |b| {
            b.iter(|| unit.sort_descending(black_box(&data)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
