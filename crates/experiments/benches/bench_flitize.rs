//! Task flitization + ordering cost (the MC-side per-packet work).

use btr_bits::word::Fx8Word;
use btr_core::flitize::{flitize_values, order_task};
use btr_core::task::NeuronTask;
use btr_core::OrderingMethod;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn task(pairs: usize, seed: u64) -> NeuronTask<Fx8Word> {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs: Vec<Fx8Word> = (0..pairs).map(|_| Fx8Word::new(rng.gen())).collect();
    let weights: Vec<Fx8Word> = (0..pairs).map(|_| Fx8Word::new(rng.gen())).collect();
    NeuronTask::new(inputs, weights, Fx8Word::new(1)).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("flitize");
    for pairs in [25usize, 150, 400] {
        let t = task(pairs, pairs as u64);
        for method in OrderingMethod::ALL {
            group.bench_function(format!("order_task_{}_{pairs}p", method.label()), |b| {
                b.iter(|| order_task(black_box(&t), method, 16).unwrap())
            });
        }
    }
    let mut rng = StdRng::seed_from_u64(1);
    let values: Vec<Fx8Word> = (0..25).map(|_| Fx8Word::new(rng.gen())).collect();
    group.bench_function("flitize_values_25", |b| {
        b.iter(|| flitize_values(black_box(&values), 8, true))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
