//! Throughput of the encode front-end (`order → flitize → codec`),
//! measured at two levels:
//!
//! 1. **`ordering_kernel`** — the descending-order permutation alone:
//!    the counting-sort kernel (`descending_order_into`) against the
//!    preserved comparison sort (`descending_order_comparison_into`) on
//!    identical word sets, both tie rules. This isolates the O(n log n)
//!    → O(n) half of the tentpole.
//!
//! 2. **`encode`** — the per-task encode stage in the driver's shape:
//!    one layer of kernel groups (weights/bias fixed, activations vary
//!    per task), every task encoded through three paths over the *same*
//!    operands:
//!    - `reference_*` — `encode_task_reference`: eager slot-level
//!      materialization with a full per-task weight sort (the
//!      `DriverMode::Synchronous` oracle);
//!    - `cached_*` — `encode_parts_cached` with the per-group weight
//!      permutation precomputed (the pre-template hot path: weights are
//!      sorted once per layer but still re-rendered into flit images on
//!      every task);
//!    - `template_*` — `encode_with_template` off pre-rendered weight
//!      flit templates (this PR's hot path: clone the static weight
//!      half, OR-deal only the activation lanes).
//!
//!    Group setup (weight sorting, template rendering, task operand
//!    materialization) runs in `iter_batched` *setup*, so the timed
//!    region holds per-task encode work only — the quantity the driver's
//!    encoder threads pay per task of every request.
//!
//! Writes `BENCH_encode.json` / `BENCH_ordering_kernel.json` (schema
//! `btr-bench-v1`) like every bench group, then reads them back to
//! print per-task costs and speedups.
//!
//! `BTR_BENCH_ENCODE_SMOKE=1` shrinks sample counts and **asserts** the
//! fast paths' reason to exist: the template path must beat the
//! sorted-baseline (`cached_*`) on every measured point and beat the
//! pre-template paths ≥3x on the affiliated point, and the counting
//! sort must not lose to the comparison sort. The gates use `min_ns`
//! (the least-interrupted sample) with deliberately conservative
//! margins — this container's wall clock drifts by tens of percent
//! under co-tenancy, which swamps mean-based ratios.

use btr_bits::word::Fx8Word;
use btr_core::codec::{CodecKind, CodecScope};
use btr_core::edc::EdcKind;
use btr_core::flitize::EncodeTemplate;
use btr_core::ordering::{OrderingMethod, SortScratch, TieBreak};
use btr_core::task::NeuronTask;
use btr_core::transport::{CodedTransport, TransportConfig, TransportScratch};
use criterion::{black_box, BatchSize, Criterion};
use experiments::json::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One layer's worth of encode work in the driver's shape: `GROUPS`
/// kernel groups (LeNet conv2-ish fan-in), tasks dealt round-robin over
/// the groups like the driver's MC assignment.
const GROUPS: usize = 16;
const FAN_IN: usize = 150;
const TASKS: usize = 512;
const VPF: usize = 8;

struct LayerFixture {
    session: CodedTransport,
    /// Per-group weights and bias (request-independent).
    kernels: Vec<Vec<Fx8Word>>,
    biases: Vec<Fx8Word>,
    /// Per-task activations (fresh per request).
    activations: Vec<Vec<Fx8Word>>,
    /// Setup products the driver caches per session.
    wperms: Vec<Vec<usize>>,
    templates: Vec<EncodeTemplate>,
    /// Prebuilt tasks for the reference path (its slot materialization
    /// is part of the timed oracle, but operand assembly is not).
    tasks: Vec<NeuronTask<Fx8Word>>,
}

impl LayerFixture {
    fn new(ordering: OrderingMethod, tiebreak: TieBreak, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let session = CodedTransport::new(TransportConfig {
            ordering,
            tiebreak,
            values_per_flit: VPF,
            codec: CodecKind::Unencoded,
            scope: CodecScope::PerPacket,
            edc: EdcKind::None,
        });
        let kernels: Vec<Vec<Fx8Word>> = (0..GROUPS)
            .map(|_| (0..FAN_IN).map(|_| Fx8Word::new(rng.gen())).collect())
            .collect();
        let biases: Vec<Fx8Word> = (0..GROUPS).map(|_| Fx8Word::new(rng.gen())).collect();
        let activations: Vec<Vec<Fx8Word>> = (0..TASKS)
            .map(|_| (0..FAN_IN).map(|_| Fx8Word::new(rng.gen())).collect())
            .collect();
        let mut scratch = TransportScratch::default();
        let wperms: Vec<Vec<usize>> = kernels
            .iter()
            .map(|k| tiebreak.descending_order(k))
            .collect();
        let templates: Vec<EncodeTemplate> = kernels
            .iter()
            .zip(&biases)
            .zip(&wperms)
            .map(|((k, &b), p)| {
                let wperm = (ordering != OrderingMethod::Baseline).then_some(p.as_slice());
                session
                    .weight_template(k, b, wperm, &mut scratch)
                    .expect("template geometry")
            })
            .collect();
        let tasks: Vec<NeuronTask<Fx8Word>> = activations
            .iter()
            .enumerate()
            .map(|(j, inputs)| {
                NeuronTask::new(
                    inputs.clone(),
                    kernels[j % GROUPS].clone(),
                    biases[j % GROUPS],
                )
                .expect("task geometry")
            })
            .collect();
        Self {
            session,
            kernels,
            biases,
            activations,
            wperms,
            templates,
            tasks,
        }
    }

    /// Sanity anchor for every timed pass: total payload flits produced.
    fn encode_all(&self, path: EncodePath, scratch: &mut TransportScratch) -> usize {
        let mut flits = 0;
        for (j, inputs) in self.activations.iter().enumerate() {
            let g = j % GROUPS;
            let enc = match path {
                EncodePath::Reference => self
                    .session
                    .encode_task_reference(&self.tasks[j])
                    .expect("reference encode"),
                EncodePath::Cached => self
                    .session
                    .encode_parts_cached(
                        inputs,
                        &self.kernels[g],
                        self.biases[g],
                        Some(&self.wperms[g]),
                        scratch,
                    )
                    .expect("cached encode"),
                EncodePath::Template => self
                    .session
                    .encode_with_template(&self.templates[g], inputs, scratch)
                    .expect("template encode"),
            };
            flits += enc.into_wire_flits().len();
        }
        flits
    }
}

#[derive(Clone, Copy)]
enum EncodePath {
    Reference,
    Cached,
    Template,
}

impl EncodePath {
    const ALL: [(EncodePath, &'static str); 3] = [
        (EncodePath::Reference, "reference"),
        (EncodePath::Cached, "cached"),
        (EncodePath::Template, "template"),
    ];
}

fn main() {
    let smoke = std::env::var("BTR_BENCH_ENCODE_SMOKE").is_ok();
    let seed = 42u64;

    let mut criterion = Criterion::default();

    // Counting-sort kernel vs the preserved comparison sort, both tie
    // rules, on a conv-fan-in-sized and a large word set.
    let mut rng = StdRng::seed_from_u64(seed);
    let small: Vec<Fx8Word> = (0..FAN_IN).map(|_| Fx8Word::new(rng.gen())).collect();
    let large: Vec<Fx8Word> = (0..4096).map(|_| Fx8Word::new(rng.gen())).collect();
    let mut group = criterion.benchmark_group("ordering_kernel");
    group.sample_size(if smoke { 10 } else { 30 });
    for (shape, values) in [("n150", &small), ("n4096", &large)] {
        for tiebreak in [TieBreak::Stable, TieBreak::Value] {
            let tie = format!("{tiebreak:?}").to_lowercase();
            group.bench_function(format!("counting_{tie}_{shape}"), |b| {
                b.iter_batched(
                    || (SortScratch::default(), Vec::new()),
                    |(mut scratch, mut out)| {
                        tiebreak.descending_order_into(black_box(values), &mut scratch, &mut out);
                        out
                    },
                    BatchSize::LargeInput,
                )
            });
            group.bench_function(format!("comparison_{tie}_{shape}"), |b| {
                b.iter_batched(
                    || (SortScratch::default(), Vec::new()),
                    |(mut scratch, mut out)| {
                        tiebreak.descending_order_comparison_into(
                            black_box(values),
                            &mut scratch,
                            &mut out,
                        );
                        out
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();

    // The encode stage in the driver's two ordered configurations:
    // affiliated/stable (O1 — no per-task sort at all on the template
    // path) and separated/value (O2 — the activations still counting-sort
    // per task and the pair index rides the side channel).
    let affiliated = LayerFixture::new(OrderingMethod::Affiliated, TieBreak::Stable, seed);
    let separated = LayerFixture::new(OrderingMethod::Separated, TieBreak::Value, seed);
    let mut group = criterion.benchmark_group("encode");
    group.sample_size(if smoke { 10 } else { 20 });
    for (config, fixture) in [("affiliated", &affiliated), ("separated", &separated)] {
        let expect = fixture.encode_all(EncodePath::Reference, &mut TransportScratch::default());
        for (path, label) in EncodePath::ALL {
            assert_eq!(
                fixture.encode_all(path, &mut TransportScratch::default()),
                expect,
                "{config} {label}: every path emits the same wire flits"
            );
            group.bench_function(format!("{label}_{config}"), |b| {
                b.iter_batched(
                    TransportScratch::default,
                    |mut scratch| fixture.encode_all(black_box(path), &mut scratch),
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();

    report(smoke);
}

/// Locates the bench-JSON directory the harness wrote to (mirroring its
/// default: workspace `target/btr-bench`).
fn bench_json_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("BTR_BENCH_JSON_DIR") {
        return dir.into();
    }
    let mut probe = std::env::current_dir().expect("cwd");
    loop {
        if probe.join("Cargo.lock").exists() {
            return probe.join("target/btr-bench");
        }
        assert!(probe.pop(), "no workspace root above cwd");
    }
}

/// Reads one `BENCH_<group>.json` back (exercising the round-trip CI
/// relies on) and returns a metric lookup over its results.
fn bench_metrics(group: &str) -> impl Fn(&str, &str) -> f64 {
    let path = bench_json_dir().join(format!("BENCH_{group}.json"));
    let text = std::fs::read_to_string(&path).expect("bench JSON written");
    let doc = Json::parse(&text).expect("bench JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(experiments::json::BENCH_SCHEMA),
        "unexpected bench schema"
    );
    let results = match doc.get("results") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("bench JSON has no results array: {other:?}"),
    };
    move |name: &str, field: &str| -> f64 {
        let entry = results
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("no bench entry {name:?}"));
        match entry.get(field) {
            Some(Json::F64(v)) => *v,
            Some(Json::U64(v)) => *v as f64,
            other => panic!("{name}.{field} is not a number: {other:?}"),
        }
    }
}

/// Prints per-task costs and speedups, and in smoke mode asserts the
/// fast-path gates.
fn report(smoke: bool) {
    let kernel = bench_metrics("ordering_kernel");
    println!("\nordering kernel (permutation only, min over samples):");
    for shape in ["n150", "n4096"] {
        for tie in ["stable", "value"] {
            let c = kernel(&format!("counting_{tie}_{shape}"), "min_ns");
            let cmp = kernel(&format!("comparison_{tie}_{shape}"), "min_ns");
            println!(
                "  {tie:<7} {shape:<6} counting {c:>9.0} ns, comparison {cmp:>9.0} ns -> {:>5.2}x",
                cmp / c
            );
        }
    }

    let encode = bench_metrics("encode");
    println!("encode stage ({TASKS} tasks x {FAN_IN} operands, min over samples):");
    let per_task = |name: &str| encode(name, "min_ns") / TASKS as f64;
    for config in ["affiliated", "separated"] {
        let r = per_task(&format!("reference_{config}"));
        let c = per_task(&format!("cached_{config}"));
        let t = per_task(&format!("template_{config}"));
        println!(
            "  {config:<11} reference {r:>8.0} ns/task, cached {c:>8.0} ns/task, \
             template {t:>8.0} ns/task -> {:.2}x vs cached, {:.2}x vs reference",
            c / t,
            r / t
        );
    }

    if smoke {
        // The tentpole's claim lives at the per-task encode: dealing
        // activations into a pre-rendered weight image must clearly beat
        // re-rendering the whole image (cached) and the full re-sorting
        // oracle (reference). The affiliated point carries the ≥3x gate —
        // it is the pure template win (no per-task sort left); the
        // separated point still pays the per-task activation sort on
        // both sides, so its gate is "must win", not a fixed multiple.
        for config in ["affiliated", "separated"] {
            let cached = encode(&format!("cached_{config}"), "min_ns");
            let template = encode(&format!("template_{config}"), "min_ns");
            assert!(
                template < cached,
                "{config}: template path lost to the sorted baseline \
                 ({template} ns vs {cached} ns)"
            );
        }
        let reference = encode("reference_affiliated", "min_ns");
        let cached = encode("cached_affiliated", "min_ns");
        let template = encode("template_affiliated", "min_ns");
        assert!(
            template * 3.0 <= cached && template * 3.0 <= reference,
            "affiliated encode kernel under 3x the pre-template paths \
             (template {template} ns, cached {cached} ns, reference {reference} ns)"
        );
        println!(
            "smoke check: affiliated encode kernel {:.1}x vs cached, {:.1}x vs reference",
            cached / template,
            reference / template
        );
        let counting = kernel("counting_value_n4096", "min_ns");
        let comparison = kernel("comparison_value_n4096", "min_ns");
        assert!(
            counting <= comparison * 1.10,
            "counting sort lost to the comparison sort on n4096/value \
             ({counting} ns vs {comparison} ns)"
        );
    }
}
