//! Throughput of the analytic stream engine against the cycle-accurate
//! NoC, measured at two levels:
//!
//! 1. **`engine`** — full sweep cells: the smoke-preset grid (LeNet
//!    fixed-8, 4×4 MC2, O0/O2 × every codec) run once per `EngineMode`,
//!    one bench iteration = one full grid pass. `cells/sec` is the sweep
//!    runner's unit of progress, so the ratio between the modes is the
//!    wall-clock win the analytic fast path buys a grid sweep
//!    end-to-end. A sweep cell also pays for encode/flitize/codec,
//!    PE MACs and output assembly — work both engines share — so the
//!    end-to-end ratio is Amdahl-bound well below the engine-phase
//!    ratio (EXPERIMENTS.md tabulates the composition).
//!
//! 2. **`engine_kernel`** — the engine phase alone: an identical
//!    smoke-shaped packet set (2 MCs round-robin over the 14 PEs,
//!    conv-task-sized payloads on 128-bit links) pushed through
//!    per-cycle mesh stepping vs `replay_queued_analytic`. Same
//!    traffic, same per-link accounting — the only difference is
//!    routers/VC allocation/credit stepping vs straight XOR+popcount
//!    stream passes. This isolates the speedup the tentpole claims.
//!
//! Writes `BENCH_engine.json` / `BENCH_engine_kernel.json` (schema
//! `btr-bench-v1`) like every bench group, then reads them back to
//! print per-cell cost, cells/sec and engine-phase speedup.
//!
//! `BTR_BENCH_ENGINE_SMOKE=1` switches to random weights (no training)
//! and few samples per point, and **asserts** the fast path's reason to
//! exist: the analytic replay must push the same packets at least 5x
//! faster than cycle stepping, and a forced-analytic grid pass must
//! beat the cycle grid pass end-to-end (gated on paired back-to-back
//! passes — separately timed windows drift too much on a shared box).
//! `auto` is reported but not gated — on real layer traffic it proves
//! few phases eligible and rides the cycle engine (its win is safety,
//! not speed).

use btr_bits::payload::PayloadBits;
use btr_bits::word::DataFormat;
use btr_core::codec::{CodecKind, CodecScope, ResyncPolicy};
use btr_core::edc::EdcKind;
use btr_core::ordering::{OrderingMethod, TieBreak};
use btr_dnn::data::SyntheticDigits;
use btr_dnn::tensor::Tensor;
use btr_noc::config::NocConfig;
use btr_noc::fault::{BitErrorRate, FaultMode};
use btr_noc::packet::Packet;
use btr_noc::sim::{DeliveredPacket, Simulator};
use btr_noc::stats::LinkSlab;
use btr_noc::EngineMode;
use criterion::{black_box, BatchSize, Criterion};
use experiments::json::Json;
use experiments::sweep::{expand_grid, run_cells, MeshSpec, SweepCell, Workload};
use experiments::workloads::{lenet, WeightSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The smoke-preset grid restricted to one engine mode.
fn engine_grid(engine: EngineMode) -> Vec<SweepCell> {
    expand_grid(
        1,
        &[MeshSpec {
            width: 4,
            height: 4,
            mc_count: 2,
        }],
        &[DataFormat::Fixed8],
        &[OrderingMethod::Baseline, OrderingMethod::Separated],
        &[TieBreak::Stable],
        &[false],
        &CodecKind::ALL,
        &[CodecScope::PerPacket],
        &[1],
        &[engine],
        &[BitErrorRate::default()],
        &[EdcKind::None],
        &[ResyncPolicy::ReseedOnRetry],
        &[FaultMode::PerFlit],
    )
}

/// Packets shaped like MC→PE traffic on the smoke mesh: every MC of
/// the 4×4 MC2 mesh streams `flits_per_packet` 128-bit payload flits
/// round-robin over the PEs, random payload images. Four flits is the
/// smoke grid's conv-task shape; 32 flits is the weight-stream shape
/// (long batch-boundary transfers, the analytic engine's home turf).
fn kernel_traffic(
    config: &NocConfig,
    packets: usize,
    flits_per_packet: usize,
    seed: u64,
) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pes = config.pe_nodes();
    let mcs = &config.mc_nodes;
    (0..packets)
        .map(|j| {
            let src = mcs[j % mcs.len()];
            let dst = pes[(j / mcs.len()) % pes.len()];
            let flits = (0..flits_per_packet)
                .map(|_| {
                    let mut image = PayloadBits::zero(config.link_width_bits);
                    let mut off = 0;
                    while off < config.link_width_bits {
                        let len = 64.min(config.link_width_bits - off);
                        image.set_field(off, len, rng.gen());
                        off += len;
                    }
                    image
                })
                .collect();
            Packet::new(src, dst, flits, j as u64)
        })
        .collect()
}

/// Payload-flit runs in the two kernel shapes, as one `Vec` of flit
/// images per packet: the inputs `LinkSlab::observe_payload` walks flit
/// by flit and `LinkSlab::observe_payload_run` consumes in one pass.
fn lane_runs(
    data_width: u32,
    packets: usize,
    flits_per_packet: usize,
    seed: u64,
) -> Vec<Vec<PayloadBits>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..packets)
        .map(|_| {
            (0..flits_per_packet)
                .map(|_| {
                    let mut image = PayloadBits::zero(data_width);
                    let mut off = 0;
                    while off < data_width {
                        let len = 64.min(data_width - off);
                        image.set_field(off, len, rng.gen());
                        off += len;
                    }
                    image
                })
                .collect()
        })
        .collect()
}

/// The per-flit walk: every payload flit steps the persistent tx lane,
/// advances the mirrored rx lane and charges the accumulator one flit
/// at a time — the path contended per-link phases still pay.
fn lane_perflit(mut slab: LinkSlab, runs: &[Vec<PayloadBits>]) -> u64 {
    for run in runs {
        for flit in run {
            black_box(slab.observe_payload(0, flit));
        }
    }
    slab.transitions(0)
}

/// The bulk lane kernel: each packet's whole flit run advances the lane
/// and the accumulator in one XOR+popcount pass.
fn lane_bulk(mut slab: LinkSlab, runs: &[Vec<PayloadBits>]) -> u64 {
    for run in runs {
        slab.observe_payload_run(0, run.iter());
    }
    slab.transitions(0)
}

/// Builds a fresh simulator with the whole packet set queued at its
/// NIs. Runs as `iter_batched` *setup*: simulator construction,
/// traffic cloning and injection queueing are identical under either
/// engine, so the timed region holds engine work only.
fn primed_sim(config: &NocConfig, packets: &[Packet]) -> (Simulator, usize) {
    let mut sim = Simulator::new(config.clone());
    for p in packets {
        sim.inject(p.clone()).expect("kernel packet injects");
    }
    (sim, packets.len())
}

/// Pushes the queued packets through per-cycle mesh stepping until
/// every packet delivers; returns total transitions (sanity +
/// `black_box`).
fn kernel_cycle(mut sim: Simulator, expected: usize) -> u64 {
    let mut buf: Vec<DeliveredPacket> = Vec::new();
    let mut delivered = 0;
    while delivered < expected {
        sim.step();
        sim.drain_all_delivered_into(&mut buf);
        delivered += buf.len();
        assert!(sim.cycle() < 10_000_000, "kernel traffic stalled");
    }
    sim.stats().total_transitions
}

/// Pushes the same queued packets through the analytic stream replay
/// (forced mode: serialized per-source FIFO streams).
fn kernel_analytic(mut sim: Simulator, expected: usize) -> u64 {
    sim.replay_queued_analytic(false);
    let mut buf: Vec<DeliveredPacket> = Vec::new();
    sim.drain_all_delivered_into(&mut buf);
    assert_eq!(buf.len(), expected, "every kernel packet delivers");
    sim.stats().total_transitions
}

fn main() {
    let smoke = std::env::var("BTR_BENCH_ENGINE_SMOKE").is_ok();
    let source = if smoke {
        WeightSource::Random
    } else {
        WeightSource::Trained
    };
    let seed = 42u64;
    let digits = SyntheticDigits::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let workloads = vec![Workload {
        name: "lenet".into(),
        ops: lenet(source, seed).inference_ops(),
        inputs: (0..4)
            .map(|i| digits.sample((7 + i) % 10, &mut rng).input)
            .collect::<Vec<Tensor>>(),
    }];
    let cells_per_grid = engine_grid(EngineMode::Cycle).len();

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("engine");
    group.sample_size(if smoke { 4 } else { 5 });
    for engine in EngineMode::ALL {
        let cells = engine_grid(engine);
        assert_eq!(cells.len(), cells_per_grid);
        group.bench_function(engine.label(), |b| {
            b.iter(|| {
                let outcomes = run_cells(black_box(&workloads), cells.clone(), true);
                for outcome in &outcomes {
                    assert!(
                        outcome.transitions > 0,
                        "{} cell failed: {outcome:?}",
                        engine.label()
                    );
                }
                outcomes.len()
            })
        });
    }
    group.finish();

    // Engine-phase kernel: identical traffic through both engines, in
    // the smoke grid's task shape and the weight-stream shape.
    let noc = NocConfig::paper_mesh(4, 4, 2, 128);
    let task_traffic = kernel_traffic(&noc, 1024, 4, seed);
    let stream_traffic = kernel_traffic(&noc, 256, 32, seed);
    let mut group = criterion.benchmark_group("engine_kernel");
    group.sample_size(if smoke { 3 } else { 10 });
    for (shape, traffic) in [("task", &task_traffic), ("stream", &stream_traffic)] {
        group.bench_function(format!("cycle_{shape}"), |b| {
            b.iter_batched(
                || primed_sim(&noc, traffic),
                |(sim, n)| kernel_cycle(black_box(sim), n),
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("analytic_{shape}"), |b| {
            b.iter_batched(
                || primed_sim(&noc, traffic),
                |(sim, n)| kernel_analytic(black_box(sim), n),
                BatchSize::LargeInput,
            )
        });
    }
    // Per-link codec scope on the same stream traffic: the configuration
    // that could not replay at all before the bulk lane kernels (the
    // replay refused persistent lanes and fell back to cycle stepping).
    let coded = NocConfig::paper_mesh(4, 4, 2, 128).with_link_codec(Some(CodecKind::DeltaXor));
    let coded_traffic = kernel_traffic(&coded, 256, 32, seed);
    group.bench_function("cycle_perlink_stream", |b| {
        b.iter_batched(
            || primed_sim(&coded, &coded_traffic),
            |(sim, n)| kernel_cycle(black_box(sim), n),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("analytic_perlink_stream", |b| {
        b.iter_batched(
            || primed_sim(&coded, &coded_traffic),
            |(sim, n)| kernel_analytic(black_box(sim), n),
            BatchSize::LargeInput,
        )
    });
    group.finish();

    // Codec-lane kernel: the per-flit walk vs the bulk run kernel over
    // one persistent per-link lane, both codecs, both shapes — the
    // narrowest isolation of what the run kernels buy.
    let mut group = criterion.benchmark_group("lane_kernel");
    group.sample_size(if smoke { 3 } else { 10 });
    for (codec_name, codec) in [
        ("businvert", CodecKind::BusInvert),
        ("deltaxor", CodecKind::DeltaXor),
    ] {
        for (shape, packets, flits) in [("task", 1024, 4), ("stream", 256, 32)] {
            let runs = lane_runs(128, packets, flits, seed);
            let slab_width = 128 + codec.extra_wires();
            group.bench_function(format!("perflit_{codec_name}_{shape}"), |b| {
                b.iter_batched(
                    || LinkSlab::with_link_codec(slab_width, 1, codec),
                    |slab| lane_perflit(black_box(slab), &runs),
                    BatchSize::LargeInput,
                )
            });
            group.bench_function(format!("bulk_{codec_name}_{shape}"), |b| {
                b.iter_batched(
                    || LinkSlab::with_link_codec(slab_width, 1, codec),
                    |slab| lane_bulk(black_box(slab), &runs),
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();

    report(smoke, cells_per_grid);

    if smoke {
        // End-to-end gate. Sweep cells also pay the engine-independent
        // transport pipeline (encode/codec/MAC/assembly), so the grid
        // ratio is Amdahl-bound far below the kernel ratio — but the
        // analytic grid pass must still clearly win, or the integration
        // ate the engine's gain. This box's wall clock drifts by tens
        // of percent over seconds, which swamps two separately timed
        // bench windows; measure *paired* back-to-back passes and gate
        // the median pair ratio instead.
        let mut ratios: Vec<f64> = (0..3)
            .map(|_| {
                let start = std::time::Instant::now();
                let c = run_cells(&workloads, engine_grid(EngineMode::Cycle), true);
                let cycle_s = start.elapsed().as_secs_f64();
                let start = std::time::Instant::now();
                let a = run_cells(&workloads, engine_grid(EngineMode::Analytic), true);
                let analytic_s = start.elapsed().as_secs_f64();
                assert!(c.iter().chain(&a).all(|o| o.transitions > 0));
                cycle_s / analytic_s
            })
            .collect();
        ratios.sort_by(|x, y| x.partial_cmp(y).expect("finite ratio"));
        let median = ratios[ratios.len() / 2];
        println!(
            "paired grid passes, cycle/analytic: {} -> median {median:.2}x",
            ratios
                .iter()
                .map(|r| format!("{r:.2}x"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        assert!(
            median >= 1.15,
            "analytic grid pass not clearly faster end-to-end \
             (median paired ratio {median:.2}x)"
        );
    }
}

/// Locates the bench-JSON directory the harness wrote to (mirroring its
/// default: workspace `target/btr-bench`).
fn bench_json_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("BTR_BENCH_JSON_DIR") {
        return dir.into();
    }
    let mut probe = std::env::current_dir().expect("cwd");
    loop {
        if probe.join("Cargo.lock").exists() {
            return probe.join("target/btr-bench");
        }
        assert!(probe.pop(), "no workspace root above cwd");
    }
}

/// Reads one `BENCH_<group>.json` back (exercising the round-trip CI
/// relies on) and returns a metric lookup over its results.
fn bench_metrics(group: &str) -> impl Fn(&str, &str) -> f64 {
    let path = bench_json_dir().join(format!("BENCH_{group}.json"));
    let text = std::fs::read_to_string(&path).expect("bench JSON written");
    let doc = Json::parse(&text).expect("bench JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(experiments::json::BENCH_SCHEMA),
        "unexpected bench schema"
    );
    let results = match doc.get("results") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("bench JSON has no results array: {other:?}"),
    };
    move |name: &str, field: &str| -> f64 {
        let entry = results
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("no bench entry {name:?}"));
        match entry.get(field) {
            Some(Json::F64(v)) => *v,
            Some(Json::U64(v)) => *v as f64,
            other => panic!("{name}.{field} is not a number: {other:?}"),
        }
    }
}

/// Prints cells/sec per engine plus the engine-phase kernel speedup,
/// and in smoke mode asserts the analytic gates.
fn report(smoke: bool, cells_per_grid: usize) {
    let grid = bench_metrics("engine");
    println!("\nsweep throughput ({cells_per_grid} cells per grid pass):");
    for engine in EngineMode::ALL {
        let ns = grid(engine.label(), "mean_ns");
        println!(
            "  {:<9} {:>9.2} ms/cell  ({:>8.2} cells/sec)",
            engine.label(),
            ns / cells_per_grid as f64 / 1e6,
            cells_per_grid as f64 * 1e9 / ns
        );
    }
    let grid_cycle = grid("cycle", "min_ns");
    println!("sweep speedup vs cycle (min over samples):");
    for engine in EngineMode::ALL {
        println!(
            "  {:<9} {:>5.2}x",
            engine.label(),
            grid_cycle / grid(engine.label(), "min_ns")
        );
    }

    let kernel = bench_metrics("engine_kernel");
    println!("engine-phase kernel (same packets, engine work only):");
    for shape in ["task", "stream", "perlink_stream"] {
        let c = kernel(&format!("cycle_{shape}"), "min_ns");
        let a = kernel(&format!("analytic_{shape}"), "min_ns");
        println!(
            "  {shape:<14} cycle {:>7.3} ms, analytic {:>7.3} ms -> {:>5.1}x",
            c / 1e6,
            a / 1e6,
            c / a
        );
    }

    let lane = bench_metrics("lane_kernel");
    println!("codec-lane kernel (per-flit walk vs bulk run, one per-link lane):");
    for codec in ["businvert", "deltaxor"] {
        for shape in ["task", "stream"] {
            let walk = lane(&format!("perflit_{codec}_{shape}"), "min_ns");
            let bulk = lane(&format!("bulk_{codec}_{shape}"), "min_ns");
            println!(
                "  {codec:<9} {shape:<7} walk {:>7.3} ms, bulk {:>7.3} ms -> {:>5.1}x",
                walk / 1e6,
                bulk / 1e6,
                walk / bulk
            );
        }
    }

    if smoke {
        // The tentpole's claim lives at the engine phase: replaying the
        // very same packets must beat router/VC/credit stepping by 5x
        // (on streaming transfers, where per-packet setup amortizes) or
        // the fast path stopped being one.
        let stream_cycle = kernel("cycle_stream", "min_ns");
        let stream_analytic = kernel("analytic_stream", "min_ns");
        assert!(
            stream_analytic * 5.0 <= stream_cycle,
            "analytic replay under 5x cycle stepping on identical traffic: \
             {stream_analytic} ns vs {stream_cycle} ns"
        );
        println!(
            "smoke check: engine kernel {:.1}x on streams",
            stream_cycle / stream_analytic
        );
        // Bulk codec-lane kernel gates: never slower than the per-flit
        // walk it replaces, and ≥3x where it matters most — long
        // weight-stream runs, where per-flit wire materialization,
        // mirrored-lane advance and accumulator bookkeeping dominate.
        for codec in ["businvert", "deltaxor"] {
            for shape in ["task", "stream"] {
                let walk = lane(&format!("perflit_{codec}_{shape}"), "min_ns");
                let bulk = lane(&format!("bulk_{codec}_{shape}"), "min_ns");
                assert!(
                    bulk <= walk,
                    "bulk lane kernel slower than the per-flit walk \
                     ({codec} {shape}: {bulk} ns vs {walk} ns)"
                );
                if shape == "stream" {
                    assert!(
                        bulk * 3.0 <= walk,
                        "bulk lane kernel under 3x on stream runs \
                         ({codec}: {bulk} ns vs {walk} ns)"
                    );
                }
            }
        }
        println!("smoke check: bulk lane kernel >= per-flit walk on every point, >= 3x on streams");
    }
}
