//! NoC simulator throughput: uniform-random traffic drained to idle.
//!
//! Benchmarks the flat-array engine against the legacy map/deque
//! reference on identical seeded workloads, so the `BENCH_noc.json`
//! trajectory (written by the bench harness, see EXPERIMENTS.md) tracks
//! both absolute cycles/sec and the flat-vs-legacy speedup across
//! commits.

use btr_noc::config::NocConfig;
use btr_noc::legacy::LegacySimulator;
use btr_noc::sim::Simulator;
use btr_noc::traffic::{generate, Pattern};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc");
    group.sample_size(10);
    for (w, h) in [(4usize, 4usize), (8, 8)] {
        group.bench_function(format!("uniform_200pkts_{w}x{h}"), |b| {
            b.iter(|| {
                let config = NocConfig::mesh(w, h, 128);
                let mut rng = StdRng::seed_from_u64(5);
                let packets = generate(&config, Pattern::UniformRandom, 200, 4, &mut rng);
                let mut sim = Simulator::new(config);
                for p in packets {
                    sim.inject(p).unwrap();
                }
                sim.run_until_idle(1_000_000).unwrap();
                sim.stats().total_transitions
            })
        });
        group.bench_function(format!("legacy_uniform_200pkts_{w}x{h}"), |b| {
            b.iter(|| {
                let config = NocConfig::mesh(w, h, 128);
                let mut rng = StdRng::seed_from_u64(5);
                let packets = generate(&config, Pattern::UniformRandom, 200, 4, &mut rng);
                let mut sim = LegacySimulator::new(config);
                for p in packets {
                    sim.inject(p).unwrap();
                }
                sim.run_until_idle(1_000_000).unwrap();
                sim.stats().total_transitions
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
