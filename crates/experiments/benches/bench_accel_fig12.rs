//! Reduced-size accelerator runs (the Fig. 12 pipeline on a small conv
//! net), one per ordering method.

use btr_accel::config::AccelConfig;
use btr_accel::driver::run_inference;
use btr_bits::word::DataFormat;
use btr_core::OrderingMethod;
use btr_dnn::layer::{ActKind, Activation, Conv2d, Flatten, Linear, MaxPool2d};
use btr_dnn::model::{Layer, Sequential};
use btr_dnn::tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_model() -> Sequential {
    let mut rng = StdRng::seed_from_u64(0);
    Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(1, 4, 3, 1, 1, &mut rng)),
        Layer::Activation(Activation::new(ActKind::ReLU)),
        Layer::MaxPool2d(MaxPool2d::new(2, 2)),
        Layer::Flatten(Flatten::new()),
        Layer::Linear(Linear::new(4 * 8 * 8, 10, &mut rng)),
    ])
}

fn bench(c: &mut Criterion) {
    let ops = small_model().inference_ops();
    let mut rng = StdRng::seed_from_u64(1);
    let input = Tensor::from_vec(
        &[1, 16, 16],
        (0..256).map(|_| rng.gen_range(-1.0..1.0f32)).collect(),
    )
    .unwrap();
    let mut group = c.benchmark_group("accel");
    group.sample_size(10);
    for ordering in OrderingMethod::ALL {
        group.bench_function(format!("fx8_4x4mc2_{}", ordering.label()), |b| {
            b.iter(|| {
                let config = AccelConfig::paper(4, 4, 2, DataFormat::Fixed8, ordering);
                run_inference(&ops, &input, &config)
                    .unwrap()
                    .stats
                    .total_transitions
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
