//! End-to-end inference throughput of the accelerator driver: synchronous
//! vs pipelined encode scheduling at batch 1 / 4 / 16 on LeNet fixed-8
//! (separated ordering — the paper's best configuration, and the most
//! encode-heavy one).
//!
//! Writes `BENCH_driver.json` (schema `btr-bench-v1`) like every bench
//! group, then reads it back to print per-input throughput and the
//! pipelined-vs-sync speedups — the end-to-end perf trajectory for the
//! driver (see EXPERIMENTS.md).
//!
//! `BTR_BENCH_DRIVER_SMOKE=1` switches to random weights (no training),
//! two samples per point, and **asserts** that the pipelined driver's
//! best-case time does not lose to the synchronous driver at the same
//! batch — the CI guard for the pipeline's reason to exist.

use btr_accel::config::{AccelConfig, DriverMode};
use btr_accel::driver::run_inference_batch;
use btr_bits::word::DataFormat;
use btr_core::OrderingMethod;
use btr_dnn::data::SyntheticDigits;
use btr_dnn::tensor::Tensor;
use btr_noc::EngineMode;
use criterion::{black_box, Criterion};
use experiments::json::Json;
use experiments::workloads::{lenet, WeightSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The benchmarked configurations, in reporting order. The engine
/// column contrasts the cycle-accurate NoC against the analytic stream
/// engine (and auto classification) on the same driver/batch point.
const POINTS: [(&str, DriverMode, usize, EngineMode); 7] = [
    ("sync_b1", DriverMode::Synchronous, 1, EngineMode::Cycle),
    ("sync_b4", DriverMode::Synchronous, 4, EngineMode::Cycle),
    ("pipelined_b1", DriverMode::Pipelined, 1, EngineMode::Cycle),
    ("pipelined_b4", DriverMode::Pipelined, 4, EngineMode::Cycle),
    (
        "pipelined_b16",
        DriverMode::Pipelined,
        16,
        EngineMode::Cycle,
    ),
    (
        "pipelined_b4_analytic",
        DriverMode::Pipelined,
        4,
        EngineMode::Analytic,
    ),
    (
        "pipelined_b4_auto",
        DriverMode::Pipelined,
        4,
        EngineMode::Auto,
    ),
];

fn main() {
    let smoke = std::env::var("BTR_BENCH_DRIVER_SMOKE").is_ok();
    let source = if smoke {
        WeightSource::Random
    } else {
        WeightSource::Trained
    };
    let seed = 42u64;
    let ops = lenet(source, seed).inference_ops();
    let digits = SyntheticDigits::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs: Vec<Tensor> = (0..16)
        .map(|i| digits.sample(i % 10, &mut rng).input)
        .collect();

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("driver");
    group.sample_size(if smoke { 2 } else { 10 });
    for (name, driver, batch, engine) in POINTS {
        let mut config = AccelConfig::paper(4, 4, 2, DataFormat::Fixed8, OrderingMethod::Separated);
        config.driver = driver;
        config.batch_size = batch;
        config.engine = engine;
        let batch_inputs: Vec<Tensor> = inputs.iter().cycle().take(batch).cloned().collect();
        group.bench_function(name, |b| {
            b.iter(|| {
                let result = run_inference_batch(black_box(&ops), &batch_inputs, &config)
                    .expect("inference");
                result.stats.total_transitions
            })
        });
    }
    group.finish();

    report_speedups(smoke);
}

/// Reads the group's own `BENCH_driver.json` back (exercising the
/// round-trip CI relies on), prints per-input throughput, and in smoke
/// mode asserts pipelined ≥ sync throughput at equal batch.
fn report_speedups(smoke: bool) {
    let dir = std::env::var("BTR_BENCH_JSON_DIR").unwrap_or_else(|_| {
        // Mirror the bench harness default: workspace target/btr-bench.
        let mut probe = std::env::current_dir().expect("cwd");
        loop {
            if probe.join("Cargo.lock").exists() {
                return probe
                    .join("target/btr-bench")
                    .to_string_lossy()
                    .into_owned();
            }
            assert!(probe.pop(), "no workspace root above cwd");
        }
    });
    let path = std::path::Path::new(&dir).join("BENCH_driver.json");
    let text = std::fs::read_to_string(&path).expect("bench JSON written");
    let doc = Json::parse(&text).expect("bench JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(experiments::json::BENCH_SCHEMA),
        "unexpected bench schema"
    );
    let results = match doc.get("results") {
        Some(Json::Arr(items)) => items,
        other => panic!("bench JSON has no results array: {other:?}"),
    };
    let metric = |name: &str, field: &str| -> f64 {
        let entry = results
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("no bench entry {name:?}"));
        match entry.get(field) {
            Some(Json::F64(v)) => *v,
            Some(Json::U64(v)) => *v as f64,
            other => panic!("{name}.{field} is not a number: {other:?}"),
        }
    };

    println!("\ndriver throughput (per input):");
    let per_input = |name: &str, batch: f64| metric(name, "mean_ns") / batch;
    for (name, _, batch, engine) in POINTS {
        let ns = per_input(name, batch as f64);
        println!(
            "  {name:<22} {:>8} {:>9.2} ms/input  ({:>6.2} inferences/s)",
            engine.label(),
            ns / 1e6,
            1e9 / ns
        );
    }
    let baseline = per_input("sync_b1", 1.0);
    println!("end-to-end speedup vs sync_b1:");
    for (name, _, batch, _) in POINTS {
        println!(
            "  {name:<22} {:>5.2}x",
            baseline / per_input(name, batch as f64)
        );
    }

    if smoke {
        // Best-case (min) times are the most noise-robust on shared CI
        // runners; equal batch isolates the encode/simulate overlap.
        // The pipelined driver measures ~25-30% faster, so a 10% slack
        // absorbs scheduler noise without weakening the gate's intent.
        let sync = metric("sync_b4", "min_ns");
        let pipelined = metric("pipelined_b4", "min_ns");
        assert!(
            pipelined <= sync * 1.1,
            "pipelined driver lost to sync at batch 4: {pipelined} ns vs {sync} ns"
        );
        println!(
            "smoke check: pipelined_b4 {:.1} ms <= sync_b4 {:.1} ms",
            pipelined / 1e6,
            sync / 1e6
        );
    }
}
