//! Aggregate throughput of the multi-session inference service: a
//! single synchronous session (the pre-service reference) against serve
//! pools across the `sessions × batch-window × ordering` trajectory on
//! LeNet fixed-8.
//!
//! Writes `BENCH_serve.json` (schema `btr-bench-v1`), then reads it back
//! to print aggregate inferences/sec and the pool-vs-single-session
//! speedups. One bench iteration = one complete service run over the
//! whole request stream, so `min_ns / requests` is the per-inference
//! aggregate cost.
//!
//! `BTR_BENCH_SERVE_SMOKE=1` switches to random weights (no training)
//! and a short request stream, and **asserts** the service's reason to
//! exist: the pool's aggregate throughput must not lose to a single
//! synchronous session, and on a multi-hart host it must scale to at
//! least 1.5x (serve-vs-sequential *output* parity is pinned separately
//! by `tests/serve_parity.rs`).

use btr_accel::config::{AccelConfig, DriverMode};
use btr_accel::driver::run_inference_batch;
use btr_bits::word::DataFormat;
use btr_core::OrderingMethod;
use btr_dnn::data::SyntheticDigits;
use btr_dnn::tensor::Tensor;
use btr_noc::EngineMode;
use btr_serve::{serve, synthetic_requests, ServeConfig};
use criterion::{black_box, Criterion};
use experiments::json::Json;
use experiments::workloads::{lenet, WeightSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The benchmarked configurations: `sessions == 0` marks the sequential
/// single-synchronous-session reference. The engine column contrasts
/// the cycle-accurate NoC against the analytic stream engine on the
/// same pool shape.
const POINTS: [(&str, usize, usize, OrderingMethod, EngineMode); 7] = [
    (
        "seq_sync_b1",
        0,
        1,
        OrderingMethod::Separated,
        EngineMode::Cycle,
    ),
    (
        "serve_s1_b4",
        1,
        4,
        OrderingMethod::Separated,
        EngineMode::Cycle,
    ),
    (
        "serve_s2_b4",
        2,
        4,
        OrderingMethod::Separated,
        EngineMode::Cycle,
    ),
    (
        "serve_s4_b4",
        4,
        4,
        OrderingMethod::Separated,
        EngineMode::Cycle,
    ),
    (
        "serve_s4_b1",
        4,
        1,
        OrderingMethod::Separated,
        EngineMode::Cycle,
    ),
    (
        "serve_s4_b4_O0",
        4,
        4,
        OrderingMethod::Baseline,
        EngineMode::Cycle,
    ),
    (
        "serve_s4_b4_analytic",
        4,
        4,
        OrderingMethod::Separated,
        EngineMode::Analytic,
    ),
];

fn accel_config(
    ordering: OrderingMethod,
    window: usize,
    sessions: usize,
    engine: EngineMode,
) -> AccelConfig {
    let mut config = AccelConfig::paper(4, 4, 2, DataFormat::Fixed8, ordering);
    config.batch_size = window;
    config.engine = engine;
    // Concurrent sessions already claim the harts; encoder threads would
    // only contend with sibling meshes (same reasoning as the sweep
    // runner and the btr-serve binary).
    config.encode_inline = sessions > 1;
    config
}

fn main() {
    let smoke = std::env::var("BTR_BENCH_SERVE_SMOKE").is_ok();
    let source = if smoke {
        WeightSource::Random
    } else {
        WeightSource::Trained
    };
    let seed = 42u64;
    let requests = if smoke { 8 } else { 32 };
    let ops = lenet(source, seed).inference_ops();
    let digits = SyntheticDigits::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let pool: Vec<Tensor> = (0..16)
        .map(|i| digits.sample(i % 10, &mut rng).input)
        .collect();

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("serve");
    group.sample_size(if smoke { 2 } else { 5 });
    for (name, sessions, window, ordering, engine) in POINTS {
        if sessions == 0 {
            // The reference: one synchronous session answering the same
            // request stream back to back, batch 1.
            let mut config = accel_config(ordering, 1, 1, engine);
            config.driver = DriverMode::Synchronous;
            let stream = synthetic_requests(&pool, requests);
            group.bench_function(name, |b| {
                b.iter(|| {
                    let mut transitions = 0u64;
                    for request in &stream {
                        let result = run_inference_batch(
                            black_box(&ops),
                            std::slice::from_ref(&request.input),
                            &config,
                        )
                        .expect("inference");
                        transitions += result.stats.total_transitions;
                    }
                    transitions
                })
            });
            continue;
        }
        let config = ServeConfig {
            accel: accel_config(ordering, window, sessions, engine),
            sessions,
            queue_capacity: 16,
            flush_polls: 16,
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = serve(
                    black_box(&ops),
                    &config,
                    synthetic_requests(&pool, requests),
                )
                .expect("service run");
                assert_eq!(report.completed, requests as u64);
                report.transitions
            })
        });
    }
    group.finish();

    report_throughput(smoke, requests);
}

/// Reads `BENCH_serve.json` back (the round-trip CI relies on), prints
/// aggregate throughput per point, and in smoke mode asserts the
/// pool-vs-single-session throughput gates.
fn report_throughput(smoke: bool, requests: usize) {
    let dir = std::env::var("BTR_BENCH_JSON_DIR").unwrap_or_else(|_| {
        let mut probe = std::env::current_dir().expect("cwd");
        loop {
            if probe.join("Cargo.lock").exists() {
                return probe
                    .join("target/btr-bench")
                    .to_string_lossy()
                    .into_owned();
            }
            assert!(probe.pop(), "no workspace root above cwd");
        }
    });
    let path = std::path::Path::new(&dir).join("BENCH_serve.json");
    let text = std::fs::read_to_string(&path).expect("bench JSON written");
    let doc = Json::parse(&text).expect("bench JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(experiments::json::BENCH_SCHEMA),
        "unexpected bench schema"
    );
    let results = match doc.get("results") {
        Some(Json::Arr(items)) => items,
        other => panic!("bench JSON has no results array: {other:?}"),
    };
    let metric = |name: &str, field: &str| -> f64 {
        let entry = results
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("no bench entry {name:?}"));
        match entry.get(field) {
            Some(Json::F64(v)) => *v,
            Some(Json::U64(v)) => *v as f64,
            other => panic!("{name}.{field} is not a number: {other:?}"),
        }
    };

    println!("\naggregate serving throughput ({requests} requests per run):");
    for (name, _, _, _, engine) in POINTS {
        let ns = metric(name, "mean_ns");
        println!(
            "  {name:<21} {:>8} {:>9.2} ms/request  ({:>6.2} inferences/s aggregate)",
            engine.label(),
            ns / requests as f64 / 1e6,
            requests as f64 * 1e9 / ns
        );
    }
    let baseline = metric("seq_sync_b1", "min_ns");
    println!("aggregate speedup vs seq_sync_b1:");
    for (name, _, _, _, _) in POINTS {
        println!("  {name:<21} {:>5.2}x", baseline / metric(name, "min_ns"));
    }

    if smoke {
        // Best-case (min) times are the most noise-robust on shared CI
        // runners. Gate 1: the pool never loses to a single synchronous
        // session (10% slack for scheduler noise) — this holds even on a
        // single hart, where the win is batching + the pipelined encode.
        let pool = metric("serve_s4_b4", "min_ns");
        assert!(
            pool <= baseline * 1.1,
            "serve pool lost to a single synchronous session: {pool} ns vs {baseline} ns"
        );
        // Gate 2 (multi-hart only): session-level parallelism must
        // scale aggregate throughput to >= 1.5x the single synchronous
        // session.
        let harts = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        if harts >= 2 {
            assert!(
                pool * 1.5 <= baseline,
                "aggregate throughput did not scale on a {harts}-hart host: \
                 {pool} ns vs {baseline} ns (need >= 1.5x)"
            );
            println!(
                "smoke check: serve_s4_b4 scales {:.2}x over seq_sync_b1 on {harts} harts",
                baseline / pool
            );
        } else {
            println!(
                "smoke check: single-hart host — scaling gate skipped, \
                 pool-vs-sync gate held ({:.2}x)",
                baseline / pool
            );
        }
    }
}
