//! Bit-level statistics accumulators for Figs. 10–11.
//!
//! The paper analyzes (a) the probability of a `'1'` at each bit position of
//! a word stream (top halves of Figs. 10/11, revealing the sign / exponent /
//! mantissa structure of float-32 and the near-zero clustering of trained
//! fixed-8 weights) and (b) the probability of a transition at each bit
//! position between consecutive words aligned on the same wires (bottom
//! halves). [`BitPositionStats`] accumulates both; [`PopcountHistogram`]
//! supports the popcount-distribution views used in Fig. 9 and the theory
//! validation.

use crate::word::DataWord;
use serde::{Deserialize, Serialize};

/// Per-bit-position `'1'` frequency accumulator over a stream of words.
///
/// Bit positions are LSB-first (position 0 = least significant). For
/// float-32 this means position 31 is the sign, 23–30 the exponent and
/// 0–22 the mantissa; the paper's Fig. 10 x-axis counts from the sign bit,
/// so the experiment binaries reverse the order when printing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BitPositionStats {
    width: u32,
    ones: Vec<u64>,
    transitions: Vec<u64>,
    words_observed: u64,
    previous: Option<u64>,
}

impl BitPositionStats {
    /// Creates an accumulator for `width`-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!(
            (1..=64).contains(&width),
            "width must be in 1..=64, got {width}"
        );
        Self {
            width,
            ones: vec![0; width as usize],
            transitions: vec![0; width as usize],
            words_observed: 0,
            previous: None,
        }
    }

    /// Observes one word (raw image right-aligned in a `u64`).
    pub fn observe_bits(&mut self, bits: u64) {
        // btr-lint: allow(per-bit-hot-loop, reason = "per-bit-position histogram: the output is indexed by wire, so there is no word-parallel form; feeds fig10/fig11, not the sweep hot path")
        for i in 0..self.width {
            self.ones[i as usize] += (bits >> i) & 1;
        }
        if let Some(prev) = self.previous {
            let diff = prev ^ bits;
            // btr-lint: allow(per-bit-hot-loop, reason = "per-bit-position histogram: the output is indexed by wire, so there is no word-parallel form; feeds fig10/fig11, not the sweep hot path")
            for i in 0..self.width {
                self.transitions[i as usize] += (diff >> i) & 1;
            }
        }
        self.previous = Some(bits);
        self.words_observed += 1;
    }

    /// Observes one typed word.
    pub fn observe<W: DataWord>(&mut self, word: W) {
        debug_assert_eq!(W::WIDTH, self.width);
        self.observe_bits(word.bits_u64());
    }

    /// Observes every word in a slice, in order (order matters for the
    /// transition statistics).
    pub fn observe_all<W: DataWord>(&mut self, words: &[W]) {
        for &w in words {
            self.observe(w);
        }
    }

    /// Number of words observed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.words_observed
    }

    /// Probability of a `'1'` at each bit position (LSB-first).
    ///
    /// Returns an empty vector if no words have been observed.
    #[must_use]
    pub fn one_probability(&self) -> Vec<f64> {
        if self.words_observed == 0 {
            return Vec::new();
        }
        let n = self.words_observed as f64;
        self.ones.iter().map(|&c| c as f64 / n).collect()
    }

    /// Probability of a transition at each bit position between consecutive
    /// observed words (LSB-first). Empty if fewer than two words observed.
    #[must_use]
    pub fn transition_probability(&self) -> Vec<f64> {
        if self.words_observed < 2 {
            return Vec::new();
        }
        let pairs = (self.words_observed - 1) as f64;
        self.transitions.iter().map(|&c| c as f64 / pairs).collect()
    }

    /// Mean popcount of the observed words.
    #[must_use]
    pub fn mean_popcount(&self) -> f64 {
        if self.words_observed == 0 {
            return 0.0;
        }
        self.ones.iter().sum::<u64>() as f64 / self.words_observed as f64
    }

    /// Width of the observed words in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }
}

/// Histogram of word popcounts (0..=width ones).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopcountHistogram {
    width: u32,
    counts: Vec<u64>,
    total: u64,
}

impl PopcountHistogram {
    /// Creates a histogram for `width`-bit words.
    #[must_use]
    pub fn new(width: u32) -> Self {
        Self {
            width,
            counts: vec![0; width as usize + 1],
            total: 0,
        }
    }

    /// Records one word's popcount.
    pub fn observe<W: DataWord>(&mut self, word: W) {
        debug_assert_eq!(W::WIDTH, self.width);
        self.counts[word.popcount() as usize] += 1;
        self.total += 1;
    }

    /// Records a raw popcount value.
    ///
    /// # Panics
    ///
    /// Panics if `popcount > width`.
    pub fn observe_popcount(&mut self, popcount: u32) {
        assert!(
            popcount <= self.width,
            "popcount {popcount} exceeds width {}",
            self.width
        );
        self.counts[popcount as usize] += 1;
        self.total += 1;
    }

    /// Raw bucket counts (index = popcount).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean popcount.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(pc, &c)| pc as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Population variance of the popcount.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let sq_sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(pc, &c)| (pc as f64 - mean).powi(2) * c as f64)
            .sum();
        sq_sum / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::{F32Word, Fx8Word};

    #[test]
    fn one_probability_simple() {
        let mut s = BitPositionStats::new(8);
        s.observe(Fx8Word::new(0b0000_0001));
        s.observe(Fx8Word::new(0b0000_0011));
        let p = s.one_probability();
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
        assert!((p[7]).abs() < 1e-12);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn transition_probability_simple() {
        let mut s = BitPositionStats::new(8);
        s.observe_bits(0b01);
        s.observe_bits(0b10);
        s.observe_bits(0b10);
        let t = s.transition_probability();
        // bit0: 1->0->0 = 1 transition over 2 pairs.
        assert!((t[0] - 0.5).abs() < 1e-12);
        assert!((t[1] - 0.5).abs() < 1e-12);
        assert!(t[2].abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_empty() {
        let s = BitPositionStats::new(32);
        assert!(s.one_probability().is_empty());
        assert!(s.transition_probability().is_empty());
        assert_eq!(s.mean_popcount(), 0.0);
    }

    #[test]
    fn f32_sign_bit_probability_for_symmetric_data() {
        // Symmetric ± values -> sign bit (position 31) probability 0.5,
        // mirroring the paper's observation "the first sign bit is ~0.5".
        let mut s = BitPositionStats::new(32);
        for i in 1..=1000 {
            let v = i as f32 / 100.0;
            s.observe(F32Word::new(v));
            s.observe(F32Word::new(-v));
        }
        let p = s.one_probability();
        assert!((p[31] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_mean_variance() {
        let mut h = PopcountHistogram::new(8);
        h.observe(Fx8Word::new(0)); // pc 0
        h.observe(Fx8Word::new(-1)); // pc 8
        assert_eq!(h.total(), 2);
        assert!((h.mean() - 4.0).abs() < 1e-12);
        assert!((h.variance() - 16.0).abs() < 1e-12);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[8], 1);
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn histogram_rejects_out_of_range() {
        let mut h = PopcountHistogram::new(8);
        h.observe_popcount(9);
    }

    #[test]
    fn mean_popcount_matches_histogram() {
        let words = [
            Fx8Word::new(3),
            Fx8Word::new(-3),
            Fx8Word::new(0),
            Fx8Word::new(127),
        ];
        let mut s = BitPositionStats::new(8);
        let mut h = PopcountHistogram::new(8);
        for &w in &words {
            s.observe(w);
            h.observe(w);
        }
        assert!((s.mean_popcount() - h.mean()).abs() < 1e-12);
    }
}
