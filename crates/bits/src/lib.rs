//! # btr-bits — bit-level primitives for bit-transition studies
//!
//! This crate is the foundation of the `noc-btr` workspace. It provides the
//! bit-level machinery that both the ordering core ([`btr-core`]) and the NoC
//! simulator ([`btr-noc`]) are built on:
//!
//! * [`word`] — typed data words ([`word::DataWord`]) in the paper's two
//!   formats, 32-bit IEEE-754 float ([`word::F32Word`]) and 8-bit
//!   two's-complement fixed point ([`word::Fx8Word`]), plus a 16-bit
//!   extension format, all exposing their `'1'`-bit counts;
//! * [`fixed`] — symmetric per-tensor fixed-point quantization;
//! * [`payload`] — [`payload::PayloadBits`], a fixed-capacity bit container
//!   representing the image of a flit on the physical link wires;
//! * [`transition`] — bit-transition (BT) counting between consecutive link
//!   images, the paper's core metric;
//! * [`stats`] — per-bit-position `'1'`-probability and
//!   transition-probability accumulators (Figs. 10–11) and popcount
//!   histograms;
//! * [`swar`] — the SWAR (SIMD-within-a-register) popcount used by the
//!   hardware ordering unit (Fig. 14), implemented bit-exactly so that the
//!   behavioral hardware model and the software path agree.
//!
//! # Example
//!
//! ```
//! use btr_bits::word::{DataWord, F32Word};
//! use btr_bits::transition::bit_transitions_u64;
//!
//! let a = F32Word::new(1.5f32);
//! let b = F32Word::new(-0.25f32);
//! // '1'-bit counts drive the ordering rule of the paper.
//! assert_eq!(a.popcount(), a.bits().count_ones());
//! // Bit transitions between two link words = Hamming distance.
//! let bt = bit_transitions_u64(a.bits() as u64, b.bits() as u64);
//! assert_eq!(bt, (a.bits() ^ b.bits()).count_ones());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixed;
pub mod payload;
pub mod stats;
pub mod swar;
pub mod transition;
pub mod word;

pub use fixed::{QuantError, Quantizer};
pub use payload::PayloadBits;
pub use stats::{BitPositionStats, PopcountHistogram};
pub use transition::{bit_transitions, bit_transitions_u64, TransitionRecorder};
pub use word::{DataFormat, DataWord, F32Word, Fx16Word, Fx8Word};
