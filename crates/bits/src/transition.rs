//! Bit-transition counting — the paper's core metric.
//!
//! A bit transition (BT) is "a change from `'0'` to `'1'` or `'1'` to `'0'`"
//! on one wire of a link between two consecutive flits (Sec. I). This module
//! provides scalar helpers and [`TransitionRecorder`], the per-link recorder
//! of Fig. 8: it keeps the previously transmitted flit image (`Flit_pre`),
//! XORs it with the current one (`Flit_current`), and accumulates the
//! popcount of the difference.

use crate::payload::PayloadBits;
use serde::{Deserialize, Serialize};

/// Bit transitions between two link words given as raw `u64` images.
#[must_use]
pub fn bit_transitions_u64(previous: u64, current: u64) -> u32 {
    (previous ^ current).count_ones()
}

/// Bit transitions between two flit images (Hamming distance).
///
/// # Panics
///
/// Panics if the images have different widths.
#[must_use]
pub fn bit_transitions(previous: &PayloadBits, current: &PayloadBits) -> u32 {
    current.transitions_to(previous)
}

/// Total bit transitions over a stream of flit images sent back-to-back on
/// one link, i.e. the sum of Hamming distances of consecutive pairs.
///
/// An empty or single-flit stream has zero transitions.
#[must_use]
pub fn stream_transitions(flits: &[PayloadBits]) -> u64 {
    flits
        .windows(2)
        .map(|w| u64::from(w[1].transitions_to(&w[0])))
        .sum()
}

/// Per-link bit-transition recorder (Fig. 8).
///
/// One recorder is attached to every link (router output port) in the NoC.
/// The recorder is *measurement-only*: "BT recording is solely for
/// performance evaluation, and the flit storage and BT summation should not
/// be considered overheads" (Sec. V).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransitionRecorder {
    width: u32,
    previous: Option<PayloadBits>,
    total_transitions: u64,
    flits_observed: u64,
    /// Per-wire transition counts, for Fig. 10/11-style per-position plots.
    per_position: Vec<u64>,
}

impl TransitionRecorder {
    /// Creates a recorder for a link of `width` bits, with per-wire
    /// transition tracking enabled (needed for Fig. 10/11-style plots).
    #[must_use]
    pub fn new(width: u32) -> Self {
        Self {
            width,
            previous: None,
            total_transitions: 0,
            flits_observed: 0,
            per_position: vec![0; width as usize],
        }
    }

    /// Creates a recorder that only accumulates totals (no per-wire
    /// counters). The NoC simulator attaches one of these to every link;
    /// skipping the per-bit loop keeps `observe` at a handful of word ops.
    #[must_use]
    pub fn total_only(width: u32) -> Self {
        Self {
            width,
            previous: None,
            total_transitions: 0,
            flits_observed: 0,
            per_position: Vec::new(),
        }
    }

    /// Link width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Observes a flit traversing the link, returning the transitions it
    /// caused relative to the previous flit (0 for the first flit).
    ///
    /// # Panics
    ///
    /// Panics if the flit width differs from the link width.
    pub fn observe(&mut self, flit: &PayloadBits) -> u32 {
        assert_eq!(
            flit.width(),
            self.width,
            "flit width {} does not match link width {}",
            flit.width(),
            self.width
        );
        let transitions = match &self.previous {
            None => 0,
            Some(prev) => {
                if self.per_position.is_empty() {
                    flit.transitions_to(prev)
                } else {
                    let diff = flit.xor(prev);
                    // O(popcount), not O(width): only toggling wires count.
                    diff.for_each_set_bit(|i| self.per_position[i as usize] += 1);
                    diff.popcount()
                }
            }
        };
        self.total_transitions += u64::from(transitions);
        self.flits_observed += 1;
        self.previous = Some(*flit);
        transitions
    }

    /// Total transitions accumulated on this link.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total_transitions
    }

    /// Number of flits that traversed the link.
    #[must_use]
    pub fn flits(&self) -> u64 {
        self.flits_observed
    }

    /// Average transitions per flit (0 if fewer than two flits seen).
    #[must_use]
    pub fn transitions_per_flit(&self) -> f64 {
        if self.flits_observed < 2 {
            0.0
        } else {
            self.total_transitions as f64 / (self.flits_observed - 1) as f64
        }
    }

    /// Per-wire transition counts (index = bit position, LSB-first).
    #[must_use]
    pub fn per_position(&self) -> &[u64] {
        &self.per_position
    }

    /// Probability of a transition at each bit position, given the flits
    /// observed so far (empty if fewer than two flits).
    #[must_use]
    pub fn per_position_probability(&self) -> Vec<f64> {
        if self.flits_observed < 2 {
            return Vec::new();
        }
        let pairs = (self.flits_observed - 1) as f64;
        self.per_position
            .iter()
            .map(|&c| c as f64 / pairs)
            .collect()
    }

    /// Resets the recorder to its initial state.
    pub fn reset(&mut self) {
        self.previous = None;
        self.total_transitions = 0;
        self.flits_observed = 0;
        self.per_position.iter_mut().for_each(|c| *c = 0);
    }
}

/// Computes the BT reduction rate of `optimized` relative to `baseline`,
/// as reported throughout the paper's evaluation:
/// `(baseline − optimized) / baseline`.
///
/// Returns 0.0 when the baseline is zero (no traffic).
#[must_use]
pub fn reduction_rate(baseline: u64, optimized: u64) -> f64 {
    if baseline == 0 {
        0.0
    } else {
        (baseline as f64 - optimized as f64) / baseline as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload_from(width: u32, lo: u64) -> PayloadBits {
        let mut p = PayloadBits::zero(width);
        p.set_field(0, 64.min(width), lo);
        p
    }

    #[test]
    fn scalar_transitions() {
        assert_eq!(bit_transitions_u64(0, 0), 0);
        assert_eq!(bit_transitions_u64(0, u64::MAX), 64);
        assert_eq!(bit_transitions_u64(0b1010, 0b0101), 4);
    }

    #[test]
    fn stream_transitions_sums_consecutive_pairs() {
        let flits = vec![
            payload_from(64, 0b0000),
            payload_from(64, 0b1111), // 4
            payload_from(64, 0b1100), // 2
            payload_from(64, 0b1100), // 0
        ];
        assert_eq!(stream_transitions(&flits), 6);
        assert_eq!(stream_transitions(&flits[..1]), 0);
        assert_eq!(stream_transitions(&[]), 0);
    }

    #[test]
    fn recorder_first_flit_is_free() {
        let mut r = TransitionRecorder::new(64);
        assert_eq!(r.observe(&payload_from(64, u64::MAX)), 0);
        assert_eq!(r.total(), 0);
        assert_eq!(r.flits(), 1);
    }

    #[test]
    fn recorder_accumulates() {
        let mut r = TransitionRecorder::new(64);
        r.observe(&payload_from(64, 0));
        assert_eq!(r.observe(&payload_from(64, 0b111)), 3);
        assert_eq!(r.observe(&payload_from(64, 0b100)), 2);
        assert_eq!(r.total(), 5);
        assert_eq!(r.flits(), 3);
        assert!((r.transitions_per_flit() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn recorder_tracks_positions() {
        let mut r = TransitionRecorder::new(8);
        r.observe(&payload_from(8, 0b0000_0000));
        r.observe(&payload_from(8, 0b0000_0011));
        r.observe(&payload_from(8, 0b0000_0001));
        assert_eq!(r.per_position()[0], 1); // toggled once (0->1)
        assert_eq!(r.per_position()[1], 2); // toggled twice (0->1->0)
        assert_eq!(r.per_position()[2], 0);
        let probs = r.per_position_probability();
        assert!((probs[1] - 1.0).abs() < 1e-12);
        assert!((probs[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recorder_reset() {
        let mut r = TransitionRecorder::new(8);
        r.observe(&payload_from(8, 0xff));
        r.observe(&payload_from(8, 0x00));
        r.reset();
        assert_eq!(r.total(), 0);
        assert_eq!(r.flits(), 0);
        assert!(r.per_position().iter().all(|&c| c == 0));
        // After reset the first flit is free again.
        assert_eq!(r.observe(&payload_from(8, 0xff)), 0);
    }

    #[test]
    #[should_panic(expected = "does not match link width")]
    fn recorder_rejects_wrong_width() {
        let mut r = TransitionRecorder::new(64);
        r.observe(&payload_from(128, 0));
    }

    #[test]
    fn total_only_recorder_skips_positions_but_counts_totals() {
        let mut full = TransitionRecorder::new(8);
        let mut light = TransitionRecorder::total_only(8);
        for bits in [0u64, 0b1011, 0b0110, 0xff] {
            full.observe(&payload_from(8, bits));
            light.observe(&payload_from(8, bits));
        }
        assert_eq!(full.total(), light.total());
        assert_eq!(light.per_position(), &[] as &[u64]);
        assert!(light.per_position_probability().is_empty());
        assert_eq!(light.flits(), 4);
    }

    #[test]
    fn reduction_rate_basics() {
        assert!((reduction_rate(100, 80) - 0.20).abs() < 1e-12);
        assert!((reduction_rate(100, 100)).abs() < 1e-12);
        assert_eq!(reduction_rate(0, 5), 0.0);
        // Negative rate = optimization made things worse; still well-defined.
        assert!(reduction_rate(100, 120) < 0.0);
    }
}
