//! Typed data words and the [`DataWord`] abstraction.
//!
//! The paper evaluates two payload formats: 32-bit IEEE-754 floating point
//! (`float-32`) carried on 512-bit links and 8-bit two's-complement fixed
//! point (`fixed-8`) carried on 128-bit links, 16 values per flit in both
//! cases. The ordering rule only ever inspects a word's `'1'`-bit count
//! (popcount) and its raw bit image, so everything downstream is generic
//! over [`DataWord`].

use crate::swar;
use serde::{Deserialize, Serialize};

/// Payload data format used by an experiment configuration.
///
/// The format determines the bit width of each value on the link and hence,
/// for a fixed number of values per flit, the link width (Sec. V-B: 512-bit
/// links for 16 float-32 values, 128-bit links for 16 fixed-8 values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataFormat {
    /// 32-bit IEEE-754 floating point (`float-32` in the paper).
    Float32,
    /// 8-bit two's-complement fixed point (`fixed-8` in the paper).
    Fixed8,
    /// 16-bit two's-complement fixed point (extension format; not in the
    /// paper's evaluation, used for ablations).
    Fixed16,
}

impl DataFormat {
    /// Bit width of one value in this format.
    #[must_use]
    pub const fn bits_per_value(self) -> u32 {
        match self {
            DataFormat::Float32 => 32,
            DataFormat::Fixed8 => 8,
            DataFormat::Fixed16 => 16,
        }
    }

    /// Short lower-case name used in experiment output tables.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            DataFormat::Float32 => "float-32",
            DataFormat::Fixed8 => "fixed-8",
            DataFormat::Fixed16 => "fixed-16",
        }
    }
}

impl std::fmt::Display for DataFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DataFormat {
    type Err = String;

    /// Parses `"f32"`/`"float-32"`, `"fx8"`/`"fixed-8"`,
    /// `"fx16"`/`"fixed-16"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "f32" | "float32" | "float-32" => Ok(DataFormat::Float32),
            "fx8" | "fixed8" | "fixed-8" => Ok(DataFormat::Fixed8),
            "fx16" | "fixed16" | "fixed-16" => Ok(DataFormat::Fixed16),
            other => Err(format!("unknown data format {other:?}; use f32|fx8|fx16")),
        }
    }
}

/// A fixed-width data word whose link image and `'1'`-bit count are known.
///
/// Implementors are small `Copy` types wrapping the raw encoding. The
/// ordering methods in `btr-core` sort by [`DataWord::popcount`] and the NoC
/// link model serializes via [`DataWord::bits_u64`].
pub trait DataWord: Copy + std::fmt::Debug {
    /// Width of the word in bits (number of physical wires it occupies).
    const WIDTH: u32;

    /// Raw bit image, right-aligned in a `u64` (upper bits zero).
    fn bits_u64(self) -> u64;

    /// Reconstructs a word from its link image (inverse of
    /// [`DataWord::bits_u64`]; bits above [`DataWord::WIDTH`] are ignored).
    /// This is how a receiving PE decodes operands off the wires.
    fn from_bits_u64(bits: u64) -> Self;

    /// Number of `'1'` bits in the word's link image.
    ///
    /// This is the quantity the paper's ordering rule sorts by.
    fn popcount(self) -> u32 {
        self.bits_u64().count_ones()
    }

    /// The all-zero word used for flit padding ("zeros are padded when the
    /// weight's kernel size doesn't exactly match the flit size", Sec. V-A).
    fn zero() -> Self;
}

/// A 32-bit IEEE-754 float word (`float-32`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct F32Word(f32);

impl F32Word {
    /// Wraps an `f32` value.
    #[must_use]
    pub fn new(value: f32) -> Self {
        Self(value)
    }

    /// The wrapped numeric value.
    #[must_use]
    pub fn value(self) -> f32 {
        self.0
    }

    /// Raw IEEE-754 bit image.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.0.to_bits()
    }

    /// Reconstructs a word from a raw bit image.
    #[must_use]
    pub fn from_bits(bits: u32) -> Self {
        Self(f32::from_bits(bits))
    }
}

impl DataWord for F32Word {
    const WIDTH: u32 = 32;

    fn bits_u64(self) -> u64 {
        u64::from(self.0.to_bits())
    }

    fn from_bits_u64(bits: u64) -> Self {
        Self::from_bits(bits as u32)
    }

    fn popcount(self) -> u32 {
        // Mirror the hardware unit: SWAR popcount (Fig. 14). Bit-identical
        // to `count_ones`, asserted by tests in `swar`.
        swar::popcount_u32(self.0.to_bits())
    }

    fn zero() -> Self {
        Self(0.0)
    }
}

impl From<f32> for F32Word {
    fn from(v: f32) -> Self {
        Self::new(v)
    }
}

/// An 8-bit two's-complement fixed-point word (`fixed-8`).
///
/// The numeric interpretation (scale) lives in [`crate::fixed::Quantizer`];
/// this type is only the 8-bit link image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fx8Word(i8);

impl Fx8Word {
    /// Wraps a signed 8-bit code.
    #[must_use]
    pub fn new(code: i8) -> Self {
        Self(code)
    }

    /// The signed integer code.
    #[must_use]
    pub fn code(self) -> i8 {
        self.0
    }

    /// Raw two's-complement bit image.
    #[must_use]
    pub fn bits(self) -> u8 {
        self.0 as u8
    }

    /// Reconstructs a word from a raw bit image.
    #[must_use]
    pub fn from_bits(bits: u8) -> Self {
        Self(bits as i8)
    }
}

impl DataWord for Fx8Word {
    const WIDTH: u32 = 8;

    fn bits_u64(self) -> u64 {
        u64::from(self.0 as u8)
    }

    fn from_bits_u64(bits: u64) -> Self {
        Self::from_bits(bits as u8)
    }

    fn popcount(self) -> u32 {
        swar::popcount_u8(self.0 as u8)
    }

    fn zero() -> Self {
        Self(0)
    }
}

impl From<i8> for Fx8Word {
    fn from(v: i8) -> Self {
        Self::new(v)
    }
}

/// A 16-bit two's-complement fixed-point word (extension format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fx16Word(i16);

impl Fx16Word {
    /// Wraps a signed 16-bit code.
    #[must_use]
    pub fn new(code: i16) -> Self {
        Self(code)
    }

    /// The signed integer code.
    #[must_use]
    pub fn code(self) -> i16 {
        self.0
    }

    /// Raw two's-complement bit image.
    #[must_use]
    pub fn bits(self) -> u16 {
        self.0 as u16
    }
}

impl DataWord for Fx16Word {
    const WIDTH: u32 = 16;

    fn bits_u64(self) -> u64 {
        u64::from(self.0 as u16)
    }

    fn from_bits_u64(bits: u64) -> Self {
        Self::new(bits as u16 as i16)
    }

    fn popcount(self) -> u32 {
        swar::popcount_u16(self.0 as u16)
    }

    fn zero() -> Self {
        Self(0)
    }
}

impl From<i16> for Fx16Word {
    fn from(v: i16) -> Self {
        Self::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_word_roundtrip_and_popcount() {
        let w = F32Word::new(1.5);
        assert_eq!(w.value(), 1.5);
        assert_eq!(w.bits(), 1.5f32.to_bits());
        assert_eq!(w.popcount(), 1.5f32.to_bits().count_ones());
        assert_eq!(F32Word::from_bits(w.bits()), w);
    }

    #[test]
    fn f32_zero_has_zero_popcount() {
        assert_eq!(F32Word::zero().popcount(), 0);
        assert_eq!(F32Word::zero().bits_u64(), 0);
    }

    #[test]
    fn fx8_negative_codes_have_high_popcount() {
        // Two's complement: -1 = 0b1111_1111 (8 ones). This drives the
        // bimodal popcount distribution that makes fixed-8 trained weights
        // benefit most from ordering (Table I: 55.71%).
        assert_eq!(Fx8Word::new(-1).popcount(), 8);
        assert_eq!(Fx8Word::new(1).popcount(), 1);
        assert_eq!(Fx8Word::new(0).popcount(), 0);
        assert_eq!(Fx8Word::new(-128).popcount(), 1);
    }

    #[test]
    fn fx8_bits_roundtrip() {
        for code in i8::MIN..=i8::MAX {
            let w = Fx8Word::new(code);
            assert_eq!(Fx8Word::from_bits(w.bits()), w);
            assert_eq!(w.bits_u64(), u64::from(code as u8));
            assert_eq!(w.popcount(), (code as u8).count_ones());
        }
    }

    #[test]
    fn fx16_popcount_matches_native() {
        for code in [-32768i16, -1, 0, 1, 255, 256, 32767, -12345] {
            assert_eq!(Fx16Word::new(code).popcount(), (code as u16).count_ones());
        }
    }

    #[test]
    fn format_widths() {
        assert_eq!(DataFormat::Float32.bits_per_value(), 32);
        assert_eq!(DataFormat::Fixed8.bits_per_value(), 8);
        assert_eq!(DataFormat::Fixed16.bits_per_value(), 16);
        assert_eq!(DataFormat::Float32.to_string(), "float-32");
    }

    #[test]
    fn from_bits_u64_roundtrips() {
        let f = F32Word::new(-3.75);
        assert_eq!(F32Word::from_bits_u64(f.bits_u64()), f);
        let x = Fx8Word::new(-77);
        assert_eq!(Fx8Word::from_bits_u64(x.bits_u64()), x);
        let y = Fx16Word::new(-12345);
        assert_eq!(Fx16Word::from_bits_u64(y.bits_u64()), y);
        // Upper bits are ignored.
        assert_eq!(Fx8Word::from_bits_u64(0xffff_ff01), Fx8Word::new(1));
    }

    #[test]
    fn words_fit_in_declared_width() {
        let w = F32Word::new(f32::from_bits(u32::MAX));
        assert!(w.bits_u64() < (1u64 << F32Word::WIDTH));
        let w = Fx8Word::new(-1);
        assert!(w.bits_u64() < (1u64 << Fx8Word::WIDTH));
        let w = Fx16Word::new(-1);
        assert!(w.bits_u64() < (1u64 << Fx16Word::WIDTH));
    }
}
